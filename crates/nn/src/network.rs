//! The feed-forward network: configuration, inference, persistence.

use crate::activation::{softmax_rows, Activation};
use crate::dataset::Dataset;
use crate::layer::DenseLayer;
use crate::metrics;
use nrpm_linalg::Matrix;
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};
use std::fmt;
use std::path::Path;

/// Architecture description of a classifier network.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct NetworkConfig {
    /// Layer widths, from the input dimension to the number of classes,
    /// e.g. `[11, 1500, 1500, 750, 250, 250, 43]`.
    pub layer_sizes: Vec<usize>,
    /// Activation of the hidden layers (output is always softmax, fused
    /// with the cross-entropy loss).
    pub hidden_activation: Activation,
}

impl NetworkConfig {
    /// A config from explicit layer sizes with tanh hidden activations.
    pub fn new(layer_sizes: &[usize]) -> Self {
        assert!(
            layer_sizes.len() >= 2,
            "need at least input and output layers"
        );
        NetworkConfig {
            layer_sizes: layer_sizes.to_vec(),
            hidden_activation: Activation::Tanh,
        }
    }

    /// The paper's architecture (Sec. IV-D): input layer with 11 neurons,
    /// five dense hidden layers (2×1500, 750, 2×250) with tanh, and a
    /// 43-class softmax output.
    pub fn paper() -> Self {
        NetworkConfig::new(&[11, 1500, 1500, 750, 250, 250, 43])
    }

    /// A reduced architecture with the same input/output contract, used as
    /// the default for large benchmark sweeps (see DESIGN.md: retraining a
    /// 3.7 M-parameter network inside every sweep iteration would dominate
    /// wall-clock time without changing who wins).
    pub fn compact() -> Self {
        NetworkConfig::new(&[11, 256, 128, 64, 43])
    }

    /// Input dimension.
    pub fn input_dim(&self) -> usize {
        self.layer_sizes[0]
    }

    /// Number of classes.
    pub fn num_classes(&self) -> usize {
        *self.layer_sizes.last().expect("at least two layers")
    }
}

/// Errors produced by network operations.
#[derive(Debug, Clone, PartialEq)]
pub enum NetworkError {
    /// The input dimension does not match the network's input layer.
    InputDimension {
        /// Dimension supplied.
        got: usize,
        /// Dimension expected.
        expected: usize,
    },
    /// The dataset's class count does not match the output layer.
    ClassCount {
        /// Classes in the dataset.
        got: usize,
        /// Classes of the network.
        expected: usize,
    },
    /// The dataset is empty.
    EmptyDataset,
    /// Persistence failed.
    Io(String),
    /// A loaded checkpoint is structurally broken: non-finite weights,
    /// inconsistent layer dimensions, or malformed weight storage.
    InvalidCheckpoint(String),
}

impl fmt::Display for NetworkError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NetworkError::InputDimension { got, expected } => {
                write!(f, "input has {got} features, network expects {expected}")
            }
            NetworkError::ClassCount { got, expected } => {
                write!(f, "dataset has {got} classes, network predicts {expected}")
            }
            NetworkError::EmptyDataset => write!(f, "dataset is empty"),
            NetworkError::Io(e) => write!(f, "persistence error: {e}"),
            NetworkError::InvalidCheckpoint(e) => write!(f, "invalid checkpoint: {e}"),
        }
    }
}

impl std::error::Error for NetworkError {}

/// A feed-forward classifier: dense hidden layers plus a softmax head.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Network {
    layers: Vec<DenseLayer>,
}

impl Network {
    /// Builds a freshly initialized network from `config`, seeded for
    /// reproducibility.
    pub fn new(config: &NetworkConfig, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let n = config.layer_sizes.len();
        let mut layers = Vec::with_capacity(n - 1);
        for w in 0..n - 1 {
            let activation = if w == n - 2 {
                Activation::Identity // logits; softmax is fused with the loss
            } else {
                config.hidden_activation
            };
            layers.push(DenseLayer::new(
                config.layer_sizes[w],
                config.layer_sizes[w + 1],
                activation,
                &mut rng,
            ));
        }
        Network { layers }
    }

    /// The layers (immutable).
    pub fn layers(&self) -> &[DenseLayer] {
        &self.layers
    }

    /// The layers (mutable — used by the trainer).
    pub(crate) fn layers_mut(&mut self) -> &mut [DenseLayer] {
        &mut self.layers
    }

    /// Input dimension.
    pub fn input_dim(&self) -> usize {
        self.layers.first().expect("non-empty").in_dim()
    }

    /// Number of classes.
    pub fn num_classes(&self) -> usize {
        self.layers.last().expect("non-empty").out_dim()
    }

    /// Total number of trainable parameters.
    pub fn num_parameters(&self) -> usize {
        self.layers.iter().map(DenseLayer::num_parameters).sum()
    }

    /// Forward pass returning every layer's activation (index 0 is the
    /// input batch itself); the last entry holds the raw logits.
    pub(crate) fn forward_all(&self, x: &Matrix) -> Vec<Matrix> {
        let mut acts = Vec::with_capacity(self.layers.len() + 1);
        acts.push(x.clone());
        for layer in &self.layers {
            let next = layer.forward(acts.last().expect("non-empty"));
            acts.push(next);
        }
        acts
    }

    /// Raw logits for a batch.
    pub fn logits(&self, x: &Matrix) -> Result<Matrix, NetworkError> {
        if x.cols() != self.input_dim() {
            return Err(NetworkError::InputDimension {
                got: x.cols(),
                expected: self.input_dim(),
            });
        }
        let mut a = x.clone();
        for layer in &self.layers {
            a = layer.forward(&a);
        }
        Ok(a)
    }

    /// Class-probability rows (softmax over the logits) for a batch.
    pub fn predict_proba(&self, x: &Matrix) -> Result<Matrix, NetworkError> {
        let mut logits = self.logits(x)?;
        let classes = self.num_classes();
        softmax_rows(logits.as_mut_slice(), classes);
        Ok(logits)
    }

    /// Probability vector for a single input.
    pub fn predict_proba_one(&self, input: &[f64]) -> Result<Vec<f64>, NetworkError> {
        let x = Matrix::from_vec(1, input.len(), input.to_vec());
        Ok(self.predict_proba(&x)?.as_slice().to_vec())
    }

    /// Argmax class for a single input.
    pub fn predict_one(&self, input: &[f64]) -> Result<usize, NetworkError> {
        let probs = self.predict_proba_one(input)?;
        Ok(metrics::top_k_classes(&probs, 1)[0])
    }

    /// Mean cross-entropy loss over a dataset.
    pub fn cross_entropy(&self, data: &Dataset) -> Result<f64, NetworkError> {
        self.check_dataset(data)?;
        let probs = self.predict_proba(data.inputs())?;
        let classes = self.num_classes();
        let mut loss = 0.0;
        for (i, &label) in data.labels().iter().enumerate() {
            let p = probs.as_slice()[i * classes + label].max(1e-300);
            loss -= p.ln();
        }
        Ok(loss / data.len() as f64)
    }

    /// Top-1 accuracy over a dataset.
    pub fn accuracy(&self, data: &Dataset) -> Result<f64, NetworkError> {
        self.check_dataset(data)?;
        let probs = self.predict_proba(data.inputs())?;
        let rows: Vec<&[f64]> = (0..data.len()).map(|r| probs.row(r)).collect();
        Ok(metrics::accuracy(&rows, data.labels()))
    }

    /// Top-k accuracy over a dataset.
    pub fn top_k_accuracy(&self, data: &Dataset, k: usize) -> Result<f64, NetworkError> {
        self.check_dataset(data)?;
        let probs = self.predict_proba(data.inputs())?;
        let rows: Vec<&[f64]> = (0..data.len()).map(|r| probs.row(r)).collect();
        Ok(metrics::top_k_accuracy(&rows, data.labels(), k))
    }

    pub(crate) fn check_dataset(&self, data: &Dataset) -> Result<(), NetworkError> {
        if data.is_empty() {
            return Err(NetworkError::EmptyDataset);
        }
        if data.num_features() != self.input_dim() {
            return Err(NetworkError::InputDimension {
                got: data.num_features(),
                expected: self.input_dim(),
            });
        }
        if data.num_classes() != self.num_classes() {
            return Err(NetworkError::ClassCount {
                got: data.num_classes(),
                expected: self.num_classes(),
            });
        }
        Ok(())
    }

    /// Checks the structural invariants a trustworthy checkpoint must hold:
    /// at least one layer, positive and chain-consistent layer dimensions,
    /// weight storage that matches its declared shape, bias vectors of the
    /// output width, and exclusively finite parameters.
    ///
    /// Deserialization ([`Network::from_json`], [`Network::load`]) runs this
    /// automatically so a corrupt checkpoint is rejected with a descriptive
    /// [`NetworkError::InvalidCheckpoint`] at load time instead of
    /// surfacing later as a panic or silently broken inference.
    pub fn validate(&self) -> Result<(), NetworkError> {
        let invalid = |msg: String| Err(NetworkError::InvalidCheckpoint(msg));
        if self.layers.is_empty() {
            return invalid("network has no layers".to_string());
        }
        for (i, layer) in self.layers.iter().enumerate() {
            let (rows, cols) = layer.weights.shape();
            if rows == 0 || cols == 0 {
                return invalid(format!("layer {i} has zero dimension ({rows}x{cols})"));
            }
            if layer.weights.as_slice().len() != rows * cols {
                return invalid(format!(
                    "layer {i} weight storage holds {} values for declared shape {rows}x{cols}",
                    layer.weights.as_slice().len()
                ));
            }
            if layer.biases.len() != cols {
                return invalid(format!(
                    "layer {i} has {} biases for {cols} output neurons",
                    layer.biases.len()
                ));
            }
            if i > 0 {
                let prev_out = self.layers[i - 1].out_dim();
                if prev_out != rows {
                    return invalid(format!(
                        "layer {} outputs {prev_out} values but layer {i} expects {rows} inputs",
                        i - 1
                    ));
                }
            }
            if !layer.weights.all_finite() {
                return invalid(format!("layer {i} contains non-finite weights"));
            }
            if layer.biases.iter().any(|b| !b.is_finite()) {
                return invalid(format!("layer {i} contains non-finite biases"));
            }
        }
        Ok(())
    }

    /// Serializes the network (architecture + weights) to JSON.
    pub fn to_json(&self) -> String {
        serde_json::to_string(self).expect("Network serializes")
    }

    /// Deserializes a network from JSON, rejecting structurally broken
    /// checkpoints (see [`Network::validate`]).
    pub fn from_json(json: &str) -> Result<Self, NetworkError> {
        let net: Network =
            serde_json::from_str(json).map_err(|e| NetworkError::Io(e.to_string()))?;
        net.validate()?;
        Ok(net)
    }

    /// Writes the network to a file.
    pub fn save(&self, path: &Path) -> Result<(), NetworkError> {
        std::fs::write(path, self.to_json()).map_err(|e| NetworkError::Io(e.to_string()))
    }

    /// Reads a network from a file, rejecting structurally broken
    /// checkpoints (see [`Network::validate`]).
    pub fn load(path: &Path) -> Result<Self, NetworkError> {
        let json = std::fs::read_to_string(path).map_err(|e| NetworkError::Io(e.to_string()))?;
        Network::from_json(&json)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_architecture_matches_section_iv_d() {
        let config = NetworkConfig::paper();
        assert_eq!(config.layer_sizes, vec![11, 1500, 1500, 750, 250, 250, 43]);
        assert_eq!(config.input_dim(), 11);
        assert_eq!(config.num_classes(), 43);
        let net = Network::new(&config, 1);
        // 11*1500+1500 + 1500*1500+1500 + 1500*750+750 + 750*250+250
        // + 250*250+250 + 250*43+43
        let expected = 11 * 1500
            + 1500
            + 1500 * 1500
            + 1500
            + 1500 * 750
            + 750
            + 750 * 250
            + 250
            + 250 * 250
            + 250
            + 250 * 43
            + 43;
        assert_eq!(net.num_parameters(), expected);
        // Hidden layers tanh, logits identity.
        assert_eq!(net.layers()[0].activation, Activation::Tanh);
        assert_eq!(
            net.layers().last().unwrap().activation,
            Activation::Identity
        );
    }

    #[test]
    fn predictions_are_probability_distributions() {
        let net = Network::new(&NetworkConfig::new(&[3, 8, 4]), 5);
        let x = Matrix::from_rows(&[&[0.1, 0.2, 0.3], &[1.0, -1.0, 0.5]]);
        let p = net.predict_proba(&x).unwrap();
        for r in 0..2 {
            let sum: f64 = p.row(r).iter().sum();
            assert!((sum - 1.0).abs() < 1e-12);
            assert!(p.row(r).iter().all(|&v| v >= 0.0));
        }
    }

    #[test]
    fn seeded_construction_is_deterministic() {
        let config = NetworkConfig::compact();
        let a = Network::new(&config, 42);
        let b = Network::new(&config, 42);
        let c = Network::new(&config, 43);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn input_dimension_is_checked() {
        let net = Network::new(&NetworkConfig::new(&[3, 4, 2]), 1);
        let bad = Matrix::zeros(1, 5);
        assert!(matches!(
            net.predict_proba(&bad),
            Err(NetworkError::InputDimension {
                got: 5,
                expected: 3
            })
        ));
    }

    #[test]
    fn dataset_compatibility_is_checked() {
        let net = Network::new(&NetworkConfig::new(&[3, 4, 2]), 1);
        let empty = Dataset::new(Matrix::zeros(0, 3), vec![], 2).unwrap();
        assert_eq!(net.accuracy(&empty), Err(NetworkError::EmptyDataset));
        let wrong_classes = Dataset::new(Matrix::zeros(2, 3), vec![0, 1], 5).unwrap();
        assert!(matches!(
            net.accuracy(&wrong_classes),
            Err(NetworkError::ClassCount {
                got: 5,
                expected: 2
            })
        ));
    }

    #[test]
    fn json_round_trip_preserves_predictions() {
        let net = Network::new(&NetworkConfig::new(&[4, 10, 3]), 11);
        let back = Network::from_json(&net.to_json()).unwrap();
        let x = [0.25, -0.5, 0.75, 1.0];
        assert_eq!(
            net.predict_proba_one(&x).unwrap(),
            back.predict_proba_one(&x).unwrap()
        );
    }

    #[test]
    fn non_finite_weights_are_rejected_at_load() {
        let mut net = Network::new(&NetworkConfig::new(&[2, 4, 2]), 9);
        net.layers_mut()[0].weights.as_mut_slice()[0] = f64::NAN;
        assert!(
            matches!(net.validate(), Err(NetworkError::InvalidCheckpoint(ref m)) if m.contains("non-finite"))
        );
        // NaN serializes as JSON null and deserializes back to NaN; the
        // load path must refuse the checkpoint rather than hand out a
        // network that poisons every forward pass.
        let err = Network::from_json(&net.to_json()).unwrap_err();
        assert!(matches!(err, NetworkError::InvalidCheckpoint(ref m) if m.contains("layer 0")));
    }

    #[test]
    fn non_finite_biases_are_rejected() {
        let mut net = Network::new(&NetworkConfig::new(&[2, 4, 2]), 9);
        net.layers_mut()[1].biases[1] = f64::INFINITY;
        assert!(matches!(
            net.validate(),
            Err(NetworkError::InvalidCheckpoint(ref m)) if m.contains("biases")
        ));
    }

    #[test]
    fn inconsistent_layer_chain_is_rejected() {
        let mut rng = StdRng::seed_from_u64(1);
        // 2->4 followed by 3->2: the 4-wide output feeds a 3-wide input.
        let net = Network {
            layers: vec![
                DenseLayer::new(2, 4, Activation::Tanh, &mut rng),
                DenseLayer::new(3, 2, Activation::Identity, &mut rng),
            ],
        };
        let err = net.validate().unwrap_err();
        assert!(
            matches!(err, NetworkError::InvalidCheckpoint(ref m) if m.contains("outputs 4") && m.contains("expects 3")),
            "{err}"
        );
        assert!(Network::from_json(&net.to_json()).is_err());
    }

    #[test]
    fn tampered_weight_shape_is_rejected() {
        let net = Network::new(&NetworkConfig::new(&[2, 3]), 5);
        // Declare one more weight row than the storage actually holds.
        let tampered = net.to_json().replacen("\"rows\":2", "\"rows\":3", 1);
        let err = Network::from_json(&tampered).unwrap_err();
        assert!(
            matches!(err, NetworkError::InvalidCheckpoint(ref m) if m.contains("weight storage")),
            "{err}"
        );
    }

    #[test]
    fn empty_network_is_rejected() {
        let net = Network { layers: vec![] };
        assert!(matches!(
            net.validate(),
            Err(NetworkError::InvalidCheckpoint(ref m)) if m.contains("no layers")
        ));
    }

    #[test]
    fn truncated_checkpoint_is_an_error_not_a_panic() {
        let json = Network::new(&NetworkConfig::new(&[2, 3]), 5).to_json();
        for cut in [0, 1, json.len() / 2, json.len() - 1] {
            assert!(
                matches!(Network::from_json(&json[..cut]), Err(NetworkError::Io(_))),
                "truncation at {cut} must fail cleanly"
            );
        }
    }

    #[test]
    fn save_and_load_round_trip() {
        let dir = std::env::temp_dir().join("nrpm_nn_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("net.json");
        let net = Network::new(&NetworkConfig::new(&[2, 5, 2]), 3);
        net.save(&path).unwrap();
        let back = Network::load(&path).unwrap();
        assert_eq!(net, back);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn cross_entropy_of_uniform_predictor_is_log_num_classes() {
        // A network with zero weights outputs uniform probabilities.
        let mut net = Network::new(&NetworkConfig::new(&[2, 4]), 1);
        net.layers_mut()[0].weights.fill_zero();
        let data = Dataset::new(Matrix::zeros(3, 2), vec![0, 1, 3], 4).unwrap();
        let ce = net.cross_entropy(&data).unwrap();
        assert!((ce - 4.0f64.ln()).abs() < 1e-12);
    }
}
