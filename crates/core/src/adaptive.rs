//! The adaptive modeler (Sec. IV-A): noise-driven switching between the
//! regression modeler and the DNN modeler.
//!
//! Below the switching threshold both modelers run and the cross-validated
//! SMAPE winner is returned; above it only the DNN runs — at high noise the
//! regression modeler's tight in-sample fit actively hurts extrapolation,
//! so keeping it in the race would degrade predictive power.
//!
//! # Robustness
//!
//! The entry point [`AdaptiveModeler::model`] is fault-tolerant end to end
//! (see DESIGN.md, "Fault model & degraded modes"):
//!
//! * the input is **sanitized** first ([`crate::sanitize`]) and the
//!   [`DataQualityReport`] travels with the outcome;
//! * when repairs were needed, the noise level is estimated with the
//!   median-based robust estimator ([`NoiseEstimate::robust_of`]) instead
//!   of the mean-based one, whose breakdown point is zero;
//! * modeling degrades along the chain **DNN → regression → constant
//!   mean**: if every sophisticated modeler fails recoverably, the outcome
//!   is the constant model at the mean of the aggregated values — for any
//!   salvageable input, `model` returns *something* rather than an error.

use crate::dnn::{DnnModeler, DnnOptions};
use crate::noise::NoiseEstimate;
use crate::sanitize::{sanitize, DataQualityReport, SanitizeOptions, SanitizePolicy};
use crate::threshold::default_threshold;
use nrpm_extrap::{
    smape, Aggregation, MeasurementSet, Model, ModelError, ModelingResult, RegressionModeler,
};
use nrpm_nn::Network;
use serde::{Deserialize, Serialize};

/// Which modeler produced the final model.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ModelerChoice {
    /// The classic regression modeler won the cross-validation comparison.
    Regression,
    /// The DNN modeler won (or was the only one consulted).
    Dnn,
    /// Both modelers failed recoverably; the constant-mean fallback model
    /// describes the data's central tendency.
    ConstantMean,
}

/// Options of the adaptive modeler.
#[derive(Debug, Clone)]
pub struct AdaptiveOptions {
    /// DNN modeler configuration (network, pretraining, adaptation).
    pub dnn: DnnOptions,
    /// Regression modeler configuration.
    pub regression: RegressionModeler,
    /// Per-parameter-count switching thresholds (fractions); when `None`,
    /// [`default_threshold`] applies.
    pub thresholds: Option<Vec<f64>>,
    /// Whether to run domain adaptation before each modeling task
    /// (Sec. IV-E: "we always use domain adaptation before modeling").
    /// Disable for the ablation benches.
    pub use_domain_adaptation: bool,
    /// Relative margin by which the DNN model's cross-validation SMAPE
    /// must beat the regression model's before the DNN wins the final
    /// selection. Below the noise threshold both models typically fit
    /// near-perfectly and their CV difference is statistical noise; a
    /// small preference for the regression model (whose candidate ranking
    /// is exhaustive rather than learned) avoids coin-flip selections.
    pub selection_margin: f64,
    /// Input sanitization applied before anything else (see
    /// [`crate::sanitize`]). [`SanitizePolicy::Lenient`] by default.
    pub sanitize: SanitizeOptions,
}

impl Default for AdaptiveOptions {
    fn default() -> Self {
        AdaptiveOptions {
            dnn: DnnOptions::default(),
            regression: RegressionModeler::default(),
            thresholds: None,
            use_domain_adaptation: true,
            selection_margin: 0.10,
            sanitize: SanitizeOptions::default(),
        }
    }
}

impl AdaptiveOptions {
    fn threshold_for(&self, num_params: usize) -> f64 {
        match &self.thresholds {
            Some(t) if !t.is_empty() => {
                let idx = num_params.saturating_sub(1).min(t.len() - 1);
                t[idx]
            }
            _ => default_threshold(num_params),
        }
    }
}

/// The full outcome of an adaptive modeling run.
///
/// Serializable so outcomes can be memoized on disk (`nrpm-registry`'s
/// result cache): the JSON round trip is bit-stable for every float, so a
/// recovered outcome is indistinguishable from a freshly computed one.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct AdaptiveOutcome {
    /// The selected model and its scores.
    pub result: ModelingResult,
    /// The noise analysis that drove the decision.
    pub noise: NoiseEstimate,
    /// The threshold that was applied (fraction).
    pub threshold: f64,
    /// The regression modeler's result, when it was consulted.
    pub regression_result: Option<ModelingResult>,
    /// The DNN modeler's result, when it succeeded.
    pub dnn_result: Option<ModelingResult>,
    /// Which modeler won.
    pub choice: ModelerChoice,
    /// What the sanitizer changed about the input (untouched and clean
    /// when sanitization is [`SanitizePolicy::Off`]).
    pub quality: DataQualityReport,
}

/// The adaptive performance modeler.
///
/// Owns a pretrained [`DnnModeler`] (domain adaptation mutates the network,
/// hence `model` takes `&mut self`) and a [`RegressionModeler`].
#[derive(Debug, Clone)]
pub struct AdaptiveModeler {
    opts: AdaptiveOptions,
    dnn: DnnModeler,
}

impl AdaptiveModeler {
    /// Builds the modeler, pretraining the DNN now.
    pub fn pretrained(opts: AdaptiveOptions) -> Self {
        let dnn = DnnModeler::pretrained(opts.dnn.clone());
        AdaptiveModeler { opts, dnn }
    }

    /// Builds the modeler around an existing pretrained network (e.g.
    /// loaded from disk — pretraining is the expensive step).
    pub fn from_network(opts: AdaptiveOptions, network: Network) -> Self {
        let dnn = DnnModeler::from_network(opts.dnn.clone(), network);
        AdaptiveModeler { opts, dnn }
    }

    /// The configured options.
    pub fn options(&self) -> &AdaptiveOptions {
        &self.opts
    }

    /// The wrapped DNN modeler.
    pub fn dnn(&self) -> &DnnModeler {
        &self.dnn
    }

    /// Runs the adaptive modeling process of Fig. 1, hardened:
    /// sanitization → noise estimation → (domain adaptation) → DNN
    /// modeling, plus regression modeling below the threshold →
    /// cross-validation selection, degrading to the constant-mean model
    /// when both modelers fail recoverably.
    pub fn model(&mut self, set: &MeasurementSet) -> Result<AdaptiveOutcome, ModelError> {
        let prepared = prepare(&self.opts, set)?;

        if self.opts.use_domain_adaptation {
            let range = if prepared.noise.is_empty() {
                (0.0, 0.0)
            } else {
                prepared.noise.range()
            };
            self.dnn.adapt_to_task(&prepared.set, range)?;
        }

        let dnn_result = self.dnn.model(&prepared.set);
        finish(&self.opts, prepared, dnn_result)
    }

    /// Models several kernels in one go, coalescing their DNN forward
    /// passes into a single batched inference
    /// ([`DnnModeler::classify_lines_batch`]). Sanitization, noise
    /// estimation, regression consultation, and the degradation chain all
    /// run per kernel exactly as in [`Self::model`]; the one deliberate
    /// difference is that the batch path **skips domain adaptation** — a
    /// long-lived server cannot retrain the shared network per request
    /// without making results depend on request order. Callers that need
    /// adaptation should use the single-kernel path.
    pub fn model_batch(&self, sets: &[MeasurementSet]) -> AdaptiveBatch {
        let prepared: Vec<Result<Prepared, ModelError>> =
            sets.iter().map(|set| prepare(&self.opts, set)).collect();
        let ok_sets: Vec<&MeasurementSet> = prepared
            .iter()
            .filter_map(|p| p.as_ref().ok().map(|p| &p.set))
            .collect();
        let dnn_batch = self.dnn.model_batch(&ok_sets);

        let mut dnn_results = dnn_batch.results.into_iter();
        let outcomes = prepared
            .into_iter()
            .map(|p| {
                let p = p?;
                let dnn_result = dnn_results
                    .next()
                    .expect("one DNN batch result per prepared set");
                finish(&self.opts, p, dnn_result)
            })
            .collect();
        AdaptiveBatch {
            outcomes,
            batched_lines: dnn_batch.lines,
            forward_passes: dnn_batch.forward_passes,
            quantized: dnn_batch.quantized,
        }
    }
}

/// Result of a batched adaptive run ([`AdaptiveModeler::model_batch`]).
#[derive(Debug, Clone)]
pub struct AdaptiveBatch {
    /// Per-kernel outcomes, in input order.
    pub outcomes: Vec<Result<AdaptiveOutcome, ModelError>>,
    /// Measurement lines classified in the coalesced DNN forward pass.
    pub batched_lines: usize,
    /// Network forward passes issued for the whole batch (`0` or `1`).
    pub forward_passes: usize,
    /// Whether the coalesced forward pass ran on the int8-quantized
    /// network (see [`DnnOptions::quantize`](crate::DnnOptions)).
    pub quantized: bool,
}

/// Per-set state after the shared preprocessing pipeline: sanitized data,
/// quality report, noise estimate, and the applicable threshold.
struct Prepared {
    set: MeasurementSet,
    quality: DataQualityReport,
    noise: NoiseEstimate,
    threshold: f64,
}

/// The preprocessing half of the adaptive pipeline: parameter check,
/// sanitization (with strict-policy enforcement), and noise estimation.
fn prepare(opts: &AdaptiveOptions, set: &MeasurementSet) -> Result<Prepared, ModelError> {
    if set.num_params() == 0 {
        return Err(ModelError::NoParameters);
    }
    let (sanitized, quality) = if opts.sanitize.policy == SanitizePolicy::Off {
        (set.clone(), DataQualityReport::untouched(set))
    } else {
        sanitize(set, &opts.sanitize)
    };
    if opts.sanitize.policy == SanitizePolicy::Strict && !quality.is_clean() {
        return Err(ModelError::CorruptData {
            dropped: quality.dropped() + quality.points_dropped,
            clamped: quality.clamped,
        });
    }
    if sanitized.is_empty() {
        return Err(ModelError::NoUsableData);
    }
    // A corrupted campaign calls for the robust noise estimator: the
    // mean-based one has a breakdown point of zero, and even after
    // winsorization the clamped repetitions stretch the per-point
    // ranges it relies on.
    let noise = if quality.is_clean() {
        NoiseEstimate::of(&sanitized)
    } else {
        NoiseEstimate::robust_of(&sanitized)
    };
    let threshold = opts.threshold_for(sanitized.num_params());
    Ok(Prepared {
        set: sanitized,
        quality,
        noise,
        threshold,
    })
}

/// The selection half of the adaptive pipeline: consult the regression
/// modeler below the noise threshold, pick the cross-validated winner, and
/// degrade along DNN → regression → constant mean when needed.
fn finish(
    opts: &AdaptiveOptions,
    prepared: Prepared,
    dnn_result: Result<ModelingResult, ModelError>,
) -> Result<AdaptiveOutcome, ModelError> {
    let Prepared {
        set,
        quality,
        noise,
        threshold,
    } = prepared;
    let set = &set;
    let use_regression = noise.mean() < threshold;
    let regression_result = if use_regression {
        opts.regression.model(set).ok()
    } else {
        None
    };

    // Select the winner by cross-validated SMAPE.
    match (dnn_result, &regression_result) {
        (Ok(d), Some(r)) => {
            let margin = 1.0 + opts.selection_margin.max(0.0);
            let (result, choice) = if r.cv_smape <= d.cv_smape * margin {
                (r.clone(), ModelerChoice::Regression)
            } else {
                (d.clone(), ModelerChoice::Dnn)
            };
            Ok(AdaptiveOutcome {
                result,
                noise,
                threshold,
                regression_result,
                dnn_result: Some(d),
                choice,
                quality,
            })
        }
        (Ok(d), None) => Ok(AdaptiveOutcome {
            result: d.clone(),
            noise,
            threshold,
            regression_result,
            dnn_result: Some(d),
            choice: ModelerChoice::Dnn,
            quality,
        }),
        (Err(_), Some(r)) => Ok(AdaptiveOutcome {
            result: r.clone(),
            noise,
            threshold,
            regression_result,
            dnn_result: None,
            choice: ModelerChoice::Regression,
            quality,
        }),
        (Err(e), None) => {
            // Above the threshold the regression modeler was skipped;
            // as a last resort consult it before degrading further.
            if let Ok(r) = opts.regression.model(set) {
                return Ok(AdaptiveOutcome {
                    result: r.clone(),
                    noise,
                    threshold,
                    regression_result: Some(r),
                    dnn_result: None,
                    choice: ModelerChoice::Regression,
                    quality,
                });
            }
            // Final rung of the degradation chain: recoverable
            // failures (too few points, no viable hypothesis, …) still
            // leave aggregable data — describe it with the constant
            // model at the mean so the caller gets an answer. Fatal
            // errors (broken coordinate domain) propagate.
            if e.is_recoverable() {
                if let Some(result) = constant_mean_result(set, opts.dnn.aggregation) {
                    return Ok(AdaptiveOutcome {
                        result,
                        noise,
                        threshold,
                        regression_result: None,
                        dnn_result: None,
                        choice: ModelerChoice::ConstantMean,
                        quality,
                    });
                }
            }
            Err(e)
        }
    }
}

/// The constant-mean fallback model: `f(x) = mean(aggregated values)`, with
/// leave-one-out cross-validation SMAPE so its score is comparable to the
/// real modelers'.
fn constant_mean_result(set: &MeasurementSet, agg: Aggregation) -> Option<ModelingResult> {
    let values: Vec<f64> = set.aggregated(agg).into_iter().map(|(_, v)| v).collect();
    if values.is_empty() {
        return None;
    }
    let n = values.len();
    let total: f64 = values.iter().sum();
    let mean = total / n as f64;
    if !mean.is_finite() {
        return None;
    }
    let fit_smape = smape(&values, &vec![mean; n]);
    let cv_smape = if n >= 2 {
        let loo: Vec<f64> = values
            .iter()
            .map(|v| (total - v) / (n - 1) as f64)
            .collect();
        smape(&values, &loo)
    } else {
        fit_smape
    };
    Some(ModelingResult {
        model: Model::constant_model(set.num_params(), mean),
        cv_smape,
        fit_smape,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::preprocess::NUM_INPUTS;
    use nrpm_extrap::ExponentPair;
    use nrpm_nn::NetworkConfig;
    use nrpm_synth::TrainingSpec;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn tiny_options() -> AdaptiveOptions {
        AdaptiveOptions {
            dnn: DnnOptions {
                network: NetworkConfig::new(&[NUM_INPUTS, 64, nrpm_extrap::NUM_CLASSES]),
                pretrain_spec: TrainingSpec {
                    samples_per_class: 50,
                    noise_range: (0.0, 0.4),
                    ..Default::default()
                },
                pretrain_epochs: 5,
                adaptation_samples_per_class: 30,
                seed: 5,
                ..Default::default()
            },
            ..Default::default()
        }
    }

    fn clean_linear_set() -> MeasurementSet {
        let mut set = MeasurementSet::new(1);
        for &x in &[4.0, 8.0, 16.0, 32.0, 64.0] {
            set.add_repetitions(&[x], &[2.0 * x, 2.0 * x, 2.0 * x]);
        }
        set
    }

    fn noisy_set(level: f64, seed: u64) -> MeasurementSet {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut set = MeasurementSet::new(1);
        for &x in &[4.0f64, 8.0, 16.0, 32.0, 64.0] {
            let truth = 1.0 + 0.5 * x * x;
            let reps: Vec<f64> = (0..5)
                .map(|_| truth * rng.gen_range(1.0 - level / 2.0..=1.0 + level / 2.0))
                .collect();
            set.add_repetitions(&[x], &reps);
        }
        set
    }

    #[test]
    fn clean_data_consults_the_regression_modeler() {
        let mut modeler = AdaptiveModeler::pretrained(tiny_options());
        let outcome = modeler.model(&clean_linear_set()).unwrap();
        // Noise is zero, far below any threshold.
        assert!(outcome.noise.mean() < 0.01);
        assert!(outcome.regression_result.is_some());
        // The exact linear model must be found.
        assert_eq!(
            outcome.result.model.lead_exponent(0).unwrap(),
            ExponentPair::from_parts(1, 1, 0)
        );
        assert!(outcome.result.cv_smape < 1e-6);
    }

    #[test]
    fn high_noise_switches_off_the_regression_modeler() {
        let mut opts = tiny_options();
        opts.use_domain_adaptation = false; // keep the test fast
        let mut modeler = AdaptiveModeler::pretrained(opts);
        let set = noisy_set(0.9, 11);
        let outcome = modeler.model(&set).unwrap();
        assert!(
            outcome.noise.mean() > outcome.threshold,
            "estimated noise {} below threshold {}",
            outcome.noise.mean(),
            outcome.threshold
        );
        assert!(outcome.regression_result.is_none());
        assert_eq!(outcome.choice, ModelerChoice::Dnn);
    }

    #[test]
    fn custom_thresholds_are_respected() {
        let mut opts = tiny_options();
        opts.use_domain_adaptation = false;
        opts.thresholds = Some(vec![0.9]); // effectively never switch off
        let mut modeler = AdaptiveModeler::pretrained(opts);
        let set = noisy_set(0.5, 13);
        let outcome = modeler.model(&set).unwrap();
        assert_eq!(outcome.threshold, 0.9);
        assert!(outcome.regression_result.is_some());
    }

    #[test]
    fn domain_adaptation_path_works_end_to_end() {
        let mut modeler = AdaptiveModeler::pretrained(tiny_options());
        let set = noisy_set(0.2, 17);
        let outcome = modeler.model(&set).unwrap();
        assert!(outcome.result.cv_smape.is_finite());
        assert!(outcome.dnn_result.is_some() || outcome.regression_result.is_some());
    }

    #[test]
    fn zero_params_is_rejected() {
        let mut modeler = AdaptiveModeler::pretrained(tiny_options());
        let set = MeasurementSet::new(0);
        assert!(matches!(modeler.model(&set), Err(ModelError::NoParameters)));
    }

    #[test]
    fn corrupted_input_is_repaired_and_modeled() {
        let mut opts = tiny_options();
        opts.use_domain_adaptation = false;
        let mut modeler = AdaptiveModeler::pretrained(opts);
        let mut set = MeasurementSet::new(1);
        for &x in &[4.0f64, 8.0, 16.0, 32.0, 64.0] {
            // One NaN and one 100x spike per point, plus clean repetitions.
            set.add_repetitions(&[x], &[2.0 * x, f64::NAN, 200.0 * x, 2.1 * x, 1.9 * x]);
        }
        let outcome = modeler.model(&set).unwrap();
        assert!(!outcome.quality.is_clean());
        assert_eq!(outcome.quality.dropped_non_finite, 5);
        assert_eq!(outcome.quality.clamped, 5);
        assert!(outcome.result.cv_smape.is_finite());
        // The spikes were winsorized, so the linear trend must survive.
        assert!(
            outcome.result.model.evaluate(&[128.0]) < 10_000.0,
            "spikes leaked into the model: {}",
            outcome.result.model
        );
    }

    #[test]
    fn strict_policy_rejects_corrupted_input() {
        let mut opts = tiny_options();
        opts.use_domain_adaptation = false;
        opts.sanitize.policy = SanitizePolicy::Strict;
        let mut modeler = AdaptiveModeler::pretrained(opts);
        let mut set = clean_linear_set();
        set.add_repetitions(&[128.0], &[256.0, f64::NAN]);
        let err = modeler.model(&set).unwrap_err();
        assert!(matches!(err, ModelError::CorruptData { dropped: 1, .. }));
        assert!(err.is_recoverable());
    }

    #[test]
    fn strict_policy_accepts_clean_input() {
        let mut opts = tiny_options();
        opts.use_domain_adaptation = false;
        opts.sanitize.policy = SanitizePolicy::Strict;
        let mut modeler = AdaptiveModeler::pretrained(opts);
        let outcome = modeler.model(&clean_linear_set()).unwrap();
        assert!(outcome.quality.is_clean());
    }

    #[test]
    fn fully_corrupt_input_reports_no_usable_data() {
        let mut opts = tiny_options();
        opts.use_domain_adaptation = false;
        let mut modeler = AdaptiveModeler::pretrained(opts);
        let mut set = MeasurementSet::new(1);
        set.add_repetitions(&[4.0], &[f64::NAN, f64::INFINITY]);
        set.add_repetitions(&[8.0], &[0.0, -1.0]);
        assert!(matches!(modeler.model(&set), Err(ModelError::NoUsableData)));
    }

    #[test]
    fn too_few_points_degrades_to_the_constant_mean_model() {
        let mut opts = tiny_options();
        opts.use_domain_adaptation = false;
        let mut modeler = AdaptiveModeler::pretrained(opts);
        // Three points: both real modelers demand five distinct ones.
        let mut set = MeasurementSet::new(1);
        for &x in &[4.0, 8.0, 16.0] {
            set.add_repetitions(&[x], &[10.0, 10.5, 9.5]);
        }
        let outcome = modeler.model(&set).unwrap();
        assert_eq!(outcome.choice, ModelerChoice::ConstantMean);
        assert!(outcome.result.model.terms.is_empty());
        assert!((outcome.result.model.evaluate(&[32.0]) - 10.0).abs() < 1.0);
        assert!(outcome.result.cv_smape.is_finite());
    }

    #[test]
    fn constant_mean_result_scores_by_leave_one_out() {
        let mut set = MeasurementSet::new(1);
        for &x in &[2.0, 4.0, 8.0] {
            set.add(&[x], 10.0);
        }
        let r = constant_mean_result(&set, Aggregation::Median).unwrap();
        // Perfectly constant data: zero error both in-sample and LOO.
        assert!(r.fit_smape < 1e-12);
        assert!(r.cv_smape < 1e-12);
        assert_eq!(r.model.evaluate(&[1000.0]), 10.0);
    }

    #[test]
    fn sanitization_off_passes_input_through() {
        let mut opts = tiny_options();
        opts.use_domain_adaptation = false;
        opts.sanitize.policy = SanitizePolicy::Off;
        let mut modeler = AdaptiveModeler::pretrained(opts);
        let outcome = modeler.model(&clean_linear_set()).unwrap();
        assert!(outcome.quality.is_clean());
        assert_eq!(outcome.quality.points_in, 5);
    }

    #[test]
    fn model_batch_matches_sequential_outcomes() {
        let mut opts = tiny_options();
        opts.use_domain_adaptation = false;
        let mut sequential = AdaptiveModeler::pretrained(opts.clone());
        let batched = AdaptiveModeler::from_network(opts, sequential.dnn().network().clone());

        let sets = vec![
            clean_linear_set(),
            noisy_set(0.3, 7),
            MeasurementSet::new(0), // NoParameters — must not poison the batch
            noisy_set(0.05, 11),
        ];
        let batch = batched.model_batch(&sets);
        assert_eq!(batch.outcomes.len(), sets.len());
        assert_eq!(batch.forward_passes, 1);
        assert!(batch.batched_lines >= 3);

        for (set, got) in sets.iter().zip(&batch.outcomes) {
            match (sequential.model(set), got) {
                (Ok(want), Ok(got)) => {
                    assert_eq!(want.choice, got.choice);
                    assert_eq!(want.result.model.to_string(), got.result.model.to_string());
                    assert_eq!(
                        want.result.cv_smape.to_bits(),
                        got.result.cv_smape.to_bits()
                    );
                    assert_eq!(want.noise.mean().to_bits(), got.noise.mean().to_bits());
                }
                (Err(want), Err(got)) => assert_eq!(want.severity(), got.severity()),
                (want, got) => panic!("outcome mismatch: {want:?} vs {got:?}"),
            }
        }
    }

    #[test]
    fn outcomes_round_trip_bit_stably_through_json() {
        use serde::{Deserialize as _, Serialize as _};
        let mut opts = tiny_options();
        opts.use_domain_adaptation = false;
        let mut modeler = AdaptiveModeler::pretrained(opts);
        let outcome = modeler.model(&noisy_set(0.2, 3)).unwrap();

        let text = serde_json::to_string(&outcome.to_value()).unwrap();
        let back = AdaptiveOutcome::from_value(&serde_json::from_str(&text).unwrap()).unwrap();

        // Bit-stability is what lets the persistent result cache hand back
        // a recovered outcome as if it were freshly computed.
        assert_eq!(
            back.result.cv_smape.to_bits(),
            outcome.result.cv_smape.to_bits()
        );
        assert_eq!(
            back.result.fit_smape.to_bits(),
            outcome.result.fit_smape.to_bits()
        );
        assert_eq!(back.noise.mean().to_bits(), outcome.noise.mean().to_bits());
        assert_eq!(back.threshold.to_bits(), outcome.threshold.to_bits());
        assert_eq!(back.choice, outcome.choice);
        assert_eq!(
            back.result.model.to_string(),
            outcome.result.model.to_string()
        );
        assert_eq!(
            back.result.model.evaluate(&[128.0]).to_bits(),
            outcome.result.model.evaluate(&[128.0]).to_bits()
        );
        assert_eq!(back.quality, outcome.quality);
        assert_eq!(
            back.regression_result.is_some(),
            outcome.regression_result.is_some()
        );
    }

    #[test]
    fn network_round_trip_through_from_network() {
        let modeler = AdaptiveModeler::pretrained(tiny_options());
        let json = modeler.dnn().network().to_json();
        let net = Network::from_json(&json).unwrap();
        let mut opts = tiny_options();
        opts.use_domain_adaptation = false;
        let mut restored = AdaptiveModeler::from_network(opts, net);
        let outcome = restored.model(&clean_linear_set()).unwrap();
        assert!(outcome.result.cv_smape < 1.0);
    }
}
