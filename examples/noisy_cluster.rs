//! A condensed version of the paper's motivating scenario: the same kernel
//! measured on an increasingly noisy cluster. At low noise both modelers
//! agree; as run-to-run variability grows, the regression modeler's lead
//! exponents drift while the adaptive modeler stays closer to the truth.
//!
//! ```text
//! cargo run --release --example noisy_cluster
//! ```

use nrpm::metrics::lead_exponent_distance;
use nrpm::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// The kernel under study: O(p^{3/2}), like a naive all-to-all.
fn measure(noise: f64, seed: u64) -> MeasurementSet {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut set = MeasurementSet::new(1);
    for &p in &[8.0f64, 16.0, 32.0, 64.0, 128.0] {
        let truth = 2.0 + 0.4 * p.powf(1.5);
        let reps: Vec<f64> = (0..5)
            .map(|_| truth * rng.gen_range(1.0 - noise / 2.0..=1.0 + noise / 2.0))
            .collect();
        set.add_repetitions(&[p], &reps);
    }
    set
}

fn main() {
    let truth_pair = [ExponentPair::from_parts(3, 2, 0)];

    println!("pretraining the DNN modeler...");
    let pretrained = AdaptiveModeler::pretrained(AdaptiveOptions::default());
    let regression = RegressionModeler::default();

    println!("\nkernel truth: 2 + 0.4 * p^(3/2); five points, five repetitions");
    println!(
        "\n{:>6}  {:>10}  {:>26}  {:>26}",
        "noise", "estimated", "regression (d)", "adaptive (d)"
    );

    for &noise in &[0.02, 0.10, 0.30, 0.60, 1.00] {
        // A couple of seeds per level so single lucky draws don't mislead.
        let mut reg_d = Vec::new();
        let mut ada_d = Vec::new();
        let mut est = Vec::new();
        let mut reg_lead = String::new();
        let mut ada_lead = String::new();
        for seed in 0..3u64 {
            let set = measure(noise, 1000 + seed);
            est.push(NoiseEstimate::of(&set).mean());

            if let Ok(r) = regression.model(&set) {
                reg_d.push(lead_exponent_distance(&r.model, &truth_pair));
                reg_lead = r.model.lead_exponent_or_constant(0).to_string();
            }
            let mut adaptive = pretrained.clone();
            if let Ok(a) = adaptive.model(&set) {
                ada_d.push(lead_exponent_distance(&a.result.model, &truth_pair));
                ada_lead = a.result.model.lead_exponent_or_constant(0).to_string();
            }
        }
        let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len().max(1) as f64;
        println!(
            "{:>5.0}%  {:>9.1}%  {:>20} {:>5.2}  {:>20} {:>5.2}",
            noise * 100.0,
            mean(&est) * 100.0,
            reg_lead,
            mean(&reg_d),
            ada_lead,
            mean(&ada_d),
        );
    }

    println!("\n(d = lead-exponent distance to the truth; 0 is exact, <= 0.25 counts as correct)");
}
