//! The simulated FASTEST case study.
//!
//! FASTEST simulates flows in complex 3D configurations (a finite-volume
//! CFD code). The paper measured it on SuperMUC over two parameters: the
//! number of processes `x1 = (16, 32, 64, 128, 256, 512, 1024, 2048)` and
//! the problem size per process `x2 = (8192, …, 131072)`. Modeling uses two
//! crossing lines of five points (the `x1` line at `x2 = 131072`, the `x2`
//! line at `x1 = 256`, overlapping at `P(256, 131072)` — nine points), and
//! the evaluation point is `P⁺(2048, 8192)`.
//!
//! FASTEST has no published analytical models, so the 20 kernel ground
//! truths are plausible CFD scaling laws: per-process compute linear to
//! superlinear in the local problem size (flux assembly, smoothers, SIP
//! solver sweeps), communication growing with the process count (halo
//! exchanges, global reductions for convergence checks), and I/O-ish
//! constants. What matters for the reproduction is the *noise*: FASTEST is
//! by far the noisiest study (Fig. 5: levels in `[7.51, 160.27] %`, mean
//! 49.56 %), which is exactly the regime where the DNN modeler should pull
//! ahead.

use crate::campaign::{build_kernel, pmnf, CaseStudy, Layout};
use crate::noise_regime::NoiseRegime;

/// Measured-scale noise regime matching Fig. 5's FASTEST statistics:
/// `0.0751 + (1.6027 − 0.0751)/(skew + 1) = 0.4956` gives `skew ≈ 2.63`.
pub(crate) fn fastest_noise() -> NoiseRegime {
    NoiseRegime {
        min: 0.0751,
        max: 1.6027,
        skew: 2.63,
    }
}

/// Generates the simulated FASTEST campaign.
pub fn fastest(seed: u64) -> CaseStudy {
    // The modeling lines: x1 in (16..256) at x2 = 131072; x2 full range at
    // x1 = 256.
    let values = vec![
        vec![16.0, 32.0, 64.0, 128.0, 256.0],
        vec![8192.0, 16384.0, 32768.0, 65536.0, 131072.0],
    ];
    let eval = vec![2048.0, 8192.0];
    let noise = fastest_noise();

    type Truth<'a> = (&'a str, f64, f64, &'a [(f64, &'a [(usize, i32, i32, u8)])]);
    let kernels: &[Truth] = &[
        // Compute-dominated kernels: linear-ish in the local problem size.
        ("flux_assembly", 0.12, 2.0, &[(4e-4, &[(1, 1, 1, 0)])]),
        ("momentum_x", 0.09, 1.5, &[(3e-4, &[(1, 1, 1, 0)])]),
        ("momentum_y", 0.09, 1.5, &[(3e-4, &[(1, 1, 1, 0)])]),
        ("momentum_z", 0.09, 1.5, &[(3e-4, &[(1, 1, 1, 0)])]),
        ("pressure_correction", 0.12, 3.0, &[(6e-5, &[(1, 1, 1, 1)])]),
        ("sip_solver", 0.14, 2.5, &[(9e-5, &[(1, 1, 1, 1)])]),
        ("turbulence_model", 0.05, 1.0, &[(2e-4, &[(1, 1, 1, 0)])]),
        (
            "gradient_reconstruction",
            0.04,
            0.8,
            &[(1.5e-4, &[(1, 1, 1, 0)])],
        ),
        ("interpolation", 0.03, 0.5, &[(1e-4, &[(1, 1, 1, 0)])]),
        ("boundary_conditions", 0.02, 0.4, &[(2e-5, &[(1, 3, 4, 0)])]),
        // Communication-dominated kernels.
        (
            "halo_exchange",
            0.05,
            1.0,
            &[(0.02, &[(0, 1, 2, 0)]), (1e-5, &[(1, 1, 1, 0)])],
        ),
        ("global_reduce", 0.03, 0.5, &[(0.15, &[(0, 0, 1, 1)])]),
        ("convergence_check", 0.02, 0.3, &[(0.08, &[(0, 0, 1, 1)])]),
        ("pressure_comm", 0.02, 0.4, &[(0.01, &[(0, 1, 2, 0)])]),
        ("load_balance", 0.015, 0.2, &[(0.002, &[(0, 1, 1, 0)])]),
        // Mixed kernels: compute times a communication factor.
        (
            "multigrid_cycle",
            0.04,
            1.2,
            &[(4e-5, &[(0, 0, 1, 1), (1, 1, 1, 0)])],
        ),
        (
            "residual_norm",
            0.015,
            0.3,
            &[(3e-5, &[(1, 1, 1, 0)]), (0.04, &[(0, 0, 1, 1)])],
        ),
        (
            "coefficient_update",
            0.02,
            0.6,
            &[(1.2e-4, &[(1, 1, 1, 0)])],
        ),
        // Below the relevance threshold.
        ("statistics_output", 0.008, 0.1, &[(1e-6, &[(1, 1, 1, 0)])]),
        ("checkpoint_write", 0.005, 0.5, &[(5e-7, &[(1, 1, 1, 0)])]),
    ];

    let kernels = kernels
        .iter()
        .enumerate()
        .map(|(i, (name, share, c0, terms))| {
            build_kernel(
                name,
                pmnf(2, *c0, terms),
                *share,
                &values,
                &Layout::CrossLines {
                    base_index: vec![4, 4],
                },
                5,
                noise,
                eval.clone(),
                seed.wrapping_add(i as u64 * 104729),
            )
        })
        .collect();

    CaseStudy {
        name: "FASTEST",
        parameter_names: vec!["processes", "problem size per process"],
        parameter_values: values,
        kernels,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn campaign_has_twenty_kernels_with_nine_points_each() {
        let study = fastest(1);
        assert_eq!(study.kernels.len(), 20);
        for k in &study.kernels {
            assert_eq!(k.set.len(), 9, "{}: two crossing 5-point lines", k.name);
            assert!(k.set.find(&[256.0, 131072.0]).is_some(), "overlap point");
            assert_eq!(k.eval_point, vec![2048.0, 8192.0]);
        }
    }

    #[test]
    fn eighteen_kernels_are_performance_relevant() {
        let study = fastest(2);
        assert_eq!(study.relevant_kernels().count(), 18);
    }

    #[test]
    fn lines_follow_the_papers_bases() {
        let study = fastest(3);
        let set = &study.kernels[0].set;
        // x1 line at x2 = 131072
        for &x1 in &[16.0, 32.0, 64.0, 128.0, 256.0] {
            assert!(set.find(&[x1, 131072.0]).is_some());
        }
        // x2 line at x1 = 256
        for &x2 in &[8192.0, 16384.0, 32768.0, 65536.0, 131072.0] {
            assert!(set.find(&[256.0, x2]).is_some());
        }
    }

    #[test]
    fn noise_is_the_heaviest_of_the_three_studies() {
        let study = fastest(5);
        let est = nrpm_core::noise::NoiseEstimate::of(&study.kernels[0].set);
        // Nine points is a small sample; allow a generous band around the
        // paper's 49.56 % mean.
        assert!(
            est.mean() > 0.15 && est.mean() < 1.2,
            "measured mean noise {:.4} implausible",
            est.mean()
        );
    }

    #[test]
    fn runtime_shares_sum_close_to_one() {
        let study = fastest(7);
        let total: f64 = study.kernels.iter().map(|k| k.runtime_share).sum();
        assert!((total - 1.0).abs() < 0.05, "shares sum to {total}");
    }
}
