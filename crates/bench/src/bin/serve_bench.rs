//! Serving throughput benchmark: requests/sec and latency percentiles for
//! single-kernel vs. batched requests against a live `nrpm-serve` server at
//! several worker-pool sizes.
//!
//! Batched requests coalesce the DNN forward passes of all kernels in the
//! request into one matrix multiplication, so their per-kernel cost should
//! drop measurably below the single-request path.
//!
//! A second pair of scenarios (`batch-f64` vs. `batch-int8`) serves the
//! full paper architecture (3.7 M parameters) with and without the int8
//! quantized inference path, isolating what `nrpm serve --quantize` buys
//! when the forward pass actually dominates per-kernel cost.
//!
//! ```text
//! cargo run -p nrpm-bench --release --bin serve_bench -- \
//!     [--requests N] [--kernels K] [--quant-kernels Q] [--clients C] \
//!     [--workers 1,4,8] [--out BENCH_serve.json]
//! ```

use nrpm_bench::cli::Args;
use nrpm_bench::report::{f2, Table};
use nrpm_core::adaptive::AdaptiveOptions;
use nrpm_core::preprocess::NUM_INPUTS;
use nrpm_extrap::{MeasurementSet, NUM_CLASSES};
use nrpm_nn::{Network, NetworkConfig, QuantGate};
use nrpm_serve::client::{is_ok, Client};
use nrpm_serve::server::{ServeOptions, Server};
use nrpm_serve::store::ModelStore;
use serde::{Serialize, Value};
use std::time::{Duration, Instant};

/// One benchmarked scenario.
#[derive(Debug, Clone, Serialize)]
struct ScenarioResult {
    workers: usize,
    mode: String,
    requests: usize,
    kernels: usize,
    wall_s: f64,
    requests_per_s: f64,
    kernels_per_s: f64,
    p50_ms: f64,
    p99_ms: f64,
    per_kernel_ms: f64,
    batched_forward_calls: u64,
    batched_rows: u64,
    quantized_forward_calls: u64,
    quant_fallbacks: u64,
}

#[derive(Debug, Clone, Serialize)]
struct ServeBenchReport {
    requests_per_scenario: usize,
    batch_kernels: usize,
    client_threads: usize,
    scenarios: Vec<ScenarioResult>,
}

/// A mildly noisy 5-point kernel — representative modeling work without
/// being trivially constant.
fn bench_set(salt: u64) -> MeasurementSet {
    let mut set = MeasurementSet::new(1);
    for (i, &x) in [4.0f64, 8.0, 16.0, 32.0, 64.0].iter().enumerate() {
        let wiggle = 1.0 + 0.01 * ((salt as usize + i) % 5) as f64;
        let y = (1.0 + 0.5 * x * x) * wiggle;
        set.add_repetitions(&[x], &[y, y * 1.02, y * 0.98]);
    }
    set
}

/// A store serving the full paper architecture, optionally through the
/// int8 quantized path. The gate is opened wide for the benchmark: the
/// weights are random (untrained), so class probabilities sit near
/// uniform and calibration argmax "flips" are coin tosses between
/// near-tied classes, not accuracy loss — a trained network passes the
/// default gate (see the core/nn gate tests), but a random one may not.
/// This bench measures throughput only.
fn paper_store(quantize: bool) -> ModelStore {
    let config = NetworkConfig::paper();
    let network = Network::new(&config, 17);
    let mut opts = AdaptiveOptions::default();
    opts.dnn.network = config;
    opts.dnn.quantize = quantize;
    // Pin the pipeline to the DNN modeler (the above-threshold noisy
    // regime the paper targets): with a zero switching threshold the
    // exhaustive regression search never runs, so the two scenarios
    // compare the forward-pass cost itself rather than shared per-kernel
    // modeling overhead.
    opts.thresholds = Some(vec![0.0]);
    opts.dnn.quant_gate = QuantGate {
        max_prob_drift: 1.0,
        max_argmax_flips: usize::MAX,
    };
    ModelStore::from_network(network, opts).expect("paper store")
}

fn percentile(sorted: &[Duration], q: f64) -> f64 {
    if sorted.is_empty() {
        return f64::NAN;
    }
    let idx = ((sorted.len() as f64 - 1.0) * q).round() as usize;
    sorted[idx].as_secs_f64() * 1e3
}

/// Runs one scenario against a fresh server and collects its latencies.
fn run_scenario(
    workers: usize,
    mode: &str,
    requests: usize,
    kernels_per_request: usize,
    clients: usize,
    store: &ModelStore,
) -> ScenarioResult {
    let server = Server::start(
        "127.0.0.1:0",
        store.clone(),
        ServeOptions {
            workers,
            ..Default::default()
        },
    )
    .expect("bind bench server");
    let addr = server.addr();

    let started = Instant::now();
    let handles: Vec<_> = (0..clients)
        .map(|c| {
            let share = requests / clients + usize::from(c < requests % clients);
            std::thread::spawn(move || {
                let mut client =
                    Client::connect(addr, Duration::from_secs(60)).expect("connect bench client");
                let mut latencies = Vec::with_capacity(share);
                for r in 0..share {
                    let salt = (c * 131 + r) as u64;
                    let sent = Instant::now();
                    let response = if kernels_per_request == 1 {
                        client.model(bench_set(salt), None, None)
                    } else {
                        let sets: Vec<MeasurementSet> = (0..kernels_per_request)
                            .map(|k| bench_set(salt + k as u64))
                            .collect();
                        client.batch(sets, None)
                    }
                    .expect("bench request");
                    assert!(is_ok(&response), "bench request failed: {response:?}");
                    latencies.push(sent.elapsed());
                }
                latencies
            })
        })
        .collect();
    let mut latencies: Vec<Duration> = Vec::with_capacity(requests);
    for handle in handles {
        latencies.extend(handle.join().expect("bench client thread"));
    }
    let wall = started.elapsed().as_secs_f64();

    let mut stats_client = Client::connect(addr, Duration::from_secs(60)).expect("stats client");
    let stats = stats_client.stats().expect("stats");
    let counter = |key: &str| stats.get(key).and_then(Value::as_u64).unwrap_or(0);
    let result = ScenarioResult {
        workers,
        mode: mode.to_string(),
        requests,
        kernels: requests * kernels_per_request,
        wall_s: wall,
        requests_per_s: requests as f64 / wall,
        kernels_per_s: (requests * kernels_per_request) as f64 / wall,
        p50_ms: 0.0,
        p99_ms: 0.0,
        per_kernel_ms: 0.0,
        batched_forward_calls: counter("batched_forward_calls"),
        batched_rows: counter("batched_rows"),
        quantized_forward_calls: counter("quantized_forward_calls"),
        quant_fallbacks: counter("quant_fallbacks"),
    };
    stats_client.shutdown().expect("shutdown");
    server.join().expect("drain bench server");

    latencies.sort();
    let p50 = percentile(&latencies, 0.50);
    ScenarioResult {
        p50_ms: p50,
        p99_ms: percentile(&latencies, 0.99),
        per_kernel_ms: p50 / kernels_per_request as f64,
        ..result
    }
}

fn main() {
    let args = Args::parse();
    let requests = args.get("requests", 64usize);
    let kernels = args.get("kernels", 8usize);
    // The quantization scenarios batch deeper: the int8 path exists for
    // batch serving, and per-request transport otherwise drowns the
    // forward-pass delta being measured.
    let quant_kernels = args.get("quant-kernels", 32usize);
    let clients = args.get("clients", 4usize);
    let worker_counts: Vec<usize> = args
        .get_f64_list("workers", &[1.0, 4.0, 8.0])
        .into_iter()
        .map(|w| w as usize)
        .collect();
    let out = args.get("out", "BENCH_serve.json".to_string());

    // The store only needs the right shape; serving cost is dominated by
    // the modeling pipeline, not by how the weights were trained.
    let network = Network::new(&NetworkConfig::new(&[NUM_INPUTS, 64, NUM_CLASSES]), 17);
    let store = ModelStore::from_network(network, AdaptiveOptions::default()).expect("store");

    println!(
        "serve throughput: {requests} requests/scenario, batch={kernels} kernels, \
         {clients} client threads\n"
    );
    let mut table = Table::new(&[
        "workers",
        "mode",
        "req/s",
        "kernels/s",
        "p50 ms",
        "p99 ms",
        "ms/kernel",
    ]);
    let mut scenarios = Vec::new();
    for &workers in &worker_counts {
        for (mode, per_request) in [("single", 1), ("batch", kernels)] {
            let result = run_scenario(workers, mode, requests, per_request, clients, &store);
            table.row(vec![
                result.workers.to_string(),
                result.mode.clone(),
                f2(result.requests_per_s),
                f2(result.kernels_per_s),
                f2(result.p50_ms),
                f2(result.p99_ms),
                f2(result.per_kernel_ms),
            ]);
            scenarios.push(result);
        }
    }
    table.print();

    for workers in &worker_counts {
        let of = |mode: &str| {
            scenarios
                .iter()
                .find(|s| s.workers == *workers && s.mode == mode)
                .expect("scenario ran")
        };
        let speedup = of("batch").kernels_per_s / of("single").kernels_per_s;
        println!("workers={workers}: batched serving models {speedup:.2}x more kernels/s");
    }

    // The quantization comparison: same requests against the 3.7 M-param
    // paper network, f64 vs. int8 forward pass (`nrpm serve --quantize`).
    println!("\npaper-architecture store ({} workers):", worker_counts[0]);
    let mut qtable = Table::new(&[
        "mode",
        "req/s",
        "kernels/s",
        "p50 ms",
        "p99 ms",
        "ms/kernel",
        "quant fwd",
    ]);
    for (mode, quantize) in [("batch-f64", false), ("batch-int8", true)] {
        let store = paper_store(quantize);
        let result = run_scenario(
            worker_counts[0],
            mode,
            requests,
            quant_kernels,
            clients,
            &store,
        );
        qtable.row(vec![
            result.mode.clone(),
            f2(result.requests_per_s),
            f2(result.kernels_per_s),
            f2(result.p50_ms),
            f2(result.p99_ms),
            f2(result.per_kernel_ms),
            result.quantized_forward_calls.to_string(),
        ]);
        scenarios.push(result);
    }
    qtable.print();

    let of = |mode: &str| {
        scenarios
            .iter()
            .find(|s| s.mode == mode)
            .expect("scenario ran")
    };
    let int8 = of("batch-int8");
    assert!(
        int8.quantized_forward_calls > 0 && int8.quant_fallbacks == 0,
        "quantized scenario did not take the int8 path"
    );
    let quant_speedup = int8.kernels_per_s / of("batch-f64").kernels_per_s;
    println!("paper net: --quantize serves {quant_speedup:.2}x more kernels/s in batch mode");

    let report = ServeBenchReport {
        requests_per_scenario: requests,
        batch_kernels: kernels,
        client_threads: clients,
        scenarios,
    };
    let json = serde_json::to_string_pretty(&report).expect("serialize report");
    std::fs::write(&out, json).expect("write report");
    println!("\nreport written to {out}");
}
