//! End-to-end tests of the replicated, cross-machine tier: quorum reads
//! under replica loss and partition, the token-authenticated join
//! handshake with heartbeat leases, warm-standby router takeover, and the
//! journaled rolling rollout — all over real TCP on ephemeral ports.

use nrpm_cluster::{Cluster, ClusterOptions, JoinAgent, JoinAgentOptions, JOIN_PROTOCOL_VERSION};
use nrpm_core::adaptive::AdaptiveOptions;
use nrpm_core::preprocess::NUM_INPUTS;
use nrpm_extrap::{MeasurementSet, NUM_CLASSES};
use nrpm_nn::{Network, NetworkConfig};
use nrpm_registry::hex16;
use nrpm_registry::rollout::RolloutJournal;
use nrpm_serve::chaos::{ChaosOptions, ChaosProxy};
use nrpm_serve::client::{is_ok, Client, RetryPolicy, RetryingClient};
use nrpm_serve::server::{ServeOptions, Server};
use nrpm_serve::store::ModelStore;
use serde::Value;
use std::net::SocketAddr;
use std::path::PathBuf;
use std::sync::mpsc;
use std::thread;
use std::time::{Duration, Instant};

fn test_network(seed: u64) -> Network {
    Network::new(&NetworkConfig::new(&[NUM_INPUTS, 16, NUM_CLASSES]), seed)
}

/// Distinct slopes give distinct fingerprints, so keys spread over the
/// ring; every set stays exactly linear so answers are deterministic.
fn keyed_set(key: usize) -> MeasurementSet {
    let slope = 2.0 + key as f64 * 0.5;
    let mut set = MeasurementSet::new(1);
    for &x in &[4.0, 8.0, 16.0, 32.0, 64.0] {
        set.add_repetitions(&[x], &[slope * x, slope * x]);
    }
    set
}

/// Three shards, two replicas per key, fast supervisor cadence.
fn replicated_options() -> ClusterOptions {
    ClusterOptions {
        shards: 3,
        replication: 2,
        probe_interval: Duration::from_millis(50),
        probe_timeout: Duration::from_millis(500),
        readmit_probes: 2,
        shard_timeout: Duration::from_millis(500),
        retry: RetryPolicy {
            max_attempts: 2,
            base_backoff: Duration::from_millis(5),
            max_backoff: Duration::from_millis(20),
            ..RetryPolicy::default()
        },
        debug_hooks: true,
        ..ClusterOptions::default()
    }
}

fn retrying(cluster: &Cluster) -> RetryingClient {
    RetryingClient::new(
        cluster.router_addr(),
        Duration::from_secs(30),
        RetryPolicy::default(),
    )
}

fn join_within(cluster: Cluster, limit: Duration) {
    cluster.request_shutdown();
    let (tx, rx) = mpsc::channel();
    thread::spawn(move || {
        let result = cluster.join();
        let _ = tx.send(result);
    });
    rx.recv_timeout(limit)
        .expect("cluster failed to drain within the limit")
        .expect("a cluster thread panicked");
}

fn router_stats_at(addr: SocketAddr) -> Value {
    let mut client = Client::connect(addr, Duration::from_secs(10)).unwrap();
    client.stats().unwrap()
}

/// Polls `predicate` against router stats until it holds or `limit` runs
/// out (supervisor probes, leases, and joins are all asynchronous).
fn wait_for_stats(addr: SocketAddr, limit: Duration, predicate: impl Fn(&Value) -> bool) -> Value {
    let deadline = Instant::now() + limit;
    loop {
        let stats = router_stats_at(addr);
        if predicate(&stats) {
            return stats;
        }
        assert!(
            Instant::now() < deadline,
            "condition not reached before deadline; last stats: {stats:?}"
        );
        thread::sleep(Duration::from_millis(25));
    }
}

fn stat(stats: &Value, key: &str) -> u64 {
    stats.get(key).and_then(Value::as_u64).unwrap_or(0)
}

/// A standalone `nrpm serve` backend for join tests: the "other host".
fn external_server(network: Network) -> (Server, u64) {
    let store = ModelStore::from_network(network, AdaptiveOptions::default()).unwrap();
    let hash = store.checkpoint_hash();
    let server = Server::start(
        "127.0.0.1:0",
        store,
        ServeOptions {
            workers: 1,
            ..ServeOptions::default()
        },
    )
    .unwrap();
    (server, hash)
}

/// A raw `cluster_join` line, for testing the handshake's refusal paths.
fn join_line(token: &str, addr: SocketAddr, hash: &str, protocol: u64) -> String {
    serde_json::to_string(&Value::Map(vec![
        ("cmd".into(), Value::Str("cluster_join".into())),
        ("token".into(), Value::Str(token.into())),
        ("addr".into(), Value::Str(addr.to_string())),
        ("checkpoint_hash".into(), Value::Str(hash.into())),
        ("protocol".into(), Value::U64(protocol)),
    ]))
    .unwrap()
}

#[test]
fn replicated_reads_fan_out_and_agree_by_quorum() {
    let cluster = Cluster::launch(test_network(7), replicated_options()).unwrap();
    let mut client = retrying(&cluster);

    for key in 0..12 {
        let response = client.model(keyed_set(key), None, None).unwrap();
        assert!(is_ok(&response), "key {key}: {response:?}");
        // Every key has two live replicas; the reply reports the fan-out
        // and a full quorum, and never a divergence (uniform fleet).
        assert_eq!(
            response.get("replicas").and_then(Value::as_u64),
            Some(2),
            "{response:?}"
        );
        assert_eq!(
            response.get("quorum").and_then(Value::as_u64),
            Some(2),
            "{response:?}"
        );
        assert_ne!(
            response.get("divergent").and_then(Value::as_bool),
            Some(true),
            "{response:?}"
        );
    }

    let stats = router_stats_at(cluster.router_addr());
    assert_eq!(stat(&stats, "replica_fanouts"), 12);
    assert_eq!(stat(&stats, "replica_divergences"), 0);
    assert_eq!(stat(&stats, "requests_routed"), 12);
    assert_eq!(stat(&stats, "rejected"), 0);
    join_within(cluster, Duration::from_secs(20));
}

#[test]
fn killing_one_replica_mid_burst_drops_and_diverges_nothing() {
    let expected_hash = {
        let store = ModelStore::from_network(test_network(7), AdaptiveOptions::default()).unwrap();
        hex16(store.checkpoint_hash())
    };
    let cluster = Cluster::launch(test_network(7), replicated_options()).unwrap();
    let addr = cluster.router_addr();

    let workers: Vec<_> = (0..3)
        .map(|worker| {
            let expected_hash = expected_hash.clone();
            thread::spawn(move || {
                let mut client =
                    RetryingClient::new(addr, Duration::from_secs(30), RetryPolicy::default());
                let mut answered = 0usize;
                for round in 0..10 {
                    for key in 0..6 {
                        let response = client.model(keyed_set(key), None, None).unwrap();
                        assert!(
                            is_ok(&response),
                            "worker {worker} round {round} key {key}: {response:?}"
                        );
                        // Zero wrong-epoch replies: every answer names the
                        // one checkpoint the fleet serves — a reply quorum-
                        // resolved against a divergent replica would not.
                        assert_eq!(
                            response.get("served_hash").and_then(Value::as_str),
                            Some(expected_hash.as_str()),
                            "worker {worker} round {round} key {key}: {response:?}"
                        );
                        assert_ne!(
                            response.get("divergent").and_then(Value::as_bool),
                            Some(true),
                            "worker {worker} round {round} key {key}: {response:?}"
                        );
                        answered += 1;
                    }
                }
                answered
            })
        })
        .collect();

    // Pull one replica out abruptly mid-burst. Every key keeps at least
    // one live replica (R=2 over 3 shards), so nothing is dropped.
    thread::sleep(Duration::from_millis(100));
    let mut admin = Client::connect(addr, Duration::from_secs(10)).unwrap();
    let response = admin
        .roundtrip_line(r#"{"cmd":"cluster_kill","shard":1}"#)
        .unwrap();
    assert!(is_ok(&response), "{response:?}");

    let mut answered = 0usize;
    for worker in workers {
        answered += worker.join().expect("a burst worker panicked");
    }
    assert_eq!(answered, 180, "every request must be answered");

    let stats = router_stats_at(addr);
    assert_eq!(stat(&stats, "rejected"), 0, "{stats:?}");
    assert_eq!(stat(&stats, "replica_divergences"), 0, "{stats:?}");
    join_within(cluster, Duration::from_secs(20));
}

#[test]
fn network_member_joins_heartbeats_lapses_and_rejoins() {
    let opts = ClusterOptions {
        join_token: Some("s3cret".into()),
        member_lease: Duration::from_millis(300),
        readmit_probes: 1,
        ..replicated_options()
    };
    let lease = opts.member_lease;
    let cluster = Cluster::launch(test_network(7), opts).unwrap();
    let router = cluster.router_addr();
    let (server, hash) = external_server(test_network(7));

    // Enroll: the agent joins, the member passes probation, and the
    // router's view grows to four routable shards.
    let mut agent = JoinAgent::start(JoinAgentOptions::new(router, "s3cret", server.addr(), hash));
    let stats = wait_for_stats(router, Duration::from_secs(10), |stats| {
        stat(stats, "shards") == 4 && stat(stats, "routable") == 4
    });
    assert!(stat(&stats, "joins") >= 1, "{stats:?}");
    assert_eq!(stat(&stats, "generation"), 4, "{stats:?}");
    let member = stats
        .get("per_shard")
        .and_then(Value::as_seq)
        .and_then(|shards| shards.last())
        .expect("per_shard entry for the joined member")
        .clone();
    assert_eq!(member.get("remote").and_then(Value::as_bool), Some(true));
    assert!(
        member.get("lease_ms").and_then(Value::as_u64).is_some(),
        "{member:?}"
    );

    // Stop heartbeating: the lease lapses and the supervisor ejects the
    // member within a couple of lease periods.
    agent.stop();
    let lapsed = wait_for_stats(router, lease * 10, |stats| {
        stat(stats, "lease_expiries") >= 1 && stat(stats, "routable") == 3
    });
    let ejected = lapsed
        .get("per_shard")
        .and_then(Value::as_seq)
        .and_then(|shards| shards.last())
        .unwrap()
        .clone();
    assert_eq!(
        ejected.get("state").and_then(Value::as_str),
        Some("ejected"),
        "{ejected:?}"
    );

    // Rejoin from the same address: same member id, bumped incarnation,
    // readmitted through probation under a fresh lease.
    let _agent = JoinAgent::start(JoinAgentOptions::new(router, "s3cret", server.addr(), hash));
    let back = wait_for_stats(router, Duration::from_secs(10), |stats| {
        stat(stats, "routable") == 4
    });
    assert_eq!(stat(&back, "shards"), 4, "rejoin must reuse the member id");
    assert!(stat(&back, "joins") >= 2, "{back:?}");
    let rejoined = back
        .get("per_shard")
        .and_then(Value::as_seq)
        .and_then(|shards| shards.last())
        .unwrap()
        .clone();
    assert!(
        rejoined.get("incarnation").and_then(Value::as_u64) >= Some(1),
        "{rejoined:?}"
    );

    join_within(cluster, Duration::from_secs(20));
    server.request_shutdown();
    server.join().unwrap();
}

#[test]
fn join_handshake_refuses_impostors_and_stale_checkpoints() {
    let opts = ClusterOptions {
        join_token: Some("s3cret".into()),
        ..replicated_options()
    };
    let cluster = Cluster::launch(test_network(7), opts).unwrap();
    let mut admin = Client::connect(cluster.router_addr(), Duration::from_secs(10)).unwrap();
    let (server, hash) = external_server(test_network(7));
    let kind_of = |response: &Value| {
        response
            .get("kind")
            .and_then(Value::as_str)
            .map(str::to_string)
    };

    // Wrong token.
    let refused = admin
        .roundtrip_line(&join_line(
            "wrong",
            server.addr(),
            &hex16(hash),
            JOIN_PROTOCOL_VERSION,
        ))
        .unwrap();
    assert_eq!(kind_of(&refused).as_deref(), Some("usage"), "{refused:?}");
    assert!(
        refused
            .get("message")
            .and_then(Value::as_str)
            .is_some_and(|e| e.contains("token")),
        "{refused:?}"
    );

    // Wrong protocol version.
    let refused = admin
        .roundtrip_line(&join_line(
            "s3cret",
            server.addr(),
            &hex16(hash),
            JOIN_PROTOCOL_VERSION + 1,
        ))
        .unwrap();
    assert_eq!(kind_of(&refused).as_deref(), Some("usage"), "{refused:?}");

    // Claimed hash differs from what the advertised address really
    // serves: the over-the-wire verification catches the lie.
    let refused = admin
        .roundtrip_line(&join_line(
            "s3cret",
            server.addr(),
            &hex16(hash ^ 1),
            JOIN_PROTOCOL_VERSION,
        ))
        .unwrap();
    assert_eq!(kind_of(&refused).as_deref(), Some("usage"), "{refused:?}");

    // Unreachable advertised address: recoverable, not usage — the
    // joiner may simply not be up yet.
    let refused = admin
        .roundtrip_line(&join_line(
            "s3cret",
            "127.0.0.1:1".parse().unwrap(),
            &hex16(hash),
            JOIN_PROTOCOL_VERSION,
        ))
        .unwrap();
    assert_eq!(
        kind_of(&refused).as_deref(),
        Some("recoverable"),
        "{refused:?}"
    );

    // Heartbeats for unknown members and local shards are refused.
    let refused = admin
        .roundtrip_line(r#"{"cmd":"cluster_heartbeat","token":"s3cret","shard":99}"#)
        .unwrap();
    assert_eq!(kind_of(&refused).as_deref(), Some("usage"), "{refused:?}");
    let refused = admin
        .roundtrip_line(r#"{"cmd":"cluster_heartbeat","token":"s3cret","shard":0}"#)
        .unwrap();
    assert_eq!(kind_of(&refused).as_deref(), Some("usage"), "{refused:?}");

    // Nothing slipped through: still three local members.
    let stats = router_stats_at(cluster.router_addr());
    assert_eq!(stat(&stats, "shards"), 3);
    assert_eq!(stat(&stats, "joins"), 0);
    join_within(cluster, Duration::from_secs(20));

    // A cluster with no token configured refuses every join outright.
    let closed = Cluster::launch(test_network(7), replicated_options()).unwrap();
    let mut admin = Client::connect(closed.router_addr(), Duration::from_secs(10)).unwrap();
    let refused = admin
        .roundtrip_line(&join_line(
            "anything",
            server.addr(),
            &hex16(hash),
            JOIN_PROTOCOL_VERSION,
        ))
        .unwrap();
    assert_eq!(kind_of(&refused).as_deref(), Some("usage"), "{refused:?}");
    assert!(
        refused
            .get("message")
            .and_then(Value::as_str)
            .is_some_and(|e| e.contains("closed")),
        "{refused:?}"
    );
    join_within(closed, Duration::from_secs(20));
    server.request_shutdown();
    server.join().unwrap();
}

#[test]
fn partitioned_member_is_ejected_and_burst_survives() {
    let opts = ClusterOptions {
        join_token: Some("s3cret".into()),
        member_lease: Duration::from_millis(400),
        probe_timeout: Duration::from_millis(250),
        readmit_probes: 1,
        ..replicated_options()
    };
    let cluster = Cluster::launch(test_network(7), opts).unwrap();
    let router = cluster.router_addr();
    let (server, hash) = external_server(test_network(7));

    // The router reaches the member only through the chaos proxy — the
    // test's stand-in for the network path between two hosts. No random
    // faults; the partition switch is flipped deterministically.
    let quiet = ChaosOptions {
        latency_prob: 0.0,
        partial_write_prob: 0.0,
        truncate_prob: 0.0,
        garbage_prob: 0.0,
        reset_prob: 0.0,
        asymmetric_delay_prob: 0.0,
        ..ChaosOptions::default()
    };
    let mut proxy = ChaosProxy::start(server.addr(), quiet).unwrap();
    let _agent = JoinAgent::start(JoinAgentOptions::new(router, "s3cret", proxy.addr(), hash));
    wait_for_stats(router, Duration::from_secs(10), |stats| {
        stat(stats, "routable") == 4
    });

    // Partition the link: probes and requests to the member black-hole,
    // while its heartbeats (agent → router, a different path) still renew
    // the lease. The supervisor must eject on probe failures alone.
    proxy.set_partitioned(true);
    let partitioned = wait_for_stats(router, Duration::from_secs(10), |stats| {
        stat(stats, "routable") == 3
    });
    assert_eq!(
        partitioned
            .get("per_shard")
            .and_then(Value::as_seq)
            .and_then(|shards| shards.last())
            .and_then(|member| member.get("state"))
            .and_then(Value::as_str),
        Some("ejected"),
        "{partitioned:?}"
    );

    // A burst against the partitioned fleet answers 100%: the member's
    // keys are covered by its ring successors and the second replica.
    let mut client = retrying(&cluster);
    for key in 0..12 {
        let response = client.model(keyed_set(key), None, None).unwrap();
        assert!(is_ok(&response), "key {key}: {response:?}");
        assert_ne!(
            response.get("divergent").and_then(Value::as_bool),
            Some(true),
            "{response:?}"
        );
    }
    assert!(proxy.fault_counts().blackholed > 0, "partition never bit");

    // Heal the link: probes pass again, the live lease permits
    // readmission, and the member returns to rotation.
    proxy.set_partitioned(false);
    wait_for_stats(router, Duration::from_secs(10), |stats| {
        stat(stats, "routable") == 4
    });

    join_within(cluster, Duration::from_secs(20));
    proxy.stop();
    server.request_shutdown();
    server.join().unwrap();
}

#[test]
fn standby_router_takes_over_within_one_lease_period() {
    let opts = ClusterOptions {
        standby: true,
        gossip_interval: Duration::from_millis(50),
        takeover_after: 2,
        ..replicated_options()
    };
    let lease = opts.member_lease;
    let cluster = Cluster::launch(test_network(7), opts).unwrap();
    let router = cluster.router_addr();

    // Warm the standby's view and leave some routing history behind.
    let mut client = retrying(&cluster);
    for key in 0..6 {
        let response = client.model(keyed_set(key), None, None).unwrap();
        assert!(is_ok(&response), "{response:?}");
    }
    wait_for_stats(router, Duration::from_secs(5), |stats| {
        stats.get("role").and_then(Value::as_str) == Some("primary")
    });
    thread::sleep(Duration::from_millis(200));

    // Simulate a router-host crash: the primary router and supervisor die,
    // the shard processes live on.
    let mut admin = Client::connect(router, Duration::from_secs(10)).unwrap();
    let killed = admin.roundtrip_line(r#"{"cmd":"router_kill"}"#).unwrap();
    assert_eq!(
        killed.get("router_killed").and_then(Value::as_bool),
        Some(true),
        "{killed:?}"
    );

    // The standby must own the advertised address within one lease
    // period of the missed gossip.
    let crashed_at = Instant::now();
    let deadline = crashed_at + lease;
    let stats = loop {
        if let Ok(mut probe) = Client::connect(router, Duration::from_millis(250)) {
            if let Ok(stats) = probe.stats() {
                if stats.get("role").and_then(Value::as_str) == Some("standby") {
                    break stats;
                }
            }
        }
        assert!(
            Instant::now() < deadline,
            "standby did not take over within one lease period ({lease:?})"
        );
        thread::sleep(Duration::from_millis(20));
    };
    assert_eq!(stat(&stats, "shards"), 3, "{stats:?}");

    // The promoted router routes: adopted members answer (they keep no
    // lease — probe health alone governs them).
    let mut client = RetryingClient::new(router, Duration::from_secs(30), RetryPolicy::default());
    for key in 0..6 {
        let response = client.model(keyed_set(key), None, None).unwrap();
        assert!(is_ok(&response), "after takeover, key {key}: {response:?}");
    }

    join_within(cluster, Duration::from_secs(20));
}

#[test]
fn rolling_rollout_upgrades_fleet_under_load_without_refusals() {
    let dir = std::env::temp_dir().join(format!(
        "nrpm-rollout-load-{}-{:?}",
        std::process::id(),
        thread::current().id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    let opts = ClusterOptions {
        registry_dir: Some(PathBuf::from(&dir)),
        ..replicated_options()
    };
    let cluster = Cluster::launch(test_network(7), opts).unwrap();
    let addr = cluster.router_addr();
    let incumbent = cluster.serving_hash().unwrap();

    let stop = std::sync::Arc::new(std::sync::atomic::AtomicBool::new(false));
    let workers: Vec<_> = (0..2)
        .map(|worker| {
            let stop = std::sync::Arc::clone(&stop);
            thread::spawn(move || {
                let mut client =
                    RetryingClient::new(addr, Duration::from_secs(30), RetryPolicy::default());
                let mut answered = 0usize;
                let mut key = 0usize;
                while !stop.load(std::sync::atomic::Ordering::SeqCst) {
                    let response = client.model(keyed_set(key % 6), None, None).unwrap();
                    assert!(is_ok(&response), "worker {worker} key {key}: {response:?}");
                    answered += 1;
                    key += 1;
                }
                answered
            })
        })
        .collect();

    thread::sleep(Duration::from_millis(100));
    let report = cluster.rollout(test_network(9)).unwrap();
    assert_ne!(report.target, incumbent);
    assert_eq!(report.updated, vec![0, 1, 2]);
    assert!(report.skipped_remote.is_empty());

    stop.store(true, std::sync::atomic::Ordering::SeqCst);
    let mut answered = 0usize;
    for worker in workers {
        answered += worker.join().expect("a burst worker panicked");
    }
    assert!(answered > 0, "the burst never ran");

    // Zero refusals during the walk, and the fleet converged on the
    // target: every shard reports the new hash, no divergence.
    let target_hex = hex16(report.target);
    let stats = wait_for_stats(addr, Duration::from_secs(10), |stats| {
        stats
            .get("per_shard")
            .and_then(Value::as_seq)
            .is_some_and(|shards| {
                shards.iter().all(|shard| {
                    shard.get("checkpoint_hash").and_then(Value::as_str)
                        == Some(target_hex.as_str())
                })
            })
    });
    assert_eq!(stat(&stats, "rejected"), 0, "{stats:?}");
    assert_eq!(stat(&stats, "rollouts"), 1, "{stats:?}");
    assert_eq!(
        stats.get("serving_hash").and_then(Value::as_str),
        Some(target_hex.as_str())
    );
    assert_eq!(
        stats.get("checkpoint_divergence").and_then(Value::as_bool),
        Some(false)
    );

    // New requests answer from the new checkpoint.
    let mut client = retrying(&cluster);
    let response = client.model(keyed_set(0), None, None).unwrap();
    assert_eq!(
        response.get("served_hash").and_then(Value::as_str),
        Some(target_hex.as_str())
    );

    join_within(cluster, Duration::from_secs(20));
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn crashed_rollout_recovers_to_a_single_epoch_fleet_on_relaunch() {
    let dir = std::env::temp_dir().join(format!(
        "nrpm-rollout-crash-{}-{:?}",
        std::process::id(),
        thread::current().id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    let opts = ClusterOptions {
        registry_dir: Some(PathBuf::from(&dir)),
        ..replicated_options()
    };
    let cluster = Cluster::launch(test_network(7), opts.clone()).unwrap();

    // Drive the rollout through the admin command with the crash drill
    // armed: the walk stops after one shard landed, journal left pending.
    let request = serde_json::to_string(&Value::Map(vec![
        ("cmd".into(), Value::Str("cluster_rollout".into())),
        ("network".into(), Value::Str(test_network(9).to_json())),
        ("crash_after".into(), Value::U64(1)),
    ]))
    .unwrap();
    let mut admin = Client::connect(cluster.router_addr(), Duration::from_secs(60)).unwrap();
    let crashed = admin.roundtrip_line(&request).unwrap();
    assert!(!is_ok(&crashed), "{crashed:?}");
    assert!(
        crashed
            .get("message")
            .and_then(Value::as_str)
            .is_some_and(|e| e.contains("crash drill")),
        "{crashed:?}"
    );

    let (journal, _) = RolloutJournal::open(&dir).unwrap();
    let pending = journal
        .pending()
        .expect("crash drill leaves the journal pending");
    let target = pending.target;
    assert_eq!(pending.done.len(), 1, "{pending:?}");
    drop(journal);

    // "Crash" the whole deployment and bring it back up on the same
    // registry: launch recovery finishes the pending rollout, so the new
    // fleet serves the rollout's target — one epoch everywhere.
    join_within(cluster, Duration::from_secs(20));
    let relaunched = Cluster::launch(test_network(7), opts).unwrap();
    assert_eq!(relaunched.serving_hash(), Some(target));
    let target_hex = hex16(target);
    let stats = wait_for_stats(relaunched.router_addr(), Duration::from_secs(10), |stats| {
        stats
            .get("per_shard")
            .and_then(Value::as_seq)
            .is_some_and(|shards| {
                shards.iter().all(|shard| {
                    shard.get("checkpoint_hash").and_then(Value::as_str)
                        == Some(target_hex.as_str())
                })
            })
    });
    assert_eq!(
        stats.get("checkpoint_divergence").and_then(Value::as_bool),
        Some(false),
        "{stats:?}"
    );
    let (journal, _) = RolloutJournal::open(&dir).unwrap();
    assert!(
        journal.pending().is_none(),
        "recovery must settle the journal"
    );

    // Replies carry the recovered target.
    let mut client = retrying(&relaunched);
    let response = client.model(keyed_set(0), None, None).unwrap();
    assert_eq!(
        response.get("served_hash").and_then(Value::as_str),
        Some(target_hex.as_str())
    );
    join_within(relaunched, Duration::from_secs(20));
    let _ = std::fs::remove_dir_all(&dir);
}
