//! Reproduces Fig. 4: the median relative prediction error (percent) of the
//! regression vs. the adaptive modeler for the performance-relevant kernels
//! (> 1 % runtime share) of the three simulated case studies, each graded
//! at its held-out evaluation point.
//!
//! Also reproduces the Sec. VI-B model-accuracy discussion via
//! `--show-models` (prints each kernel's fitted models next to the ground
//! truth).
//!
//! ```text
//! cargo run -p nrpm-bench --release --bin fig4_case_studies -- \
//!     [--seed S] [--show-models] [--no-adaptation] [--paper-net]
//! ```

use nrpm_apps::all_case_studies;
use nrpm_bench::cli::Args;
use nrpm_bench::report::{f2, Table};
use nrpm_core::adaptive::{AdaptiveModeler, AdaptiveOptions};
use nrpm_core::dnn::DnnOptions;
use nrpm_extrap::RegressionModeler;
use nrpm_linalg::stats;

fn main() {
    let args = Args::parse();
    let seed: u64 = args.get("seed", 0xCA5E);
    let show_models = args.has("show-models");

    let mut options = AdaptiveOptions {
        dnn: if args.has("paper-net") {
            DnnOptions::paper_fidelity()
        } else {
            DnnOptions::default()
        },
        use_domain_adaptation: !args.has("no-adaptation"),
        ..Default::default()
    };
    options.dnn.seed = seed;

    println!("pretraining the DNN modeler once (shared across kernels)...");
    let pretrained = AdaptiveModeler::pretrained(options.clone());
    let regression = RegressionModeler::default();

    println!("\n== Fig. 4 — median relative prediction error per case study ==\n");
    let mut table = Table::new(&["study", "kernels", "regression", "adaptive", "reduction"]);

    for study in all_case_studies(seed) {
        let mut reg_errors = Vec::new();
        let mut ada_errors = Vec::new();
        let mut model_lines = Vec::new();

        for kernel in study.relevant_kernels() {
            // Fresh modeler per kernel: the paper retrains per modeling
            // task, so adaptation must not leak across kernels.
            let mut adaptive = pretrained.clone();

            let reg = regression.model(&kernel.set);
            let ada = adaptive.model(&kernel.set);

            if let Ok(r) = &reg {
                let pred = r.model.evaluate(&kernel.eval_point);
                reg_errors.push(100.0 * (pred - kernel.eval_measured).abs() / kernel.eval_measured);
            }
            if let Ok(a) = &ada {
                let pred = a.result.model.evaluate(&kernel.eval_point);
                ada_errors.push(100.0 * (pred - kernel.eval_measured).abs() / kernel.eval_measured);
            }
            if show_models {
                model_lines.push(format!(
                    "  {} / {}\n    truth:      {}\n    regression: {}\n    adaptive:   {} (chose {:?}, noise {:.1}%)",
                    study.name,
                    kernel.name,
                    kernel.truth,
                    reg.map(|r| r.model.to_string()).unwrap_or_else(|e| format!("<{e}>")),
                    ada.as_ref()
                        .map(|a| a.result.model.to_string())
                        .unwrap_or_else(|e| format!("<{e}>")),
                    ada.as_ref().map(|a| a.choice).ok(),
                    ada.as_ref().map(|a| a.noise.mean() * 100.0).unwrap_or(f64::NAN),
                ));
            }
        }

        let reg_med = stats::median(&reg_errors);
        let ada_med = stats::median(&ada_errors);
        table.row(vec![
            study.name.to_string(),
            reg_errors.len().to_string(),
            format!("{}%", f2(reg_med)),
            format!("{}%", f2(ada_med)),
            format!("{:+.2}pp", reg_med - ada_med),
        ]);

        if show_models {
            println!("{}", model_lines.join("\n"));
        }
    }

    println!();
    table.print();
    println!("\npaper: Kripke 22.28% -> 13.45%; FASTEST 69.79% -> 16.23%; RELeARN 7.12% -> 7.12%");
}
