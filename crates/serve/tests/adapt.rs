//! Integration tests of the background adaptation pipeline: cache
//! correctness across hot-swaps, supervised engine respawn under chaos
//! faults (mid-retrain and mid-commit kills), a clean validated swap, and
//! the post-swap watchdog rollback — all under concurrent client load with
//! zero dropped requests.

use nrpm_core::adaptive::AdaptiveOptions;
use nrpm_core::preprocess::NUM_INPUTS;
use nrpm_extrap::{MeasurementSet, NUM_CLASSES};
use nrpm_nn::{Network, NetworkConfig};
use nrpm_registry::{CheckpointRegistry, SwapJournal};
use nrpm_serve::adapt::{AdaptOptions, INGEST_CANDIDATE_REF, SERVING_REF};
use nrpm_serve::client::{is_ok, Client};
use nrpm_serve::server::{ServeOptions, Server};
use nrpm_serve::store::ModelStore;
use serde::Value;
use std::path::PathBuf;
use std::sync::mpsc;
use std::thread;
use std::time::{Duration, Instant};

fn test_network(seed: u64) -> Network {
    Network::new(&NetworkConfig::new(&[NUM_INPUTS, 16, NUM_CLASSES]), seed)
}

/// A store whose retrain knobs are tiny, so an adaptation cycle completes
/// in well under a second.
fn fast_adapt_store(seed: u64) -> ModelStore {
    let mut opts = AdaptiveOptions::default();
    opts.dnn.adaptation_samples_per_class = 8;
    opts.dnn.adaptation_epochs = 2;
    opts.dnn.train_threads = 1;
    ModelStore::from_network(test_network(seed), opts).unwrap()
}

/// Distinct-per-index measurement sets: with caching off every request
/// reaches a worker (producing an adaptation observation), and with
/// caching on every index is its own cache key.
fn linear_set(index: usize) -> MeasurementSet {
    let mut set = MeasurementSet::new(1);
    let slope = 2.0 + index as f64 * 0.001;
    for &x in &[4.0, 8.0, 16.0, 32.0, 64.0] {
        set.add_repetitions(&[x], &[slope * x, slope * x]);
    }
    set
}

fn connect(server: &Server) -> Client {
    Client::connect(server.addr(), Duration::from_secs(30)).expect("connect")
}

fn join_within(server: Server, limit: Duration) {
    let (tx, rx) = mpsc::channel();
    thread::spawn(move || {
        let _ = tx.send(server.join());
    });
    rx.recv_timeout(limit)
        .expect("server failed to drain within the limit")
        .expect("a server thread panicked");
}

fn tmp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("nrpm-serve-adapt-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn get_u64(v: &Value, key: &str) -> u64 {
    v.get(key)
        .and_then(Value::as_u64)
        .unwrap_or_else(|| panic!("missing u64 `{key}` in {v:?}"))
}

fn get_str<'a>(v: &'a Value, key: &str) -> &'a str {
    v.get(key)
        .and_then(Value::as_str)
        .unwrap_or_else(|| panic!("missing str `{key}` in {v:?}"))
}

/// Polls `stats` until `pred` holds, panicking after `limit`.
fn wait_for_stats(client: &mut Client, limit: Duration, pred: impl Fn(&Value) -> bool) -> Value {
    let deadline = Instant::now() + limit;
    loop {
        let stats = client.stats().expect("stats");
        if pred(&stats) {
            return stats;
        }
        assert!(
            Instant::now() < deadline,
            "condition not reached within {limit:?}; last stats: {stats:?}"
        );
        thread::sleep(Duration::from_millis(40));
    }
}

/// Serve options for the adaptation tests: debug hooks on (fault
/// injection), caching off (every request must reach a worker so the
/// engine sees observations), a huge interval (only forced cycles run),
/// and a wide-open shadow gate so a clean retrain always commits.
fn adapt_serve_options(dir: Option<PathBuf>) -> ServeOptions {
    ServeOptions {
        workers: 2,
        debug_hooks: true,
        cache_capacity: 0,
        poll_interval: Duration::from_millis(20),
        adaptation: AdaptOptions {
            enabled: true,
            interval: Duration::from_secs(3600),
            smape_tolerance: 100.0,
            min_observations: 1,
            watch_window: 3,
            watch_tolerance: 0.5,
            dir,
            train_threads: 1,
            ..Default::default()
        },
        ..Default::default()
    }
}

/// Sends `count` tagged model requests and asserts every one is answered
/// ok — the "zero dropped requests" check used across the chaos tests.
fn pump_requests(client: &mut Client, base: usize, count: usize) {
    for i in 0..count {
        let response = client
            .model_as(
                linear_set(base + i),
                Some(vec![128.0]),
                Some(30_000),
                Some("tenant-a".into()),
            )
            .expect("model request failed at the transport level");
        assert!(
            is_ok(&response),
            "request {} dropped: {response:?}",
            base + i
        );
    }
}

/// Forces adaptation cycles (optionally with a queued fault each try)
/// until `done` observes the target state. Retrains are statistical — a
/// candidate can legitimately fail its own validation gate — so the tests
/// force again with fresh observations rather than flaking.
fn force_until(client: &mut Client, fault: Option<&str>, done: impl Fn(&Value) -> bool) -> Value {
    for attempt in 0..10 {
        pump_requests(client, 100 * (attempt + 1), 4);
        if let Some(kind) = fault {
            let queued = client
                .roundtrip_line(&format!("{{\"cmd\":\"adapt_fault\",\"kind\":\"{kind}\"}}"))
                .unwrap();
            assert!(is_ok(&queued), "{queued:?}");
        }
        // `adapt_cycles` ticks at cycle *start*; swap/reject/restart are the
        // terminal outcomes, so waiting on them (not on the cycle counter)
        // avoids forcing a second cycle while the first retrain is running.
        let outcomes = |s: &Value| {
            get_u64(s, "adapt_swaps") + get_u64(s, "adapt_rejected") + get_u64(s, "adapt_restarts")
        };
        let outcomes_before = outcomes(&client.stats().unwrap());
        let forced = client.roundtrip_line("{\"cmd\":\"force_adapt\"}").unwrap();
        assert!(is_ok(&forced), "{forced:?}");
        let stats = wait_for_stats(client, Duration::from_secs(30), |s| {
            done(s) || outcomes(s) > outcomes_before
        });
        if done(&stats) {
            return stats;
        }
    }
    panic!("target adaptation state not reached in 10 forced cycles");
}

/// A result-cache entry keyed to the old checkpoint is never served after
/// a hot-swap: the same request models again on the new weights, and the
/// served checkpoint hash changes.
#[test]
fn cache_entries_of_the_old_checkpoint_die_with_the_swap() {
    let store = ModelStore::from_network(test_network(7), AdaptiveOptions::default()).unwrap();
    let handle = store.clone();
    let server = Server::start(
        "127.0.0.1:0",
        store,
        ServeOptions {
            workers: 2,
            cache_capacity: 64,
            ..Default::default()
        },
    )
    .unwrap();
    let mut client = connect(&server);

    let first = client.model(linear_set(0), None, None).unwrap();
    assert!(is_ok(&first), "{first:?}");
    let again = client.model(linear_set(0), None, None).unwrap();
    assert!(is_ok(&again), "{again:?}");
    let stats = client.stats().unwrap();
    assert_eq!(get_u64(&stats, "kernels_modeled"), 1, "{stats:?}");
    assert_eq!(get_u64(&stats, "cache_hits"), 1, "{stats:?}");
    let old_hash = get_str(&stats, "checkpoint_hash").to_string();

    // Hot-swap through the shared store handle, as the adaptation engine
    // would.
    handle.swap(test_network(99)).unwrap();

    let after = client.model(linear_set(0), None, None).unwrap();
    assert!(is_ok(&after), "{after:?}");
    let stats = client.stats().unwrap();
    assert_eq!(
        get_u64(&stats, "kernels_modeled"),
        2,
        "the old cache entry must not answer for the new checkpoint: {stats:?}"
    );
    assert_eq!(get_u64(&stats, "cache_hits"), 1, "{stats:?}");
    assert_ne!(get_str(&stats, "checkpoint_hash"), old_hash, "{stats:?}");
    assert_eq!(get_u64(&stats, "epoch"), 1, "{stats:?}");

    // And the new checkpoint builds its own cache generation.
    let warm = client.model(linear_set(0), None, None).unwrap();
    assert!(is_ok(&warm), "{warm:?}");
    assert_eq!(get_u64(&client.stats().unwrap(), "cache_hits"), 2);

    client.shutdown().unwrap();
    join_within(server, Duration::from_secs(60));
}

/// Killing the engine mid-retrain loses nothing: the supervisor respawns
/// it, no request is dropped, and the serving checkpoint stays put.
#[test]
fn engine_killed_mid_retrain_respawns_without_dropping_requests() {
    let dir = tmp_dir("kill-retrain");
    let server = Server::start(
        "127.0.0.1:0",
        fast_adapt_store(7),
        adapt_serve_options(Some(dir.clone())),
    )
    .unwrap();
    let mut client = connect(&server);

    let hash_before = get_str(&client.stats().unwrap(), "checkpoint_hash").to_string();
    pump_requests(&mut client, 0, 6);
    let queued = client
        .roundtrip_line("{\"cmd\":\"adapt_fault\",\"kind\":\"kill_retrain\"}")
        .unwrap();
    assert!(is_ok(&queued), "{queued:?}");
    let forced = client.roundtrip_line("{\"cmd\":\"force_adapt\"}").unwrap();
    assert!(is_ok(&forced), "{forced:?}");

    // Load spans the kill and the respawn; every request must be answered.
    pump_requests(&mut client, 10, 20);
    let stats = wait_for_stats(&mut client, Duration::from_secs(30), |s| {
        get_u64(s, "adapt_restarts") >= 1
    });
    assert_eq!(
        get_str(&stats, "checkpoint_hash"),
        hash_before,
        "a killed retrain must not change the serving checkpoint: {stats:?}"
    );
    assert_eq!(get_u64(&stats, "adapt_swaps"), 0, "{stats:?}");
    pump_requests(&mut client, 40, 10);

    client.shutdown().unwrap();
    join_within(server, Duration::from_secs(60));
    let _ = std::fs::remove_dir_all(&dir);
}

/// Killing the engine between shadow validation and the journal commit
/// resolves to "the swap never happened": recovery aborts the pending
/// journal entry, the incumbent keeps serving, and no request is dropped.
#[test]
fn engine_killed_mid_commit_recovers_to_the_incumbent() {
    let dir = tmp_dir("kill-commit");
    let server = Server::start(
        "127.0.0.1:0",
        fast_adapt_store(7),
        adapt_serve_options(Some(dir.clone())),
    )
    .unwrap();
    let mut client = connect(&server);
    let hash_before = get_str(&client.stats().unwrap(), "checkpoint_hash").to_string();

    // `regress_swap` bypasses the statistical shadow gate so the cycle
    // deterministically reaches the commit point, where `kill_commit`
    // panics the engine.
    for attempt in 0..10 {
        pump_requests(&mut client, 100 * (attempt + 1), 4);
        for kind in ["regress_swap", "kill_commit"] {
            let queued = client
                .roundtrip_line(&format!("{{\"cmd\":\"adapt_fault\",\"kind\":\"{kind}\"}}"))
                .unwrap();
            assert!(is_ok(&queued), "{queued:?}");
        }
        let rejected_before = get_u64(&client.stats().unwrap(), "adapt_rejected");
        let forced = client.roundtrip_line("{\"cmd\":\"force_adapt\"}").unwrap();
        assert!(is_ok(&forced), "{forced:?}");
        pump_requests(&mut client, 100 * (attempt + 1) + 10, 10);
        let stats = wait_for_stats(&mut client, Duration::from_secs(30), |s| {
            get_u64(s, "adapt_restarts") >= 1 || get_u64(s, "adapt_rejected") > rejected_before
        });
        if get_u64(&stats, "adapt_restarts") >= 1 {
            break;
        }
        assert!(attempt < 9, "retrain never reached the commit point");
    }

    let stats = client.stats().unwrap();
    assert_eq!(get_u64(&stats, "adapt_swaps"), 0, "{stats:?}");
    assert_eq!(
        get_str(&stats, "checkpoint_hash"),
        hash_before,
        "a swap killed mid-commit must resolve to the incumbent: {stats:?}"
    );
    pump_requests(&mut client, 500, 10);

    client.shutdown().unwrap();
    join_within(server, Duration::from_secs(60));

    // The journal on disk agrees: the pending swap was aborted by
    // recovery, and nothing was ever committed.
    let (journal, _) = SwapJournal::open(&dir).unwrap();
    assert!(
        journal.pending().is_empty(),
        "recovery must resolve pending swaps: {:?}",
        journal.records()
    );
    assert_eq!(
        journal.committed_hash(),
        None,
        "nothing was committed: {:?}",
        journal.records()
    );
    let _ = std::fs::remove_dir_all(&dir);
}

/// The happy path end to end: accumulate → retrain → shadow-validate →
/// two-phase commit → hot-swap, with the journal recording the committed
/// candidate.
#[test]
fn a_forced_cycle_commits_a_validated_swap() {
    let dir = tmp_dir("clean-swap");
    let server = Server::start(
        "127.0.0.1:0",
        fast_adapt_store(7),
        adapt_serve_options(Some(dir.clone())),
    )
    .unwrap();
    let mut client = connect(&server);
    let hash_before = get_str(&client.stats().unwrap(), "checkpoint_hash").to_string();

    let stats = force_until(&mut client, None, |s| get_u64(s, "adapt_swaps") >= 1);
    let hash_after = get_str(&stats, "checkpoint_hash").to_string();
    assert_ne!(hash_after, hash_before, "{stats:?}");
    assert!(get_u64(&stats, "epoch") >= 1, "{stats:?}");
    assert!(get_u64(&stats, "adapt_observations") >= 1, "{stats:?}");
    // The swapped-in checkpoint serves requests.
    pump_requests(&mut client, 600, 5);

    client.shutdown().unwrap();
    join_within(server, Duration::from_secs(60));

    let (journal, _) = SwapJournal::open(&dir).unwrap();
    assert!(journal.pending().is_empty(), "{:?}", journal.records());
    let committed = journal.committed_hash().expect("a swap was committed");
    assert_eq!(
        format!("{committed:016x}"),
        hash_after,
        "journal and serving hash must agree: {:?}",
        journal.records()
    );
    let _ = std::fs::remove_dir_all(&dir);
}

/// A swap that regresses live quality is rolled back automatically: the
/// `regress_swap` fault bypasses the shadow gate and inflates the live
/// SMAPE samples, so the watch window trips and restores the previous
/// checkpoint — journaled as a rollback.
#[test]
fn watchdog_rolls_back_a_regressing_swap() {
    let dir = tmp_dir("rollback");
    let server = Server::start(
        "127.0.0.1:0",
        fast_adapt_store(7),
        adapt_serve_options(Some(dir.clone())),
    )
    .unwrap();
    let mut client = connect(&server);
    let hash_before = get_str(&client.stats().unwrap(), "checkpoint_hash").to_string();

    let stats = force_until(&mut client, Some("regress_swap"), |s| {
        get_u64(s, "adapt_swaps") >= 1
    });
    assert_ne!(get_str(&stats, "checkpoint_hash"), hash_before, "{stats:?}");

    // Live traffic on the regressed checkpoint fills the watch window;
    // the watchdog must roll back to the incumbent.
    let deadline = Instant::now() + Duration::from_secs(30);
    let mut base = 700;
    let stats = loop {
        pump_requests(&mut client, base, 3);
        base += 3;
        let stats = client.stats().unwrap();
        if get_u64(&stats, "adapt_rollbacks") >= 1 {
            break stats;
        }
        assert!(
            Instant::now() < deadline,
            "watchdog never rolled back: {stats:?}"
        );
        thread::sleep(Duration::from_millis(40));
    };
    assert_eq!(
        get_str(&stats, "checkpoint_hash"),
        hash_before,
        "rollback must restore the previous checkpoint: {stats:?}"
    );
    pump_requests(&mut client, 900, 5);

    client.shutdown().unwrap();
    join_within(server, Duration::from_secs(60));

    // The journal's last terminal record is the rollback, restoring the
    // original hash.
    let (journal, _) = SwapJournal::open(&dir).unwrap();
    assert!(journal.pending().is_empty(), "{:?}", journal.records());
    let committed = journal.committed_hash().expect("rollback recorded");
    assert_eq!(format!("{committed:016x}"), hash_before);
    let _ = std::fs::remove_dir_all(&dir);
}

/// Feed mode: a candidate published into the registry by an external
/// ingester (the way `nrpm ingest` does) is hot-swapped in through the
/// two-phase journal — epoch bumps, the serving ref moves, requests keep
/// being answered, and the journal's last terminal record is the commit.
#[test]
fn a_fed_candidate_hot_swaps_through_the_journal() {
    let dir = tmp_dir("feed");
    let mut opts = adapt_serve_options(Some(dir.clone()));
    opts.adaptation.feed = true;
    let server = Server::start("127.0.0.1:0", fast_adapt_store(7), opts).unwrap();
    let mut client = connect(&server);
    let hash_before = get_str(&client.stats().unwrap(), "checkpoint_hash").to_string();

    // Publish a candidate under the ingest-candidate ref, exactly as the
    // ingester's re-modeling path does.
    let registry = CheckpointRegistry::open(&dir).unwrap();
    let fed_hash = registry.put(&test_network(99)).unwrap();
    registry.set_ref(INGEST_CANDIDATE_REF, fed_hash).unwrap();

    let stats = wait_for_stats(&mut client, Duration::from_secs(30), |s| {
        get_u64(s, "adapt_feed_swaps") >= 1
    });
    assert!(get_u64(&stats, "epoch") >= 1, "{stats:?}");
    assert_ne!(get_str(&stats, "checkpoint_hash"), hash_before, "{stats:?}");
    assert_eq!(
        get_str(&stats, "checkpoint_hash"),
        format!("{fed_hash:016x}"),
        "{stats:?}"
    );
    // The swapped-in candidate answers requests — zero drops.
    pump_requests(&mut client, 1100, 5);
    assert_eq!(registry.ref_hash(SERVING_REF).unwrap(), Some(fed_hash));

    client.shutdown().unwrap();
    join_within(server, Duration::from_secs(60));

    let (journal, _) = SwapJournal::open(&dir).unwrap();
    assert!(journal.pending().is_empty(), "{:?}", journal.records());
    assert_eq!(journal.committed_hash(), Some(fed_hash));
    let _ = std::fs::remove_dir_all(&dir);
}
