//! The router front-end: speaks the same newline-JSON protocol as
//! `nrpm-serve`, answers `health`/`stats`/`shutdown` and the `cluster_*`
//! admin commands itself, and relays `model`/`batch` requests to the
//! replica set that owns the request's measurement-set fingerprint on the
//! ring (see [`crate::replicate`] for the relay, failover, and quorum
//! machinery).
//!
//! Admin vocabulary beyond the shard protocol:
//!
//! | command             | effect                                          |
//! |---------------------|-------------------------------------------------|
//! | `cluster_drain`     | gracefully remove one local shard               |
//! | `cluster_kill`      | abruptly remove one local shard (test hook)     |
//! | `cluster_revive`    | restart a removed local shard under probation   |
//! | `cluster_join`      | admit a network shard (token + hash handshake)  |
//! | `cluster_heartbeat` | renew a network member's lease                  |
//! | `cluster_sync`      | full membership view (standby state sync)       |
//! | `cluster_rollout`   | rolling checkpoint rollout across the fleet     |
//! | `router_kill`       | kill the router, not the shards (test hook)     |
//!
//! The relayed reply gains a `"shard"` field naming the backend that
//! answered — plus `"replicas"`/`"quorum"`/`"divergent"` under
//! replication — which is what the affinity and divergence measurements
//! in `cluster_bench` key on.

use std::io::{Read, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::{self, JoinHandle};
use std::time::Instant;

use nrpm_core::fingerprint::{mix64, set_fingerprint};
use nrpm_registry::hex16;
use nrpm_serve::protocol::{
    error_line, nesting_exceeds, ok_line, ErrorKind, Request, MAX_JSON_DEPTH, MAX_LINE_BYTES,
};
use serde::Value;
use serde_json;

use crate::cluster::ClusterState;
use crate::replicate::{forward, RouteScratch, ShardConns};

/// Distinguishes router connections in the per-shard retry jitter seeds.
static CONN_COUNTER: AtomicU64 = AtomicU64::new(0);

/// The next router-connection id (jitter-seed material).
pub(crate) fn next_conn_id() -> u64 {
    CONN_COUNTER.fetch_add(1, Ordering::Relaxed)
}

/// Accept loop: one reader thread per connection, reaped every poll tick,
/// all joined when the drain flag flips (or the `router_kill` hook fires —
/// which stops the router *without* draining the shards, the takeover
/// drill's stand-in for a router-host crash).
pub(crate) fn run_router(listener: TcpListener, state: &Arc<ClusterState>) {
    let nonblocking = listener.set_nonblocking(true).is_ok();
    let poll = state.opts.shard_opts.poll_interval;
    let mut connections: Vec<JoinHandle<()>> = Vec::new();
    while !state.draining() && !state.router_dead() {
        match listener.accept() {
            Ok((stream, _)) => {
                connections.retain(|h| !h.is_finished());
                let conn_state = Arc::clone(state);
                let handle = thread::Builder::new()
                    .name("nrpm-cluster-conn".into())
                    .spawn(move || {
                        let _ = serve_router_connection(stream, &conn_state);
                    })
                    .expect("spawn router connection thread");
                connections.push(handle);
            }
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                connections.retain(|h| !h.is_finished());
                thread::sleep(poll);
            }
            Err(_) => {
                if !nonblocking {
                    continue;
                }
                thread::sleep(poll);
            }
        }
    }
    for handle in connections {
        let _ = handle.join();
    }
}

enum Disposition {
    Respond(String),
    RespondAndClose(String),
}

/// Reads newline-delimited requests off one client connection until EOF,
/// error, stall, or drain — the same framing rules (`MAX_LINE_BYTES`,
/// slowloris guard) as a shard connection, so the router is never the
/// weaker link.
fn serve_router_connection(
    mut stream: TcpStream,
    state: &Arc<ClusterState>,
) -> std::io::Result<()> {
    stream.set_nonblocking(false)?;
    stream.set_nodelay(true).ok();
    stream.set_read_timeout(Some(state.opts.shard_opts.poll_interval))?;
    stream.set_write_timeout(Some(state.opts.shard_opts.io_timeout))?;
    let mut conns = ShardConns::new();
    let mut scratch = RouteScratch::new();
    let mut buf: Vec<u8> = Vec::new();
    let mut chunk = [0u8; 16 * 1024];
    let mut partial_since: Option<Instant> = None;
    let mut scanned = 0usize;
    loop {
        while let Some(rel) = buf[scanned..].iter().position(|&b| b == b'\n') {
            let pos = scanned + rel;
            if pos > MAX_LINE_BYTES {
                let response = error_line(
                    None,
                    ErrorKind::Usage,
                    &format!("request exceeds {MAX_LINE_BYTES} bytes"),
                );
                stream.write_all(response.as_bytes())?;
                stream.write_all(b"\n")?;
                return Ok(());
            }
            let line_bytes: Vec<u8> = buf.drain(..=pos).collect();
            scanned = 0;
            partial_since = None;
            let line = String::from_utf8_lossy(&line_bytes);
            let line = line.trim();
            if line.is_empty() {
                continue;
            }
            match handle_router_line(line, state, &mut conns, &mut scratch) {
                Disposition::Respond(response) => {
                    stream.write_all(response.as_bytes())?;
                    stream.write_all(b"\n")?;
                    stream.flush()?;
                }
                Disposition::RespondAndClose(response) => {
                    stream.write_all(response.as_bytes())?;
                    stream.write_all(b"\n")?;
                    stream.flush()?;
                    return Ok(());
                }
            }
        }
        scanned = buf.len();
        if buf.len() > MAX_LINE_BYTES {
            let response = error_line(
                None,
                ErrorKind::Usage,
                &format!("request exceeds {MAX_LINE_BYTES} bytes"),
            );
            stream.write_all(response.as_bytes())?;
            stream.write_all(b"\n")?;
            return Ok(());
        }
        if buf.is_empty() {
            partial_since = None;
        } else if let Some(since) = partial_since {
            if since.elapsed() >= state.opts.shard_opts.io_timeout {
                let response = error_line(
                    None,
                    ErrorKind::Timeout,
                    &format!(
                        "request incomplete after {:?}; closing stalled connection",
                        state.opts.shard_opts.io_timeout
                    ),
                );
                let _ = stream.write_all(response.as_bytes());
                let _ = stream.write_all(b"\n");
                return Ok(());
            }
        } else {
            partial_since = Some(Instant::now());
        }
        match stream.read(&mut chunk) {
            Ok(0) => return Ok(()),
            Ok(n) => buf.extend_from_slice(&chunk[..n]),
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                if state.draining() || state.router_dead() {
                    return Ok(());
                }
            }
            Err(e) => return Err(e),
        }
    }
}

fn handle_router_line(
    line: &str,
    state: &Arc<ClusterState>,
    conns: &mut ShardConns,
    scratch: &mut RouteScratch,
) -> Disposition {
    // Admin commands are router-only vocabulary, handled before the shard
    // protocol's parser (which would reject them as unknown commands).
    if nesting_exceeds(line, MAX_JSON_DEPTH) {
        return Disposition::Respond(error_line(
            None,
            ErrorKind::Parse,
            &format!("JSON nesting exceeds {MAX_JSON_DEPTH} levels"),
        ));
    }
    if let Ok(value) = serde_json::from_str::<Value>(line) {
        if let Some(cmd) = value.get("cmd").and_then(Value::as_str) {
            if let Some(disposition) = handle_admin(cmd, &value, state) {
                return disposition;
            }
        }
    }
    let request = match Request::parse(line) {
        Ok(request) => request,
        Err((kind, message)) => return Disposition::Respond(error_line(None, kind, &message)),
    };
    match request {
        Request::Health => Disposition::Respond(ok_line(
            None,
            vec![
                ("service".into(), Value::Str("nrpm-cluster-router".into())),
                ("role".into(), Value::Str(state.role.into())),
                ("shards".into(), Value::U64(state.member_count() as u64)),
                ("routable".into(), Value::U64(state.routable_count() as u64)),
                ("draining".into(), Value::Bool(state.draining())),
            ],
        )),
        Request::Stats => Disposition::Respond(ok_line(
            None,
            vec![("stats".into(), router_stats_value(state))],
        )),
        Request::Shutdown => {
            state.begin_shutdown();
            Disposition::RespondAndClose(ok_line(
                None,
                vec![("draining".into(), Value::Bool(true))],
            ))
        }
        Request::Model {
            ref set, ref id, ..
        } => {
            let key = set_fingerprint(set);
            let id = id.clone();
            Disposition::Respond(forward(state, conns, scratch, key, line, id.as_deref()))
        }
        Request::Batch {
            ref sets, ref id, ..
        } => {
            // One batch stays whole: it routes by the combined fingerprint
            // of its sets, so the shard-side batched forward pass is
            // preserved at the cost of cross-set affinity.
            let key = sets
                .iter()
                .fold(0u64, |acc, set| mix64(acc ^ set_fingerprint(set)));
            let id = id.clone();
            Disposition::Respond(forward(state, conns, scratch, key, line, id.as_deref()))
        }
        Request::CrashWorker | Request::ForceAdapt | Request::AdaptFault { .. } => {
            Disposition::Respond(error_line(
                None,
                ErrorKind::Usage,
                "this command is shard-local; the cluster router does not relay it",
            ))
        }
    }
}

/// Dispatches the `cluster_*` / `router_kill` admin vocabulary; `None`
/// when `cmd` belongs to the ordinary shard protocol.
fn handle_admin(cmd: &str, value: &Value, state: &Arc<ClusterState>) -> Option<Disposition> {
    match cmd {
        "cluster_join" => Some(Disposition::Respond(crate::join::handle_join(value, state))),
        "cluster_heartbeat" => Some(Disposition::Respond(crate::join::handle_heartbeat(
            value, state,
        ))),
        "cluster_sync" => Some(Disposition::Respond(crate::join::handle_sync(value, state))),
        "cluster_rollout" => Some(Disposition::Respond(handle_rollout(value, state))),
        "router_kill" => {
            if !state.opts.debug_hooks {
                return Some(Disposition::Respond(error_line(
                    None,
                    ErrorKind::Usage,
                    "router_kill is a test hook; launch the cluster with debug hooks to use it",
                )));
            }
            state.kill_router();
            Some(Disposition::RespondAndClose(ok_line(
                None,
                vec![("router_killed".into(), Value::Bool(true))],
            )))
        }
        "cluster_drain" | "cluster_kill" | "cluster_revive" => {
            Some(Disposition::Respond(handle_membership(cmd, value, state)))
        }
        _ => None,
    }
}

/// Handles `cluster_drain` / `cluster_kill` / `cluster_revive`.
fn handle_membership(verb: &str, value: &Value, state: &Arc<ClusterState>) -> String {
    let Some(shard) = value.get("shard").and_then(Value::as_u64) else {
        return error_line(
            None,
            ErrorKind::Usage,
            &format!("`{verb}` requires a numeric `shard` field"),
        );
    };
    let Ok(shard) = u32::try_from(shard) else {
        return error_line(None, ErrorKind::Usage, "`shard` is out of range");
    };
    let outcome = match verb {
        "cluster_drain" => state.remove_shard(shard, false).map(|()| "draining"),
        "cluster_kill" => {
            if !state.opts.debug_hooks {
                return error_line(
                    None,
                    ErrorKind::Usage,
                    "cluster_kill is a test hook; launch the cluster with debug hooks to use it",
                );
            }
            state.remove_shard(shard, true).map(|()| "killed")
        }
        "cluster_revive" => state.revive_shard(shard).map(|_| "revived"),
        _ => unreachable!("verb matched by the dispatcher"),
    };
    match outcome {
        Ok(did) => ok_line(
            None,
            vec![
                ("shard".into(), Value::U64(u64::from(shard))),
                (did.into(), Value::Bool(true)),
            ],
        ),
        Err(message) => error_line(None, ErrorKind::Usage, &message),
    }
}

/// Handles `cluster_rollout`: parses the target network off the request
/// and drives the rolling walk synchronously, answering when the fleet is
/// fully on the target (or the walk failed with the journal pending).
fn handle_rollout(value: &Value, state: &Arc<ClusterState>) -> String {
    let Some(text) = value.get("network").and_then(Value::as_str) else {
        return error_line(
            None,
            ErrorKind::Usage,
            "cluster_rollout requires a `network` field (the serialized target network)",
        );
    };
    let network = match nrpm_nn::Network::from_json(text) {
        Ok(network) => network,
        Err(e) => {
            return error_line(
                None,
                ErrorKind::Usage,
                &format!("cluster_rollout: invalid network: {e}"),
            );
        }
    };
    let crash_after = value.get("crash_after").and_then(Value::as_u64);
    if crash_after.is_some() && !state.opts.debug_hooks {
        return error_line(
            None,
            ErrorKind::Usage,
            "crash_after is a test hook; launch the cluster with debug hooks to use it",
        );
    }
    match crate::rollout::run_rollout(state, network, crash_after.map(|n| n as usize)) {
        Ok(report) => ok_line(
            None,
            vec![
                ("target".into(), Value::Str(hex16(report.target))),
                (
                    "updated".into(),
                    Value::Seq(
                        report
                            .updated
                            .iter()
                            .map(|&id| Value::U64(u64::from(id)))
                            .collect(),
                    ),
                ),
                (
                    "skipped_remote".into(),
                    Value::Seq(
                        report
                            .skipped_remote
                            .iter()
                            .map(|&id| Value::U64(u64::from(id)))
                            .collect(),
                    ),
                ),
            ],
        ),
        Err(message) => error_line(None, ErrorKind::Usage, &message),
    }
}

/// The router's `stats` body: aggregate counters, per-member state, and
/// the checkpoint-divergence view operators watch during rolling swaps.
fn router_stats_value(state: &Arc<ClusterState>) -> Value {
    let members = state.members_snapshot();
    let now = Instant::now();
    let mut per_shard = Vec::with_capacity(members.len());
    let mut hashes: Vec<String> = Vec::new();
    let mut epochs: Vec<u64> = Vec::new();
    for shard in &members {
        let polled = shard
            .polled
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
            .clone();
        if shard.is_probed() {
            if let Some(hash) = &polled.checkpoint_hash {
                if !hashes.contains(hash) {
                    hashes.push(hash.clone());
                }
                if !epochs.contains(&polled.epoch) {
                    epochs.push(polled.epoch);
                }
            }
        }
        per_shard.push(Value::Map(vec![
            ("shard".into(), Value::U64(u64::from(shard.id))),
            ("addr".into(), Value::Str(shard.addr().to_string())),
            (
                "state".into(),
                Value::Str(shard.availability().name().into()),
            ),
            ("remote".into(), Value::Bool(shard.is_remote())),
            (
                "lease_ms".into(),
                match shard.lease_remaining_ms(now) {
                    Some(ms) => Value::U64(ms),
                    None => Value::Null,
                },
            ),
            ("incarnation".into(), Value::U64(shard.incarnation())),
            (
                "routed".into(),
                Value::U64(shard.routed.load(Ordering::Relaxed)),
            ),
            (
                "failed".into(),
                Value::U64(shard.failed.load(Ordering::Relaxed)),
            ),
            (
                "checkpoint_hash".into(),
                match &polled.checkpoint_hash {
                    Some(hash) => Value::Str(hash.clone()),
                    None => Value::Null,
                },
            ),
            ("epoch".into(), Value::U64(polled.epoch)),
        ]));
    }
    let routable = members.iter().filter(|s| s.is_routable()).count();
    Value::Map(vec![
        ("service".into(), Value::Str("nrpm-cluster-router".into())),
        (
            "server_version".into(),
            Value::Str(env!("CARGO_PKG_VERSION").into()),
        ),
        ("role".into(), Value::Str(state.role.into())),
        (
            "generation".into(),
            Value::U64(state.generation.load(Ordering::SeqCst)),
        ),
        ("shards".into(), Value::U64(members.len() as u64)),
        ("routable".into(), Value::U64(routable as u64)),
        ("draining".into(), Value::Bool(state.draining())),
        (
            "replication".into(),
            Value::U64(state.opts.replication.max(1) as u64),
        ),
        (
            "requests_routed".into(),
            Value::U64(state.routed.load(Ordering::Relaxed)),
        ),
        (
            "failovers".into(),
            Value::U64(state.failovers.load(Ordering::Relaxed)),
        ),
        (
            "rejected".into(),
            Value::U64(state.rejected.load(Ordering::Relaxed)),
        ),
        (
            "replica_fanouts".into(),
            Value::U64(state.replica_fanouts.load(Ordering::Relaxed)),
        ),
        (
            "replica_divergences".into(),
            Value::U64(state.replica_divergences.load(Ordering::Relaxed)),
        ),
        (
            "joins".into(),
            Value::U64(state.joins.load(Ordering::Relaxed)),
        ),
        (
            "lease_expiries".into(),
            Value::U64(state.lease_expiries.load(Ordering::Relaxed)),
        ),
        (
            "rollouts".into(),
            Value::U64(state.rollouts.load(Ordering::SeqCst)),
        ),
        (
            "serving_hash".into(),
            match state.serving_hash() {
                Some(hash) => Value::Str(hex16(hash)),
                None => Value::Null,
            },
        ),
        (
            "checkpoint_divergence".into(),
            Value::Bool(hashes.len() > 1),
        ),
        ("epoch_divergence".into(), Value::Bool(epochs.len() > 1)),
        ("per_shard".into(), Value::Seq(per_shard)),
    ])
}
