//! A sharded, thread-safe LRU cache over `u64` fingerprints.
//!
//! The cache front-ends the persistent journal on the serving hot path, so
//! the design goals are (in order): no contention collapse under many
//! concurrent readers, strict capacity bounds, and cheap observability.
//! Keys are hashed fingerprints ([`nrpm_core::fingerprint`]), already
//! uniformly distributed, so the shard index is just the key's low bits.
//!
//! Recency is tracked with a per-shard logical clock: every hit stamps the
//! entry with the shard's next tick, and eviction removes the entry with
//! the smallest stamp. Eviction scans its shard — `O(capacity/shards)` —
//! which for serving-sized caches (thousands of entries, 8+ shards) is a
//! few hundred comparisons on the *miss* path only; the hit path stays a
//! single `HashMap` probe under a per-shard lock.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// Live counters of one [`ShardedLru`], shared across shards.
#[derive(Debug, Default)]
struct Counters {
    hits: AtomicU64,
    misses: AtomicU64,
    insertions: AtomicU64,
    evictions: AtomicU64,
}

/// A point-in-time view of a cache's counters and occupancy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LruStats {
    /// Lookups that found their key.
    pub hits: u64,
    /// Lookups that missed.
    pub misses: u64,
    /// Entries inserted (overwrites of an existing key count too).
    pub insertions: u64,
    /// Entries evicted to make room.
    pub evictions: u64,
    /// Entries currently resident.
    pub entries: usize,
    /// Maximum resident entries.
    pub capacity: usize,
}

#[derive(Debug)]
struct Shard<V> {
    map: HashMap<u64, (V, u64)>,
    tick: u64,
}

/// A sharded LRU map from `u64` keys to cloneable values. See the
/// [module docs](self) for the locking and eviction model.
#[derive(Debug)]
pub struct ShardedLru<V> {
    shards: Vec<Mutex<Shard<V>>>,
    per_shard_capacity: usize,
    counters: Counters,
}

impl<V: Clone> ShardedLru<V> {
    /// A cache holding at most `capacity` entries across `shards` shards.
    /// Both are clamped to at least 1; capacity is rounded up to a multiple
    /// of the shard count so every shard gets an equal share.
    pub fn new(capacity: usize, shards: usize) -> Self {
        let shards = shards.max(1);
        let per_shard_capacity = capacity.max(1).div_ceil(shards);
        ShardedLru {
            shards: (0..shards)
                .map(|_| {
                    Mutex::new(Shard {
                        map: HashMap::new(),
                        tick: 0,
                    })
                })
                .collect(),
            per_shard_capacity,
            counters: Counters::default(),
        }
    }

    fn shard(&self, key: u64) -> &Mutex<Shard<V>> {
        &self.shards[(key as usize) % self.shards.len()]
    }

    fn lock(&self, key: u64) -> std::sync::MutexGuard<'_, Shard<V>> {
        // The critical sections only mutate the map and the tick; a panic
        // cannot leave them inconsistent, so recover from poisoning rather
        // than cascading one crashed thread into a dead cache.
        self.shard(key)
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
    }

    /// Looks `key` up, refreshing its recency on a hit.
    pub fn get(&self, key: u64) -> Option<V> {
        let mut shard = self.lock(key);
        shard.tick += 1;
        let tick = shard.tick;
        match shard.map.get_mut(&key) {
            Some((value, last_used)) => {
                *last_used = tick;
                let value = value.clone();
                drop(shard);
                self.counters.hits.fetch_add(1, Ordering::Relaxed);
                Some(value)
            }
            None => {
                drop(shard);
                self.counters.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Inserts (or overwrites) `key`, evicting the shard's least recently
    /// used entry if the shard is at capacity.
    pub fn insert(&self, key: u64, value: V) {
        let mut evicted = false;
        {
            let mut shard = self.lock(key);
            shard.tick += 1;
            let tick = shard.tick;
            if !shard.map.contains_key(&key) && shard.map.len() >= self.per_shard_capacity {
                if let Some(&victim) = shard
                    .map
                    .iter()
                    .min_by_key(|(_, (_, last_used))| *last_used)
                    .map(|(k, _)| k)
                {
                    shard.map.remove(&victim);
                    evicted = true;
                }
            }
            shard.map.insert(key, (value, tick));
        }
        self.counters.insertions.fetch_add(1, Ordering::Relaxed);
        if evicted {
            self.counters.evictions.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Entries currently resident across all shards.
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| {
                s.lock()
                    .unwrap_or_else(|poisoned| poisoned.into_inner())
                    .map
                    .len()
            })
            .sum()
    }

    /// `true` when no entry is resident.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Maximum resident entries (shard count × per-shard share).
    pub fn capacity(&self) -> usize {
        self.per_shard_capacity * self.shards.len()
    }

    /// Snapshot of the counters and occupancy.
    pub fn stats(&self) -> LruStats {
        LruStats {
            hits: self.counters.hits.load(Ordering::Relaxed),
            misses: self.counters.misses.load(Ordering::Relaxed),
            insertions: self.counters.insertions.load(Ordering::Relaxed),
            evictions: self.counters.evictions.load(Ordering::Relaxed),
            entries: self.len(),
            capacity: self.capacity(),
        }
    }

    /// Every resident `(key, value)`, in unspecified order (journal
    /// compaction and tests).
    pub fn entries(&self) -> Vec<(u64, V)> {
        self.shards
            .iter()
            .flat_map(|s| {
                s.lock()
                    .unwrap_or_else(|poisoned| poisoned.into_inner())
                    .map
                    .iter()
                    .map(|(&k, (v, _))| (k, v.clone()))
                    .collect::<Vec<_>>()
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn hit_miss_and_counters() {
        let cache = ShardedLru::new(8, 2);
        assert_eq!(cache.get(1), None);
        cache.insert(1, "a");
        assert_eq!(cache.get(1), Some("a"));
        cache.insert(1, "b"); // overwrite
        assert_eq!(cache.get(1), Some("b"));
        let stats = cache.stats();
        assert_eq!(stats.hits, 2);
        assert_eq!(stats.misses, 1);
        assert_eq!(stats.insertions, 2);
        assert_eq!(stats.evictions, 0);
        assert_eq!(stats.entries, 1);
    }

    #[test]
    fn eviction_removes_the_least_recently_used() {
        // One shard so the LRU order is global and deterministic.
        let cache = ShardedLru::new(2, 1);
        cache.insert(1, 1);
        cache.insert(2, 2);
        assert_eq!(cache.get(1), Some(1)); // refresh 1 → victim is 2
        cache.insert(3, 3);
        assert_eq!(cache.get(2), None, "the stale entry must be evicted");
        assert_eq!(cache.get(1), Some(1));
        assert_eq!(cache.get(3), Some(3));
        assert_eq!(cache.stats().evictions, 1);
    }

    #[test]
    fn capacity_is_enforced_per_shard() {
        let cache = ShardedLru::new(16, 4);
        for key in 0..1000u64 {
            cache.insert(key, key);
        }
        assert!(cache.len() <= cache.capacity(), "{}", cache.len());
        assert_eq!(cache.capacity(), 16);
        assert_eq!(cache.stats().evictions, 1000 - cache.len() as u64);
    }

    #[test]
    fn zero_capacity_still_works_as_a_one_entry_cache() {
        let cache = ShardedLru::new(0, 0);
        cache.insert(7, "x");
        assert_eq!(cache.get(7), Some("x"));
        assert_eq!(cache.capacity(), 1);
    }

    #[test]
    fn concurrent_access_stays_consistent() {
        let cache = Arc::new(ShardedLru::new(64, 8));
        let handles: Vec<_> = (0..8)
            .map(|t| {
                let cache = Arc::clone(&cache);
                std::thread::spawn(move || {
                    for i in 0..500u64 {
                        let key = (t * 131 + i) % 96;
                        cache.insert(key, key * 2);
                        if let Some(v) = cache.get(key) {
                            assert_eq!(v % 2, 0);
                        }
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let stats = cache.stats();
        assert!(stats.entries <= cache.capacity());
        assert_eq!(stats.insertions, 8 * 500);
    }
}
