//! Property tests of the consistent-hash ring — the guarantees the
//! serving tier leans on:
//!
//! 1. **Balance**: with ≥64 virtual nodes, every shard's share of a large
//!    key population stays within a constant factor of fair.
//! 2. **Minimal disruption**: removing one shard remaps only the keys that
//!    shard owned; every other key keeps its exact routing (and therefore
//!    its result-cache/single-flight affinity).
//! 3. **Replica sets**: the first R successors of a key are distinct,
//!    deterministic, and stable under eject/revive round-trips — the
//!    properties quorum reads depend on. Minimal disruption extends to
//!    full successor lists: removing a shard deletes it from every list
//!    without reordering the survivors.

use nrpm_cluster::HashRing;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// With ≥64 vnodes, each of `n` shards owns between 1/(4n) and 4/n of
    /// a mixed key population — balanced within a constant factor of 4.
    #[test]
    fn distribution_is_balanced_within_a_constant_factor(
        shards in 2u32..=8,
        vnodes in 64usize..=128,
        key_seed in 0u64..u64::MAX,
    ) {
        let ring = HashRing::new(0..shards, vnodes);
        const KEYS: usize = 4096;
        let mut counts = vec![0usize; shards as usize];
        for i in 0..KEYS as u64 {
            // Keys in practice are fingerprint hashes; a seeded affine
            // sweep covers both clustered and dispersed populations.
            let key = key_seed.wrapping_add(i.wrapping_mul(0x9e37_79b9_7f4a_7c15));
            let shard = ring.route(key).expect("nonempty ring routes");
            counts[shard as usize] += 1;
        }
        let fair = KEYS / shards as usize;
        for (shard, &count) in counts.iter().enumerate() {
            prop_assert!(
                count >= fair / 4,
                "shard {shard} starved: {count} keys of fair {fair}"
            );
            prop_assert!(
                count <= fair * 4,
                "shard {shard} overloaded: {count} keys of fair {fair}"
            );
        }
    }

    /// Removing one shard moves exactly that shard's keys (each to a
    /// still-present shard) and no others.
    #[test]
    fn removing_a_shard_remaps_only_its_own_keys(
        shards in 2u32..=8,
        vnodes in 64usize..=128,
        removed in 0u32..8,
        key_seed in 0u64..u64::MAX,
    ) {
        let removed = removed % shards;
        let full = HashRing::new(0..shards, vnodes);
        let mut reduced = full.clone();
        reduced.remove_shard(removed);
        for i in 0..2048u64 {
            let key = key_seed.wrapping_add(i.wrapping_mul(0x6a09_e667_f3bc_c909));
            let before = full.route(key).unwrap();
            let after = reduced.route(key).unwrap();
            if before == removed {
                prop_assert_ne!(after, removed, "keys must leave the removed shard");
            } else {
                prop_assert_eq!(
                    before, after,
                    "key {} moved although its owner survived", key
                );
            }
        }
    }

    /// Adding a shard back restores the original routing exactly — the
    /// property that lets ejection keep the ring untouched and still
    /// promise returning shards their old keys.
    #[test]
    fn membership_round_trip_restores_routing(
        shards in 2u32..=6,
        vnodes in 64usize..=96,
        key_seed in 0u64..u64::MAX,
    ) {
        let original = HashRing::new(0..shards, vnodes);
        let mut ring = original.clone();
        ring.remove_shard(shards - 1);
        ring.add_shard(shards - 1);
        for i in 0..1024u64 {
            let key = key_seed.wrapping_add(i.wrapping_mul(0xbf58_476d_1ce4_e5b9));
            prop_assert_eq!(original.route(key), ring.route(key));
        }
    }

    /// Replica sets (the first R successors) are distinct, owner-first,
    /// and deterministic across repeated lookups and ring clones.
    #[test]
    fn replica_sets_are_distinct_and_deterministic(
        shards in 2u32..=8,
        vnodes in 64usize..=128,
        replication in 2usize..=4,
        key_seed in 0u64..u64::MAX,
    ) {
        let ring = HashRing::new(0..shards, vnodes);
        let clone = ring.clone();
        let mut buf = Vec::new();
        for i in 0..512u64 {
            let key = key_seed.wrapping_add(i.wrapping_mul(0x2545_f491_4f6c_dd1d));
            ring.successors_into(key, &mut buf);
            let r = replication.min(shards as usize);
            let replicas = &buf[..r];
            prop_assert_eq!(replicas[0], ring.route(key).unwrap(), "owner must lead");
            let mut sorted = replicas.to_vec();
            sorted.sort_unstable();
            sorted.dedup();
            prop_assert_eq!(sorted.len(), r, "replica set must be distinct");
            prop_assert_eq!(&clone.successors(key)[..r], replicas, "lookup must be deterministic");
        }
    }

    /// Minimal disruption extends to full successor lists: removing one
    /// shard deletes exactly that entry from every key's list, preserving
    /// the survivors' relative order.
    #[test]
    fn removing_a_shard_only_deletes_it_from_successor_lists(
        shards in 3u32..=8,
        vnodes in 64usize..=128,
        removed in 0u32..8,
        key_seed in 0u64..u64::MAX,
    ) {
        let removed = removed % shards;
        let full = HashRing::new(0..shards, vnodes);
        let mut reduced = full.clone();
        reduced.remove_shard(removed);
        for i in 0..512u64 {
            let key = key_seed.wrapping_add(i.wrapping_mul(0x9e37_79b9_7f4a_7c15));
            let mut expect = full.successors(key);
            expect.retain(|&s| s != removed);
            prop_assert_eq!(
                reduced.successors(key), expect,
                "survivors must keep their order for key {}", key
            );
        }
    }

    /// Eject/revive round-trips leave successor lists untouched. Ejection
    /// keeps the ring membership fixed by design, so the list a revived
    /// shard rejoins is bit-identical to the one it left — modeled here as
    /// the remove+add round trip the router would have to perform if it
    /// edited the ring instead.
    #[test]
    fn eject_revive_round_trip_is_stable_for_successor_lists(
        shards in 2u32..=6,
        vnodes in 64usize..=96,
        cycled in 0u32..6,
        key_seed in 0u64..u64::MAX,
    ) {
        let cycled = cycled % shards;
        let original = HashRing::new(0..shards, vnodes);
        let mut ring = original.clone();
        for _ in 0..3 {
            ring.remove_shard(cycled);
            ring.add_shard(cycled);
        }
        for i in 0..512u64 {
            let key = key_seed.wrapping_add(i.wrapping_mul(0x6a09_e667_f3bc_c909));
            prop_assert_eq!(original.successors(key), ring.successors(key));
        }
    }
}
