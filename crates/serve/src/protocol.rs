//! The wire protocol: newline-delimited JSON requests and responses.
//!
//! Every request is one JSON object on one line with a `cmd` field; every
//! response is one JSON object on one line with a `status` field (`"ok"` or
//! `"error"`). Errors carry a machine-readable `kind` mapped from the
//! [`ModelError`] severity taxonomy, so clients can distinguish bad requests
//! from recoverable modeling failures from fatal ones without string
//! matching.
//!
//! ```text
//! → {"cmd":"model","set":{...},"timeout_ms":5000,"id":"k1"}
//! ← {"status":"ok","id":"k1","outcome":{...}}
//! → {"cmd":"batch","sets":[{...},{...}]}
//! ← {"status":"ok","results":[{"status":"ok",...},{"status":"error",...}]}
//! → {"cmd":"health"}       → {"cmd":"stats"}       → {"cmd":"shutdown"}
//! ```

use nrpm_core::adaptive::{AdaptiveOutcome, ModelerChoice};
use nrpm_extrap::{MeasurementSet, ModelError, Severity};
use serde::{Deserialize, Serialize, Value};

/// Hard cap on the length of one request line; longer requests are rejected
/// with a `too_large` error before any parsing happens.
pub const MAX_LINE_BYTES: usize = 8 * 1024 * 1024;

/// Hard cap on JSON nesting depth. The vendored `serde_json` parser is
/// recursive, so a hostile `[[[[…` line would otherwise exhaust the stack;
/// a cheap bracket scan rejects such lines before any parsing happens.
pub const MAX_JSON_DEPTH: usize = 64;

/// A parsed client request.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Model one kernel's measurements.
    Model {
        /// The kernel's measurement set.
        set: MeasurementSet,
        /// Evaluate the selected model at this point.
        at: Option<Vec<f64>>,
        /// Per-request deadline override (milliseconds).
        timeout_ms: Option<u64>,
        /// Client-chosen correlation id, echoed in the response.
        id: Option<String>,
        /// Retry ordinal set by retrying clients (`0`/absent = first try).
        /// The server counts `attempt >= 1` as `retries_observed`.
        attempt: Option<u64>,
        /// Tenant/workload tag. Tagged requests feed the adaptation
        /// engine's per-key noise accumulation, so retraining can mirror
        /// the dominant live workload.
        tenant: Option<String>,
    },
    /// Model several kernels, coalescing their DNN forward passes into one
    /// batched inference.
    Batch {
        /// One measurement set per kernel.
        sets: Vec<MeasurementSet>,
        /// Per-request deadline override (milliseconds).
        timeout_ms: Option<u64>,
        /// Client-chosen correlation id, echoed in the response.
        id: Option<String>,
        /// Retry ordinal set by retrying clients (`0`/absent = first try).
        attempt: Option<u64>,
    },
    /// Liveness probe.
    Health,
    /// Metrics snapshot.
    Stats,
    /// Begin a graceful drain: stop accepting, finish in-flight work, exit.
    Shutdown,
    /// Test-only fault hook: makes the worker that dequeues it die abruptly,
    /// exercising the supervisor's respawn path. Refused with a `usage`
    /// error unless the server was started with `debug_hooks` enabled.
    CrashWorker,
    /// Asks the adaptation engine to run a retrain cycle at its next tick
    /// instead of waiting for the interval (and regardless of how few
    /// observations accumulated). Refused unless the engine is running.
    ForceAdapt,
    /// Test-only fault hook: queues one adaptation-specific fault
    /// (`kill_retrain`, `corrupt_candidate`, `regress_swap`,
    /// `kill_commit`) consumed by the engine's next cycle. Refused unless
    /// the server was started with `debug_hooks` and the engine is
    /// running.
    AdaptFault {
        /// The fault's wire name.
        kind: String,
    },
}

/// Machine-readable classification of an error response.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ErrorKind {
    /// The request line was not valid JSON or not a valid request object.
    Parse,
    /// The request was well-formed but semantically unusable
    /// (unknown command, missing field, oversized payload).
    Usage,
    /// A recoverable modeling failure ([`Severity::Recoverable`]) — the
    /// input data cannot support a model, but the server is healthy.
    Recoverable,
    /// A fatal modeling failure ([`Severity::Fatal`]) — the input data is
    /// structurally broken (e.g. non-positive coordinates).
    Fatal,
    /// The request missed its deadline.
    Timeout,
    /// The server shed the request because its admission queue (or its
    /// connection table) is full. Retryable after backing off.
    Overloaded,
    /// The server is draining and no longer accepts modeling work.
    ShuttingDown,
}

impl ErrorKind {
    /// The wire name of this kind.
    pub fn as_str(self) -> &'static str {
        match self {
            ErrorKind::Parse => "parse",
            ErrorKind::Usage => "usage",
            ErrorKind::Recoverable => "recoverable",
            ErrorKind::Fatal => "fatal",
            ErrorKind::Timeout => "timeout",
            ErrorKind::Overloaded => "overloaded",
            ErrorKind::ShuttingDown => "shutting_down",
        }
    }

    /// Maps a modeling error onto its wire classification.
    pub fn of_model_error(e: &ModelError) -> Self {
        match e.severity() {
            Severity::Recoverable => ErrorKind::Recoverable,
            Severity::Fatal => ErrorKind::Fatal,
        }
    }
}

impl std::fmt::Display for ErrorKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

fn opt_u64(v: &Value, key: &str) -> Result<Option<u64>, String> {
    match v.get(key) {
        None | Some(Value::Null) => Ok(None),
        Some(x) => x
            .as_u64()
            .map(Some)
            .ok_or_else(|| format!("`{key}` must be a non-negative integer")),
    }
}

fn opt_str(v: &Value, key: &str) -> Result<Option<String>, String> {
    match v.get(key) {
        None | Some(Value::Null) => Ok(None),
        Some(x) => x
            .as_str()
            .map(|s| Some(s.to_string()))
            .ok_or_else(|| format!("`{key}` must be a string")),
    }
}

fn opt_point(v: &Value, key: &str) -> Result<Option<Vec<f64>>, String> {
    match v.get(key) {
        None | Some(Value::Null) => Ok(None),
        Some(x) => {
            let seq = x
                .as_seq()
                .ok_or_else(|| format!("`{key}` must be an array"))?;
            seq.iter()
                .map(|e| {
                    e.as_f64()
                        .filter(|f| f.is_finite())
                        .ok_or_else(|| format!("`{key}` must hold finite numbers"))
                })
                .collect::<Result<Vec<f64>, String>>()
                .map(Some)
        }
    }
}

/// `true` when `line`'s bracket nesting (outside string literals) exceeds
/// `max` — a linear scan, safe to run on hostile input of any size. Public
/// so other protocol front-ends (the cluster router) can apply the same
/// guard before handing a line to the JSON parser.
pub fn nesting_exceeds(line: &str, max: usize) -> bool {
    let mut depth = 0usize;
    let mut in_string = false;
    let mut escaped = false;
    for b in line.bytes() {
        if in_string {
            if escaped {
                escaped = false;
            } else if b == b'\\' {
                escaped = true;
            } else if b == b'"' {
                in_string = false;
            }
        } else {
            match b {
                b'"' => in_string = true,
                b'{' | b'[' => {
                    depth += 1;
                    if depth > max {
                        return true;
                    }
                }
                b'}' | b']' => depth = depth.saturating_sub(1),
                _ => {}
            }
        }
    }
    false
}

impl Request {
    /// Parses one request line. `Err((kind, message))` distinguishes JSON
    /// breakage ([`ErrorKind::Parse`]) from semantic misuse
    /// ([`ErrorKind::Usage`]).
    pub fn parse(line: &str) -> Result<Request, (ErrorKind, String)> {
        if nesting_exceeds(line, MAX_JSON_DEPTH) {
            return Err((
                ErrorKind::Parse,
                format!("JSON nesting exceeds {MAX_JSON_DEPTH} levels"),
            ));
        }
        let value: Value = serde_json::from_str(line)
            .map_err(|e| (ErrorKind::Parse, format!("invalid JSON: {e}")))?;
        if value.as_map().is_none() {
            return Err((ErrorKind::Parse, "request must be a JSON object".into()));
        }
        let cmd = value
            .get("cmd")
            .and_then(Value::as_str)
            .ok_or((ErrorKind::Usage, "missing string field `cmd`".to_string()))?;
        let usage = |m: String| (ErrorKind::Usage, m);
        match cmd {
            "model" => {
                let set_value = value
                    .get("set")
                    .ok_or_else(|| usage("`model` needs a `set` object".into()))?;
                let set = MeasurementSet::from_value(set_value)
                    .map_err(|e| usage(format!("bad `set`: {e}")))?;
                Ok(Request::Model {
                    set,
                    at: opt_point(&value, "at").map_err(usage)?,
                    timeout_ms: opt_u64(&value, "timeout_ms").map_err(usage)?,
                    id: opt_str(&value, "id").map_err(usage)?,
                    attempt: opt_u64(&value, "attempt").map_err(usage)?,
                    tenant: opt_str(&value, "tenant").map_err(usage)?,
                })
            }
            "batch" => {
                let seq = value
                    .get("sets")
                    .and_then(Value::as_seq)
                    .ok_or_else(|| usage("`batch` needs a `sets` array".into()))?;
                if seq.is_empty() {
                    return Err(usage("`sets` must not be empty".into()));
                }
                let sets = seq
                    .iter()
                    .enumerate()
                    .map(|(i, v)| {
                        MeasurementSet::from_value(v)
                            .map_err(|e| usage(format!("bad `sets[{i}]`: {e}")))
                    })
                    .collect::<Result<Vec<_>, _>>()?;
                Ok(Request::Batch {
                    sets,
                    timeout_ms: opt_u64(&value, "timeout_ms").map_err(usage)?,
                    id: opt_str(&value, "id").map_err(usage)?,
                    attempt: opt_u64(&value, "attempt").map_err(usage)?,
                })
            }
            "health" => Ok(Request::Health),
            "stats" => Ok(Request::Stats),
            "shutdown" => Ok(Request::Shutdown),
            "crash_worker" => Ok(Request::CrashWorker),
            "force_adapt" => Ok(Request::ForceAdapt),
            "adapt_fault" => {
                let kind = opt_str(&value, "kind")
                    .map_err(usage)?
                    .ok_or_else(|| usage("`adapt_fault` needs a `kind` string".into()))?;
                Ok(Request::AdaptFault { kind })
            }
            other => Err(usage(format!("unknown command `{other}`"))),
        }
    }

    /// Serializes this request to its one-line wire form (client side).
    pub fn to_line(&self) -> String {
        let mut fields: Vec<(String, Value)> = Vec::new();
        let push_common = |fields: &mut Vec<(String, Value)>,
                           timeout_ms: &Option<u64>,
                           id: &Option<String>,
                           attempt: &Option<u64>| {
            if let Some(t) = timeout_ms {
                fields.push(("timeout_ms".into(), Value::U64(*t)));
            }
            if let Some(i) = id {
                fields.push(("id".into(), Value::Str(i.clone())));
            }
            if let Some(a) = attempt {
                fields.push(("attempt".into(), Value::U64(*a)));
            }
        };
        match self {
            Request::Model {
                set,
                at,
                timeout_ms,
                id,
                attempt,
                tenant,
            } => {
                fields.push(("cmd".into(), Value::Str("model".into())));
                fields.push(("set".into(), set.to_value()));
                if let Some(point) = at {
                    fields.push((
                        "at".into(),
                        Value::Seq(point.iter().map(|&x| Value::F64(x)).collect()),
                    ));
                }
                if let Some(t) = tenant {
                    fields.push(("tenant".into(), Value::Str(t.clone())));
                }
                push_common(&mut fields, timeout_ms, id, attempt);
            }
            Request::Batch {
                sets,
                timeout_ms,
                id,
                attempt,
            } => {
                fields.push(("cmd".into(), Value::Str("batch".into())));
                fields.push((
                    "sets".into(),
                    Value::Seq(sets.iter().map(|s| s.to_value()).collect()),
                ));
                push_common(&mut fields, timeout_ms, id, attempt);
            }
            Request::Health => fields.push(("cmd".into(), Value::Str("health".into()))),
            Request::Stats => fields.push(("cmd".into(), Value::Str("stats".into()))),
            Request::Shutdown => fields.push(("cmd".into(), Value::Str("shutdown".into()))),
            Request::CrashWorker => fields.push(("cmd".into(), Value::Str("crash_worker".into()))),
            Request::ForceAdapt => fields.push(("cmd".into(), Value::Str("force_adapt".into()))),
            Request::AdaptFault { kind } => {
                fields.push(("cmd".into(), Value::Str("adapt_fault".into())));
                fields.push(("kind".into(), Value::Str(kind.clone())));
            }
        }
        serde_json::to_string(&Value::Map(fields)).expect("request serialization is infallible")
    }
}

/// The wire name of a modeler choice.
pub fn choice_name(choice: ModelerChoice) -> &'static str {
    match choice {
        ModelerChoice::Regression => "regression",
        ModelerChoice::Dnn => "dnn",
        ModelerChoice::ConstantMean => "constant_mean",
    }
}

/// Renders an adaptive outcome as the response `outcome` object.
pub fn outcome_value(outcome: &AdaptiveOutcome, at: Option<&[f64]>) -> Value {
    let mut fields: Vec<(String, Value)> = vec![
        ("model".into(), Value::Str(outcome.result.model.to_string())),
        (
            "growth".into(),
            Value::Str(outcome.result.model.asymptotic_string()),
        ),
        (
            "choice".into(),
            Value::Str(choice_name(outcome.choice).into()),
        ),
        ("cv_smape".into(), Value::F64(outcome.result.cv_smape)),
        ("fit_smape".into(), Value::F64(outcome.result.fit_smape)),
        ("noise_mean".into(), Value::F64(outcome.noise.mean())),
        ("threshold".into(), Value::F64(outcome.threshold)),
        (
            "points_dropped".into(),
            Value::U64(outcome.quality.points_dropped as u64),
        ),
        (
            "repairs".into(),
            Value::U64((outcome.quality.dropped() + outcome.quality.clamped) as u64),
        ),
    ];
    if let Some(point) = at {
        fields.push((
            "prediction".into(),
            Value::F64(outcome.result.model.evaluate(point)),
        ));
    }
    Value::Map(fields)
}

/// Builds an `{"status":"ok", ...}` response line from extra fields.
pub fn ok_line(id: Option<&str>, fields: Vec<(String, Value)>) -> String {
    let mut all: Vec<(String, Value)> = vec![("status".into(), Value::Str("ok".into()))];
    if let Some(id) = id {
        all.push(("id".into(), Value::Str(id.into())));
    }
    all.extend(fields);
    serde_json::to_string(&Value::Map(all)).expect("response serialization is infallible")
}

/// Builds an `{"status":"error", ...}` response line.
pub fn error_line(id: Option<&str>, kind: ErrorKind, message: &str) -> String {
    let mut all: Vec<(String, Value)> = vec![("status".into(), Value::Str("error".into()))];
    if let Some(id) = id {
        all.push(("id".into(), Value::Str(id.into())));
    }
    all.push(("kind".into(), Value::Str(kind.as_str().into())));
    all.push(("message".into(), Value::Str(message.into())));
    serde_json::to_string(&Value::Map(all)).expect("response serialization is infallible")
}

/// The per-kernel entry inside a batch response's `results` array.
pub fn batch_entry(result: &Result<AdaptiveOutcome, ModelError>) -> Value {
    match result {
        Ok(outcome) => {
            let mut fields: Vec<(String, Value)> = vec![("status".into(), Value::Str("ok".into()))];
            fields.push(("outcome".into(), outcome_value(outcome, None)));
            Value::Map(fields)
        }
        Err(e) => Value::Map(vec![
            ("status".into(), Value::Str("error".into())),
            (
                "kind".into(),
                Value::Str(ErrorKind::of_model_error(e).as_str().into()),
            ),
            ("message".into(), Value::Str(e.to_string())),
        ]),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn linear_set() -> MeasurementSet {
        let mut set = MeasurementSet::new(1);
        for &x in &[4.0, 8.0, 16.0, 32.0] {
            set.add_repetitions(&[x], &[2.0 * x, 2.1 * x]);
        }
        set
    }

    #[test]
    fn request_lines_round_trip() {
        let requests = vec![
            Request::Model {
                set: linear_set(),
                at: Some(vec![128.0]),
                timeout_ms: Some(2500),
                id: Some("k1".into()),
                attempt: Some(2),
                tenant: Some("team-a".into()),
            },
            Request::Model {
                set: linear_set(),
                at: None,
                timeout_ms: None,
                id: None,
                attempt: None,
                tenant: None,
            },
            Request::Batch {
                sets: vec![linear_set(), linear_set()],
                timeout_ms: None,
                id: None,
                attempt: None,
            },
            Request::Health,
            Request::Stats,
            Request::Shutdown,
            Request::CrashWorker,
            Request::ForceAdapt,
            Request::AdaptFault {
                kind: "kill_retrain".into(),
            },
        ];
        for request in requests {
            let line = request.to_line();
            assert!(!line.contains('\n'), "one line per request: {line}");
            assert_eq!(Request::parse(&line).unwrap(), request);
        }
    }

    #[test]
    fn malformed_lines_are_parse_errors() {
        for line in ["", "{", "null", "42", "[1,2]", "\"cmd\""] {
            let (kind, _) = Request::parse(line).unwrap_err();
            assert_eq!(kind, ErrorKind::Parse, "line: {line:?}");
        }
    }

    #[test]
    fn deep_nesting_is_rejected_before_parsing() {
        // Far past the recursion a stack could absorb — the guard must trip
        // on the linear scan, not inside the recursive parser.
        let bomb = "[".repeat(200_000);
        let (kind, message) = Request::parse(&bomb).unwrap_err();
        assert_eq!(kind, ErrorKind::Parse);
        assert!(message.contains("nesting"), "{message}");

        // Nesting inside string literals is payload, not structure.
        let fake = format!(r#"{{"cmd":"frobnicate","x":"{}"}}"#, "[".repeat(500));
        let (kind, _) = Request::parse(&fake).unwrap_err();
        assert_eq!(kind, ErrorKind::Usage, "string brackets must not count");

        // Just under the cap still parses (to a usage error, not a parse one).
        let deep_ok = format!(
            "{}1{}",
            "[".repeat(MAX_JSON_DEPTH - 1),
            "]".repeat(MAX_JSON_DEPTH - 1)
        );
        let (kind, _) = Request::parse(&deep_ok).unwrap_err();
        assert_eq!(kind, ErrorKind::Parse, "array is not a request object");
    }

    #[test]
    fn semantic_misuse_is_a_usage_error() {
        for line in [
            "{}",
            r#"{"cmd":"frobnicate"}"#,
            r#"{"cmd":"model"}"#,
            r#"{"cmd":"model","set":{"wrong":true}}"#,
            r#"{"cmd":"batch","sets":[]}"#,
            r#"{"cmd":"batch","sets":[7]}"#,
            r#"{"cmd":"model","set":{"num_params":1,"measurements":[]},"timeout_ms":-4}"#,
            r#"{"cmd":"model","set":{"num_params":1,"measurements":[]},"at":["x"]}"#,
            r#"{"cmd":"adapt_fault"}"#,
            r#"{"cmd":"adapt_fault","kind":42}"#,
        ] {
            let (kind, _) = Request::parse(line).unwrap_err();
            assert_eq!(kind, ErrorKind::Usage, "line: {line:?}");
        }
    }

    #[test]
    fn error_kinds_map_model_error_severity() {
        assert_eq!(
            ErrorKind::of_model_error(&ModelError::TooFewPoints {
                param: 0,
                found: 2,
                required: 5
            }),
            ErrorKind::Recoverable
        );
        assert_eq!(
            ErrorKind::of_model_error(&ModelError::NoParameters),
            ErrorKind::Fatal
        );
    }

    #[test]
    fn response_lines_are_single_line_json() {
        let ok = ok_line(Some("a"), vec![("x".into(), Value::U64(1))]);
        assert!(ok.starts_with(r#"{"status":"ok","id":"a""#), "{ok}");
        let err = error_line(None, ErrorKind::Timeout, "deadline exceeded");
        let parsed: Value = serde_json::from_str(&err).unwrap();
        assert_eq!(parsed.get("kind").and_then(Value::as_str), Some("timeout"));
        assert_eq!(parsed.get("status").and_then(Value::as_str), Some("error"));
    }

    #[test]
    fn measurement_sets_survive_the_wire_encoding() {
        let set = linear_set();
        let value = set.to_value();
        let text = serde_json::to_string(&value).unwrap();
        let back: Value = serde_json::from_str(&text).unwrap();
        assert_eq!(MeasurementSet::from_value(&back).unwrap(), set);
    }
}
