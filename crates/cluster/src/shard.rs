//! Per-member runtime state: the membership backend (locally-spawned
//! server vs. network-joined shard), the routing availability state
//! machine, the heartbeat lease, and the supervisor's last wire-polled
//! view of the member's `stats`.
//!
//! ## Availability state machine
//!
//! ```text
//! Healthy --eject_after consecutive probe/route failures--> Ejected
//! Healthy --heartbeat lease expires (remote members)-----> Ejected
//! Ejected --1 successful probe (lease valid)--> Probation(1)
//! Probation(k) --successful probe--> Probation(k+1) | Healthy (k+1 == readmit_probes)
//! Probation(_) --any failure--> Ejected
//! Healthy --rollout drain--> Updating          (not routed, not probed)
//! Updating --verified on the target--> Healthy (direct readmit)
//! Healthy/Probation --drain_shard--> Draining  (terminal until revive)
//! Healthy/Probation --kill_shard--> Killed     (terminal until revive)
//! revive/rejoin --> Ejected                    (must earn traffic back)
//! ```
//!
//! Only `Healthy` members receive routed traffic. Re-admission is gradual
//! by construction: a returning member serves nothing until it has
//! answered `readmit_probes` consecutive health probes — and a remote
//! member additionally needs a live heartbeat lease, so a shard that
//! answers probes but whose join agent died stays out of rotation. The
//! one exception is the rollout path: `Updating → Healthy` is immediate
//! because the rollout driver has just verified the member over the wire.

use std::net::SocketAddr;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, MutexGuard};
use std::time::{Duration, Instant};

use nrpm_serve::server::Server;
use nrpm_serve::store::ModelStore;

/// Where a member stands in the routing state machine. See the
/// [module docs](self) for transitions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Availability {
    /// Serving traffic.
    Healthy,
    /// Passed some, but not yet `readmit_probes`, consecutive probes after
    /// an ejection; not yet serving.
    Probation(u32),
    /// Failed out of rotation; probes decide when it may return.
    Ejected,
    /// Drained by the rollout driver while its checkpoint is swapped;
    /// readmitted directly once verified on the target.
    Updating,
    /// Operator-initiated graceful removal; never probed or routed.
    Draining,
    /// Test-initiated abrupt removal; never probed or routed.
    Killed,
}

impl Availability {
    /// The state's wire/display name.
    pub fn name(self) -> &'static str {
        match self {
            Availability::Healthy => "healthy",
            Availability::Probation(_) => "probation",
            Availability::Ejected => "ejected",
            Availability::Updating => "updating",
            Availability::Draining => "draining",
            Availability::Killed => "killed",
        }
    }
}

/// Health-probe bookkeeping guarded by one lock.
#[derive(Debug)]
struct HealthState {
    avail: Availability,
    consecutive_fails: u32,
}

/// The supervisor's last successful `stats` poll of this member.
#[derive(Debug, Clone, Default)]
pub(crate) struct PolledStats {
    /// `checkpoint_hash` the member reported (hex16).
    pub checkpoint_hash: Option<String>,
    /// Adaptation `epoch` the member reported.
    pub epoch: u64,
}

/// A network member's heartbeat lease.
#[derive(Debug)]
pub(crate) struct LeaseState {
    expires_at: Instant,
    /// Whether the current lapse was already counted/acted on, so one
    /// expiry ejects exactly once.
    lapse_noted: bool,
}

/// How a member is provided — the two providers behind the `ShardMember`
/// abstraction.
pub(crate) enum MemberBackend {
    /// Spawned in-process by the cluster launcher: the cluster owns the
    /// server handle and the store, so it can drain, revive, and hot-swap
    /// the member directly.
    Local {
        /// The member's own store handle — used for revive (restart on
        /// the same weights), rolling rollouts, and by tests that force
        /// checkpoint divergence.
        store: ModelStore,
        server: Mutex<Option<Server>>,
    },
    /// Registered over the wire via the `cluster_join` handshake: the
    /// router only knows an address and a heartbeat lease. `lease: None`
    /// marks an *adopted* member — one a promoted standby router learned
    /// about through state sync — whose liveness is probe-driven until it
    /// heartbeats this router for the first time.
    Remote { lease: Mutex<Option<LeaseState>> },
}

/// One cluster member: backend, routing state, counters.
pub(crate) struct ShardRuntime {
    pub id: u32,
    addr: Mutex<SocketAddr>,
    pub backend: MemberBackend,
    health: Mutex<HealthState>,
    pub polled: Mutex<PolledStats>,
    /// Requests this member answered through the router.
    pub routed: AtomicU64,
    /// Routed requests this member failed (transport error or
    /// `shutting_down`), each of which ejected it.
    pub failed: AtomicU64,
    /// Bumped whenever the member's process identity may have changed
    /// (revive, network rejoin). Router connection pools key their cached
    /// clients on `(addr, incarnation)` and evict on mismatch, so a
    /// restart never leaves them talking to a dead socket.
    incarnation: AtomicU64,
}

fn lock_recovering<T>(mutex: &Mutex<T>) -> MutexGuard<'_, T> {
    mutex
        .lock()
        .unwrap_or_else(|poisoned| poisoned.into_inner())
}

impl ShardRuntime {
    /// A locally-spawned member, healthy from the start (the launcher just
    /// started its server).
    pub fn local(id: u32, addr: SocketAddr, store: ModelStore, server: Server) -> ShardRuntime {
        ShardRuntime::new(
            id,
            addr,
            MemberBackend::Local {
                store,
                server: Mutex::new(Some(server)),
            },
            Availability::Healthy,
        )
    }

    /// A network-joined member with a fresh heartbeat lease. It starts
    /// `Ejected`: traffic arrives only after the probation gauntlet.
    pub fn remote(id: u32, addr: SocketAddr, lease: Duration) -> ShardRuntime {
        ShardRuntime::new(
            id,
            addr,
            MemberBackend::Remote {
                lease: Mutex::new(Some(LeaseState {
                    expires_at: Instant::now() + lease,
                    lapse_noted: false,
                })),
            },
            Availability::Ejected,
        )
    }

    /// An adopted member: a promoted standby router's view of a shard it
    /// learned about via state sync. No lease (probe-driven liveness) and
    /// the availability the primary last reported.
    pub fn adopted(id: u32, addr: SocketAddr, avail: Availability) -> ShardRuntime {
        ShardRuntime::new(
            id,
            addr,
            MemberBackend::Remote {
                lease: Mutex::new(None),
            },
            avail,
        )
    }

    fn new(id: u32, addr: SocketAddr, backend: MemberBackend, avail: Availability) -> ShardRuntime {
        ShardRuntime {
            id,
            addr: Mutex::new(addr),
            backend,
            health: Mutex::new(HealthState {
                avail,
                consecutive_fails: 0,
            }),
            polled: Mutex::new(PolledStats::default()),
            routed: AtomicU64::new(0),
            failed: AtomicU64::new(0),
            incarnation: AtomicU64::new(0),
        }
    }

    pub fn addr(&self) -> SocketAddr {
        *lock_recovering(&self.addr)
    }

    /// `true` for network-joined (and adopted) members.
    pub fn is_remote(&self) -> bool {
        matches!(self.backend, MemberBackend::Remote { .. })
    }

    /// The member's store handle (local members only).
    pub fn store(&self) -> Option<&ModelStore> {
        match &self.backend {
            MemberBackend::Local { store, .. } => Some(store),
            MemberBackend::Remote { .. } => None,
        }
    }

    /// Connection-pool eviction key (see the field docs).
    pub fn incarnation(&self) -> u64 {
        self.incarnation.load(Ordering::Acquire)
    }

    pub fn availability(&self) -> Availability {
        lock_recovering(&self.health).avail
    }

    /// `true` when routed traffic may reach this member.
    pub fn is_routable(&self) -> bool {
        matches!(self.availability(), Availability::Healthy)
    }

    /// `true` when the supervisor should probe this member at all.
    pub fn is_probed(&self) -> bool {
        !matches!(
            self.availability(),
            Availability::Updating | Availability::Draining | Availability::Killed
        )
    }

    /// Records a successful health probe, advancing re-admission.
    pub fn note_probe_ok(&self, readmit_probes: u32) {
        let mut health = lock_recovering(&self.health);
        health.consecutive_fails = 0;
        health.avail = match health.avail {
            Availability::Ejected => {
                if readmit_probes <= 1 {
                    Availability::Healthy
                } else {
                    Availability::Probation(1)
                }
            }
            Availability::Probation(k) => {
                if k + 1 >= readmit_probes {
                    Availability::Healthy
                } else {
                    Availability::Probation(k + 1)
                }
            }
            other => other,
        };
    }

    /// Records a failed health probe; `eject_after` consecutive failures
    /// take a healthy member out of rotation, and any failure resets
    /// probation.
    pub fn note_probe_fail(&self, eject_after: u32) {
        let mut health = lock_recovering(&self.health);
        health.consecutive_fails += 1;
        health.avail = match health.avail {
            Availability::Healthy if health.consecutive_fails >= eject_after.max(1) => {
                Availability::Ejected
            }
            Availability::Probation(_) => Availability::Ejected,
            other => other,
        };
    }

    /// Records a routed-request failure: the retrying client already
    /// exhausted its in-place retries against this member, so it is
    /// ejected immediately rather than after `eject_after` probe ticks.
    pub fn note_route_failure(&self) {
        self.failed.fetch_add(1, Ordering::Relaxed);
        let mut health = lock_recovering(&self.health);
        if matches!(
            health.avail,
            Availability::Healthy | Availability::Probation(_) | Availability::Ejected
        ) {
            health.avail = Availability::Ejected;
            health.consecutive_fails = 0;
        }
    }

    /// Grants or renews the heartbeat lease of a remote member. An adopted
    /// member gains a lease on its first heartbeat. No-op for local
    /// members (their liveness is the server handle).
    pub fn renew_lease(&self, lease: Duration) {
        if let MemberBackend::Remote { lease: slot } = &self.backend {
            *lock_recovering(slot) = Some(LeaseState {
                expires_at: Instant::now() + lease,
                lapse_noted: false,
            });
        }
    }

    /// Checks the heartbeat lease as of `now`; on the **first** call after
    /// an expiry this ejects the member and returns `true` (the caller
    /// counts it). Local and adopted members never lapse.
    pub fn note_lease_lapse(&self, now: Instant) -> bool {
        let MemberBackend::Remote { lease } = &self.backend else {
            return false;
        };
        let mut guard = lock_recovering(lease);
        let Some(state) = guard.as_mut() else {
            return false;
        };
        if now < state.expires_at || state.lapse_noted {
            return false;
        }
        state.lapse_noted = true;
        drop(guard);
        let mut health = lock_recovering(&self.health);
        if matches!(
            health.avail,
            Availability::Healthy | Availability::Probation(_)
        ) {
            health.avail = Availability::Ejected;
            health.consecutive_fails = 0;
        }
        true
    }

    /// `true` when probes may advance this member toward `Healthy`: local
    /// and adopted members always, leased members only while the lease is
    /// live. This is what keeps a shard whose join agent died out of
    /// rotation even though its server answers probes.
    pub fn lease_allows_readmission(&self, now: Instant) -> bool {
        match &self.backend {
            MemberBackend::Local { .. } => true,
            MemberBackend::Remote { lease } => match lock_recovering(lease).as_ref() {
                None => true,
                Some(state) => now < state.expires_at,
            },
        }
    }

    /// Milliseconds left on the heartbeat lease (`None` for local and
    /// adopted members).
    pub fn lease_remaining_ms(&self, now: Instant) -> Option<u64> {
        match &self.backend {
            MemberBackend::Local { .. } => None,
            MemberBackend::Remote { lease } => {
                let guard = lock_recovering(lease);
                let state = guard.as_ref()?;
                Some(state.expires_at.saturating_duration_since(now).as_millis() as u64)
            }
        }
    }

    /// Takes the member out of routing for a rolling checkpoint update;
    /// probes pause until the rollout driver verifies and readmits it.
    pub fn begin_update(&self) {
        let mut health = lock_recovering(&self.health);
        health.avail = Availability::Updating;
        health.consecutive_fails = 0;
    }

    /// Readmits a member the rollout driver just verified over the wire —
    /// directly to `Healthy`, skipping probation, because the verification
    /// *was* the probe.
    pub fn finish_update(&self, healthy: bool) {
        let mut health = lock_recovering(&self.health);
        if health.avail == Availability::Updating {
            health.avail = if healthy {
                Availability::Healthy
            } else {
                Availability::Ejected
            };
            health.consecutive_fails = 0;
        }
    }

    /// Flags the member as intentionally leaving (`drain`/`kill`); routing
    /// and probing stop before the server handle is touched.
    pub fn mark_leaving(&self, killed: bool) {
        let mut health = lock_recovering(&self.health);
        health.avail = if killed {
            Availability::Killed
        } else {
            Availability::Draining
        };
    }

    /// Puts a revived local member back under probation rules at its new
    /// address.
    pub fn mark_revived(&self, addr: SocketAddr, server: Server) {
        *lock_recovering(&self.addr) = addr;
        if let MemberBackend::Local { server: slot, .. } = &self.backend {
            *lock_recovering(slot) = Some(server);
        }
        self.incarnation.fetch_add(1, Ordering::AcqRel);
        let mut health = lock_recovering(&self.health);
        health.avail = Availability::Ejected;
        health.consecutive_fails = 0;
    }

    /// Re-registers a remote member that came back through the join
    /// handshake (possibly a new process at the same or a new address):
    /// fresh lease, fresh incarnation, probation rules.
    pub fn mark_rejoined(&self, addr: SocketAddr, lease: Duration) {
        *lock_recovering(&self.addr) = addr;
        self.incarnation.fetch_add(1, Ordering::AcqRel);
        self.renew_lease(lease);
        let mut health = lock_recovering(&self.health);
        if !matches!(health.avail, Availability::Healthy) {
            health.avail = Availability::Ejected;
            health.consecutive_fails = 0;
        }
    }

    /// Takes the server handle (for drain/kill/join); `None` when already
    /// taken or remote.
    pub fn take_server(&self) -> Option<Server> {
        match &self.backend {
            MemberBackend::Local { server, .. } => lock_recovering(server).take(),
            MemberBackend::Remote { .. } => None,
        }
    }

    /// `true` while a local server handle is held (the backend threads
    /// exist).
    pub fn has_server(&self) -> bool {
        match &self.backend {
            MemberBackend::Local { server, .. } => lock_recovering(server).is_some(),
            MemberBackend::Remote { .. } => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nrpm_core::adaptive::AdaptiveOptions;
    use nrpm_nn::{Network, NetworkConfig};
    use nrpm_serve::server::ServeOptions;

    fn runtime() -> ShardRuntime {
        let network = Network::new(
            &NetworkConfig::new(&[
                nrpm_core::preprocess::NUM_INPUTS,
                4,
                nrpm_extrap::NUM_CLASSES,
            ]),
            1,
        );
        let store = ModelStore::from_network(network, AdaptiveOptions::default()).unwrap();
        let opts = ServeOptions {
            workers: 1,
            ..ServeOptions::default()
        };
        let server = Server::start("127.0.0.1:0", store.clone(), opts).unwrap();
        let addr = server.addr();
        ShardRuntime::local(0, addr, store, server)
    }

    fn stop(shard: &ShardRuntime) {
        if let Some(server) = shard.take_server() {
            server.request_shutdown();
            let _ = server.join();
        }
    }

    #[test]
    fn eject_and_gradual_readmission() {
        let shard = runtime();
        assert!(shard.is_routable());

        // One failure is absorbed; the second ejects (eject_after = 2).
        shard.note_probe_fail(2);
        assert!(shard.is_routable());
        shard.note_probe_fail(2);
        assert_eq!(shard.availability(), Availability::Ejected);

        // Re-admission takes three consecutive good probes.
        shard.note_probe_ok(3);
        assert_eq!(shard.availability(), Availability::Probation(1));
        assert!(!shard.is_routable(), "probation must not serve traffic");
        shard.note_probe_ok(3);
        shard.note_probe_ok(3);
        assert!(shard.is_routable());
        stop(&shard);
    }

    #[test]
    fn probation_failure_resets_to_ejected() {
        let shard = runtime();
        shard.note_route_failure();
        assert_eq!(shard.availability(), Availability::Ejected);
        shard.note_probe_ok(3);
        shard.note_probe_fail(2);
        assert_eq!(shard.availability(), Availability::Ejected);
        stop(&shard);
    }

    #[test]
    fn leaving_states_are_terminal_for_probes() {
        let shard = runtime();
        shard.mark_leaving(false);
        assert_eq!(shard.availability(), Availability::Draining);
        assert!(!shard.is_probed());
        shard.note_probe_ok(1);
        shard.note_probe_fail(1);
        assert_eq!(shard.availability(), Availability::Draining);
        stop(&shard);
    }

    #[test]
    fn remote_lease_lapse_ejects_once_and_blocks_readmission() {
        let addr: SocketAddr = "127.0.0.1:9".parse().unwrap();
        let member = ShardRuntime::remote(7, addr, Duration::from_millis(1));
        assert!(member.is_remote());
        assert!(member.store().is_none());

        // Probe it to Healthy while the lease is still live.
        member.note_probe_ok(1);
        assert!(member.is_routable());

        std::thread::sleep(Duration::from_millis(5));
        let now = Instant::now();
        assert!(member.note_lease_lapse(now), "first lapse check ejects");
        assert_eq!(member.availability(), Availability::Ejected);
        assert!(!member.note_lease_lapse(now), "a lapse is counted once");
        assert!(!member.lease_allows_readmission(now));

        // A renewed lease clears the lapse and re-opens readmission.
        member.renew_lease(Duration::from_secs(60));
        assert!(member.lease_allows_readmission(Instant::now()));
        assert!(!member.note_lease_lapse(Instant::now()));
        assert!(member.lease_remaining_ms(Instant::now()).unwrap() > 0);
    }

    #[test]
    fn rejoin_bumps_incarnation_and_requires_probation() {
        let addr: SocketAddr = "127.0.0.1:9".parse().unwrap();
        let member = ShardRuntime::remote(3, addr, Duration::from_secs(1));
        member.note_probe_ok(1);
        member.note_route_failure();
        assert_eq!(member.availability(), Availability::Ejected);

        let before = member.incarnation();
        let new_addr: SocketAddr = "127.0.0.1:10".parse().unwrap();
        member.mark_rejoined(new_addr, Duration::from_secs(1));
        assert_eq!(member.addr(), new_addr);
        assert!(member.incarnation() > before);
        assert_eq!(member.availability(), Availability::Ejected);
    }

    #[test]
    fn update_cycle_drains_and_readmits_directly() {
        let shard = runtime();
        shard.begin_update();
        assert_eq!(shard.availability(), Availability::Updating);
        assert!(!shard.is_routable());
        assert!(!shard.is_probed(), "updating members are not probed");
        // Stray probe results must not disturb the update.
        shard.note_probe_ok(1);
        shard.note_probe_fail(1);
        assert_eq!(shard.availability(), Availability::Updating);
        shard.finish_update(true);
        assert!(shard.is_routable(), "verified members readmit directly");
        stop(&shard);
    }

    #[test]
    fn adopted_members_have_no_lease_until_they_heartbeat() {
        let addr: SocketAddr = "127.0.0.1:9".parse().unwrap();
        let member = ShardRuntime::adopted(2, addr, Availability::Healthy);
        let now = Instant::now();
        assert!(member.is_remote());
        assert!(member.is_routable(), "adoption preserves availability");
        assert!(member.lease_allows_readmission(now));
        assert!(!member.note_lease_lapse(now), "no lease, no lapse");
        assert_eq!(member.lease_remaining_ms(now), None);

        member.renew_lease(Duration::from_secs(1));
        assert!(member.lease_remaining_ms(Instant::now()).is_some());
    }
}
