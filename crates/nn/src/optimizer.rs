//! First-order optimizers: SGD (with momentum), Adam, and AdaMax.
//!
//! The paper trains its network with **AdaMax** (Kingma & Ba, 2015, Sec. 7):
//! the infinity-norm variant of Adam, whose update
//! `θ ← θ − (α / (1 − β₁ᵗ)) · m / u` with `u = max(β₂·u, |g|)` is less
//! sensitive to gradient-scale outliers — a good match for loss surfaces
//! induced by noisy synthetic training data.

use serde::{Deserialize, Serialize};

/// Which optimizer to use, with its hyperparameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum OptimizerKind {
    /// Plain stochastic gradient descent with optional momentum.
    Sgd {
        /// Learning rate.
        learning_rate: f64,
        /// Momentum coefficient (0 disables momentum).
        momentum: f64,
    },
    /// Adam (Kingma & Ba, 2015).
    Adam {
        /// Learning rate α.
        learning_rate: f64,
        /// First-moment decay β₁.
        beta1: f64,
        /// Second-moment decay β₂.
        beta2: f64,
        /// Numerical-stability constant ε.
        epsilon: f64,
    },
    /// AdaMax — the paper's optimizer.
    AdaMax {
        /// Learning rate α (Kingma & Ba's default: 0.002).
        learning_rate: f64,
        /// First-moment decay β₁.
        beta1: f64,
        /// Infinity-norm decay β₂.
        beta2: f64,
    },
}

impl OptimizerKind {
    /// AdaMax with the defaults from the original paper (α = 0.002,
    /// β₁ = 0.9, β₂ = 0.999).
    pub fn adamax_default() -> Self {
        OptimizerKind::AdaMax {
            learning_rate: 0.002,
            beta1: 0.9,
            beta2: 0.999,
        }
    }

    /// Adam with the canonical defaults.
    pub fn adam_default() -> Self {
        OptimizerKind::Adam {
            learning_rate: 0.001,
            beta1: 0.9,
            beta2: 0.999,
            epsilon: 1e-8,
        }
    }

    /// SGD with a given learning rate, no momentum.
    pub fn sgd(learning_rate: f64) -> Self {
        OptimizerKind::Sgd {
            learning_rate,
            momentum: 0.0,
        }
    }
}

impl Default for OptimizerKind {
    fn default() -> Self {
        OptimizerKind::adamax_default()
    }
}

/// Per-tensor optimizer state.
#[derive(Debug, Clone, Default)]
struct TensorState {
    /// First moment (or momentum buffer for SGD).
    m: Vec<f64>,
    /// Second moment (Adam) or infinity norm (AdaMax).
    v: Vec<f64>,
}

/// Stateful optimizer driving updates for a fixed set of parameter tensors.
///
/// Tensors are identified by their registration order: call
/// [`Optimizer::step`] with the same `tensor_id` for the same tensor on
/// every iteration.
#[derive(Debug, Clone)]
pub struct Optimizer {
    kind: OptimizerKind,
    states: Vec<TensorState>,
    /// Global step count `t`, shared by all tensors (incremented by
    /// [`Optimizer::next_step`]).
    t: u64,
}

impl Optimizer {
    /// Creates an optimizer managing `num_tensors` parameter tensors.
    pub fn new(kind: OptimizerKind, num_tensors: usize) -> Self {
        Optimizer {
            kind,
            states: vec![TensorState::default(); num_tensors],
            t: 0,
        }
    }

    /// The configured kind.
    pub fn kind(&self) -> OptimizerKind {
        self.kind
    }

    /// Advances the global step counter. Call once per mini-batch, before
    /// the per-tensor [`step`](Self::step) calls.
    pub fn next_step(&mut self) {
        self.t += 1;
    }

    /// Current step count.
    pub fn step_count(&self) -> u64 {
        self.t
    }

    /// Applies one update to `params` given `grads`.
    ///
    /// # Panics
    /// Panics if `params` and `grads` differ in length or `tensor_id` is out
    /// of range.
    pub fn step(&mut self, tensor_id: usize, params: &mut [f64], grads: &[f64]) {
        assert_eq!(params.len(), grads.len(), "params/grads length mismatch");
        let state = &mut self.states[tensor_id];
        if state.m.len() != params.len() {
            state.m = vec![0.0; params.len()];
            state.v = vec![0.0; params.len()];
        }
        let t = self.t.max(1);

        match self.kind {
            OptimizerKind::Sgd {
                learning_rate,
                momentum,
            } => {
                if momentum == 0.0 {
                    for (p, &g) in params.iter_mut().zip(grads) {
                        *p -= learning_rate * g;
                    }
                } else {
                    for ((p, &g), m) in params.iter_mut().zip(grads).zip(state.m.iter_mut()) {
                        *m = momentum * *m + g;
                        *p -= learning_rate * *m;
                    }
                }
            }
            OptimizerKind::Adam {
                learning_rate,
                beta1,
                beta2,
                epsilon,
            } => {
                let bc1 = 1.0 - beta1.powi(t as i32);
                let bc2 = 1.0 - beta2.powi(t as i32);
                for (((p, &g), m), v) in params
                    .iter_mut()
                    .zip(grads)
                    .zip(state.m.iter_mut())
                    .zip(state.v.iter_mut())
                {
                    *m = beta1 * *m + (1.0 - beta1) * g;
                    *v = beta2 * *v + (1.0 - beta2) * g * g;
                    let m_hat = *m / bc1;
                    let v_hat = *v / bc2;
                    *p -= learning_rate * m_hat / (v_hat.sqrt() + epsilon);
                }
            }
            OptimizerKind::AdaMax {
                learning_rate,
                beta1,
                beta2,
            } => {
                let bc1 = 1.0 - beta1.powi(t as i32);
                let step = learning_rate / bc1;
                for (((p, &g), m), u) in params
                    .iter_mut()
                    .zip(grads)
                    .zip(state.m.iter_mut())
                    .zip(state.v.iter_mut())
                {
                    *m = beta1 * *m + (1.0 - beta1) * g;
                    *u = (beta2 * *u).max(g.abs());
                    if *u > 0.0 {
                        *p -= step * *m / *u;
                    }
                }
            }
        }
    }

    /// Clears all moment buffers and the step count (used when a pretrained
    /// network enters a fresh retraining phase).
    pub fn reset(&mut self) {
        for s in &mut self.states {
            s.m.clear();
            s.v.clear();
        }
        self.t = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Minimizes f(x) = (x - target)² with gradient 2(x - target).
    fn minimize(kind: OptimizerKind, start: f64, target: f64, iters: usize) -> f64 {
        let mut opt = Optimizer::new(kind, 1);
        let mut x = [start];
        for _ in 0..iters {
            opt.next_step();
            let g = [2.0 * (x[0] - target)];
            opt.step(0, &mut x, &g);
        }
        x[0]
    }

    #[test]
    fn sgd_converges_on_quadratic() {
        let x = minimize(OptimizerKind::sgd(0.1), 10.0, 3.0, 200);
        assert!((x - 3.0).abs() < 1e-6, "x = {x}");
    }

    #[test]
    fn sgd_momentum_converges() {
        let x = minimize(
            OptimizerKind::Sgd {
                learning_rate: 0.05,
                momentum: 0.9,
            },
            10.0,
            -2.0,
            500,
        );
        assert!((x + 2.0).abs() < 1e-4, "x = {x}");
    }

    #[test]
    fn adam_converges_on_quadratic() {
        let kind = OptimizerKind::Adam {
            learning_rate: 0.05,
            beta1: 0.9,
            beta2: 0.999,
            epsilon: 1e-8,
        };
        let x = minimize(kind, 10.0, 3.0, 2000);
        assert!((x - 3.0).abs() < 1e-3, "x = {x}");
    }

    #[test]
    fn adamax_converges_on_quadratic() {
        let x = minimize(OptimizerKind::adamax_default(), 10.0, 3.0, 5000);
        assert!((x - 3.0).abs() < 1e-3, "x = {x}");
    }

    #[test]
    fn adamax_first_step_moves_by_learning_rate_magnitude() {
        // With bias correction, the very first AdaMax step is exactly
        // lr * sign(g) when m/u = (1-β1)g / |g| / (1-β1).
        let mut opt = Optimizer::new(
            OptimizerKind::AdaMax {
                learning_rate: 0.002,
                beta1: 0.9,
                beta2: 0.999,
            },
            1,
        );
        opt.next_step();
        let mut x = [1.0];
        opt.step(0, &mut x, &[5.0]);
        assert!((x[0] - (1.0 - 0.002)).abs() < 1e-12, "x = {}", x[0]);
    }

    #[test]
    fn adamax_is_scale_invariant_on_first_step() {
        // The infinity-norm normalization makes the first step independent
        // of the gradient's magnitude.
        for g in [1e-6, 1.0, 1e6] {
            let mut opt = Optimizer::new(OptimizerKind::adamax_default(), 1);
            opt.next_step();
            let mut x = [0.0];
            opt.step(0, &mut x, &[g]);
            assert!((x[0] + 0.002).abs() < 1e-12, "g = {g}, x = {}", x[0]);
        }
    }

    #[test]
    fn zero_gradient_is_a_fixed_point() {
        for kind in [
            OptimizerKind::sgd(0.1),
            OptimizerKind::adam_default(),
            OptimizerKind::adamax_default(),
        ] {
            let mut opt = Optimizer::new(kind, 1);
            opt.next_step();
            let mut x = [7.0];
            opt.step(0, &mut x, &[0.0]);
            assert_eq!(x[0], 7.0, "{kind:?}");
        }
    }

    #[test]
    fn reset_clears_state() {
        let mut opt = Optimizer::new(OptimizerKind::adamax_default(), 1);
        opt.next_step();
        let mut x = [0.0];
        opt.step(0, &mut x, &[1.0]);
        assert_eq!(opt.step_count(), 1);
        opt.reset();
        assert_eq!(opt.step_count(), 0);
    }

    #[test]
    fn separate_tensors_have_separate_state() {
        let mut opt = Optimizer::new(OptimizerKind::adamax_default(), 2);
        opt.next_step();
        let mut a = [0.0];
        let mut b = [0.0];
        opt.step(0, &mut a, &[1.0]);
        opt.step(1, &mut b, &[-1.0]);
        assert!(a[0] < 0.0 && b[0] > 0.0);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn mismatched_grads_panic() {
        let mut opt = Optimizer::new(OptimizerKind::sgd(0.1), 1);
        let mut x = [0.0, 0.0];
        opt.step(0, &mut x, &[1.0]);
    }
}
