//! A minimal command-line flag parser — just enough for the harness
//! binaries, without pulling in a CLI dependency.

use std::collections::BTreeMap;

/// Parsed flags: `--key value` pairs and bare `--switch`es.
#[derive(Debug, Clone, Default)]
pub struct Args {
    values: BTreeMap<String, String>,
    switches: Vec<String>,
}

impl Args {
    /// Parses the process arguments (everything after the binary name).
    pub fn parse() -> Args {
        Self::from_iter(std::env::args().skip(1))
    }

    /// Parses from an explicit iterator (testable).
    #[allow(clippy::should_implement_trait)]
    pub fn from_iter(iter: impl IntoIterator<Item = String>) -> Args {
        let mut args = Args::default();
        let mut iter = iter.into_iter().peekable();
        while let Some(arg) = iter.next() {
            if let Some(name) = arg.strip_prefix("--") {
                let next_is_value = iter.peek().map(|n| !n.starts_with("--")).unwrap_or(false);
                if next_is_value {
                    args.values
                        .insert(name.to_string(), iter.next().expect("peeked"));
                } else {
                    args.switches.push(name.to_string());
                }
            } else {
                eprintln!("warning: ignoring positional argument `{arg}`");
            }
        }
        args
    }

    /// `--name value` as a typed value, or `default`.
    pub fn get<T: std::str::FromStr>(&self, name: &str, default: T) -> T {
        match self.values.get(name) {
            Some(raw) => raw.parse().unwrap_or_else(|_| {
                panic!("flag --{name}: cannot parse `{raw}`");
            }),
            None => default,
        }
    }

    /// Whether a bare `--name` switch was given.
    pub fn has(&self, name: &str) -> bool {
        self.switches.iter().any(|s| s == name)
    }

    /// A comma-separated `--name a,b,c` list of floats, or `default`.
    pub fn get_f64_list(&self, name: &str, default: &[f64]) -> Vec<f64> {
        match self.values.get(name) {
            Some(raw) => raw
                .split(',')
                .map(|s| {
                    s.trim()
                        .parse()
                        .unwrap_or_else(|_| panic!("flag --{name}: bad float `{s}`"))
                })
                .collect(),
            None => default.to_vec(),
        }
    }
}

/// Parses an `--aggregation median|mean|min` flag.
pub fn aggregation_flag(args: &Args) -> nrpm_extrap::Aggregation {
    match args.get("aggregation", "median".to_string()).as_str() {
        "mean" => nrpm_extrap::Aggregation::Mean,
        "min" | "minimum" => nrpm_extrap::Aggregation::Minimum,
        "median" => nrpm_extrap::Aggregation::Median,
        other => panic!("flag --aggregation: unknown value `{other}` (median|mean|min)"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(s: &str) -> Args {
        Args::from_iter(s.split_whitespace().map(String::from))
    }

    #[test]
    fn parses_values_and_switches() {
        let a = parse("--functions 500 --paper-net --params 2");
        assert_eq!(a.get("functions", 0usize), 500);
        assert_eq!(a.get("params", 1usize), 2);
        assert!(a.has("paper-net"));
        assert!(!a.has("verbose"));
    }

    #[test]
    fn defaults_apply_when_missing() {
        let a = parse("");
        assert_eq!(a.get("functions", 123usize), 123);
        assert_eq!(a.get("seed", 7u64), 7);
    }

    #[test]
    fn float_lists() {
        let a = parse("--noise 0.02,0.5,1.0");
        assert_eq!(a.get_f64_list("noise", &[0.1]), vec![0.02, 0.5, 1.0]);
        assert_eq!(parse("").get_f64_list("noise", &[0.1]), vec![0.1]);
    }

    #[test]
    #[should_panic(expected = "cannot parse")]
    fn bad_value_panics() {
        let a = parse("--functions abc");
        let _ = a.get("functions", 0usize);
    }

    #[test]
    fn aggregation_flag_variants() {
        assert_eq!(
            aggregation_flag(&parse("")),
            nrpm_extrap::Aggregation::Median
        );
        assert_eq!(
            aggregation_flag(&parse("--aggregation mean")),
            nrpm_extrap::Aggregation::Mean
        );
        assert_eq!(
            aggregation_flag(&parse("--aggregation min")),
            nrpm_extrap::Aggregation::Minimum
        );
    }

    #[test]
    #[should_panic(expected = "unknown value")]
    fn aggregation_flag_rejects_garbage() {
        let _ = aggregation_flag(&parse("--aggregation mode"));
    }
}
