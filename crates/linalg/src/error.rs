use std::fmt;

/// Errors produced by linear-algebra routines.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LinalgError {
    /// Operand shapes are incompatible for the requested operation.
    ShapeMismatch {
        /// Human-readable description of the operation that failed.
        op: &'static str,
        /// Shape of the left operand as `(rows, cols)`.
        lhs: (usize, usize),
        /// Shape of the right operand as `(rows, cols)`.
        rhs: (usize, usize),
    },
    /// The system is rank deficient (or numerically singular) and cannot be
    /// solved to the requested accuracy.
    RankDeficient {
        /// Index of the pivot that collapsed.
        pivot: usize,
    },
    /// The input contained a non-finite value (NaN or infinity).
    NonFinite,
    /// An empty input was supplied where at least one element is required.
    EmptyInput,
}

impl fmt::Display for LinalgError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LinalgError::ShapeMismatch { op, lhs, rhs } => write!(
                f,
                "shape mismatch in {op}: lhs is {}x{}, rhs is {}x{}",
                lhs.0, lhs.1, rhs.0, rhs.1
            ),
            LinalgError::RankDeficient { pivot } => {
                write!(f, "matrix is rank deficient (pivot {pivot} collapsed)")
            }
            LinalgError::NonFinite => write!(f, "input contains NaN or infinite values"),
            LinalgError::EmptyInput => write!(f, "input must not be empty"),
        }
    }
}

impl std::error::Error for LinalgError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_formats_are_informative() {
        let e = LinalgError::ShapeMismatch {
            op: "matmul",
            lhs: (2, 3),
            rhs: (4, 5),
        };
        let msg = e.to_string();
        assert!(msg.contains("matmul"));
        assert!(msg.contains("2x3"));
        assert!(msg.contains("4x5"));

        assert!(LinalgError::RankDeficient { pivot: 7 }
            .to_string()
            .contains('7'));
        assert!(LinalgError::NonFinite.to_string().contains("NaN"));
        assert!(LinalgError::EmptyInput.to_string().contains("empty"));
    }

    #[test]
    fn errors_are_comparable() {
        assert_eq!(LinalgError::NonFinite, LinalgError::NonFinite);
        assert_ne!(LinalgError::NonFinite, LinalgError::EmptyInput);
    }
}
