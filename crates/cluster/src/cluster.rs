//! Cluster lifecycle: launch N in-process shards behind one router,
//! distribute the serving checkpoint through the content-addressed
//! registry, and supervise shard health over the wire.

use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::{self, JoinHandle};
use std::time::Duration;

use nrpm_core::adaptive::AdaptiveOptions;
use nrpm_nn::Network;
use nrpm_registry::CheckpointRegistry;
use nrpm_serve::client::{is_ok, Client, RetryPolicy};
use nrpm_serve::server::{ServeOptions, Server};
use nrpm_serve::store::ModelStore;
use serde::Value;

use crate::ring::{HashRing, DEFAULT_VNODES};
use crate::shard::{Availability, PolledStats, ShardRuntime};

/// Tuning knobs of [`Cluster::launch`].
#[derive(Debug, Clone)]
pub struct ClusterOptions {
    /// Backend shard count.
    pub shards: usize,
    /// Virtual nodes per shard on the routing ring.
    pub vnodes: usize,
    /// Worker threads per shard.
    pub workers_per_shard: usize,
    /// Router bind address; use port `0` for an ephemeral port.
    pub router_addr: String,
    /// When set, the serving checkpoint is published here under
    /// [`ClusterOptions::serving_ref`], synced into a per-shard registry
    /// (`<dir>/shards/shard-<i>`), and each shard loads its weights from
    /// its own copy — the distribution path every deployment would use
    /// across real machines. `None` hands each shard a clone directly.
    pub registry_dir: Option<PathBuf>,
    /// Ref name the serving checkpoint is published under.
    pub serving_ref: String,
    /// How often the supervisor wire-polls each shard's `health`/`stats`.
    pub probe_interval: Duration,
    /// Connect/roundtrip deadline of one probe.
    pub probe_timeout: Duration,
    /// Consecutive probe failures that eject a healthy shard.
    pub eject_after: u32,
    /// Consecutive successful probes a returning shard must pass before
    /// traffic comes back (gradual re-admission).
    pub readmit_probes: u32,
    /// Per-forwarded-request deadline the router's shard clients use.
    pub shard_timeout: Duration,
    /// Retry/backoff/breaker policy of the router's per-shard clients.
    /// Failover to ring successors happens *after* this policy exhausts
    /// its in-place retries against one shard.
    pub retry: RetryPolicy,
    /// Distinct shards one request may try before giving up.
    pub max_failover: usize,
    /// Enables the `cluster_kill` test hook on the router.
    pub debug_hooks: bool,
    /// Template for each shard's server options; `workers` and `shard_id`
    /// are overridden per shard.
    pub shard_opts: ServeOptions,
}

impl Default for ClusterOptions {
    fn default() -> Self {
        ClusterOptions {
            shards: 3,
            vnodes: DEFAULT_VNODES,
            workers_per_shard: 2,
            router_addr: "127.0.0.1:0".into(),
            registry_dir: None,
            serving_ref: "cluster-serving".into(),
            probe_interval: Duration::from_millis(100),
            probe_timeout: Duration::from_secs(2),
            eject_after: 2,
            readmit_probes: 3,
            shard_timeout: Duration::from_secs(10),
            retry: RetryPolicy {
                max_attempts: 3,
                ..RetryPolicy::default()
            },
            max_failover: usize::MAX,
            debug_hooks: false,
            shard_opts: ServeOptions::default(),
        }
    }
}

fn io_other(e: impl std::fmt::Display) -> std::io::Error {
    std::io::Error::other(e.to_string())
}

/// State shared by the router, the supervisor, and the [`Cluster`] handle.
pub(crate) struct ClusterState {
    /// Fixed-membership routing ring; ejection skips shards at lookup time
    /// instead of editing the ring, so returning shards get their exact
    /// old keys back.
    pub(crate) ring: HashRing,
    pub(crate) shards: Vec<Arc<ShardRuntime>>,
    pub(crate) opts: ClusterOptions,
    pub(crate) router_addr: SocketAddr,
    /// Content hash of the registry-distributed serving checkpoint, when
    /// a registry is in use.
    pub(crate) serving_hash: Option<u64>,
    shutdown: AtomicBool,
    /// Requests the router relayed to a shard successfully.
    pub(crate) routed: AtomicU64,
    /// Relayed requests answered by a shard other than the ring owner.
    pub(crate) failovers: AtomicU64,
    /// Requests no shard could answer.
    pub(crate) rejected: AtomicU64,
}

impl ClusterState {
    pub(crate) fn draining(&self) -> bool {
        self.shutdown.load(Ordering::SeqCst)
    }

    /// Flips the drain flag; the loopback connect wakes the polling router
    /// acceptor on platforms where nonblocking listeners are unavailable.
    pub(crate) fn begin_shutdown(&self) {
        if !self.shutdown.swap(true, Ordering::SeqCst) {
            let _ = TcpStream::connect_timeout(&self.router_addr, Duration::from_secs(1));
        }
    }

    pub(crate) fn shard(&self, id: u32) -> Option<&Arc<ShardRuntime>> {
        self.shards.get(id as usize)
    }

    fn shard_serve_opts(&self, id: u32) -> ServeOptions {
        shard_serve_opts(&self.opts, id)
    }

    /// Gracefully removes a shard from rotation: routing stops first, then
    /// the backend drains. `killed` marks the test-hook variant, which is
    /// identical mechanically (in-process threads cannot be aborted) but
    /// recorded distinctly in `status`.
    pub(crate) fn remove_shard(&self, id: u32, killed: bool) -> Result<(), String> {
        let shard = self.shard(id).ok_or_else(|| format!("no shard {id}"))?;
        let server = shard
            .take_server()
            .ok_or_else(|| format!("shard {id} is not running"))?;
        shard.mark_leaving(killed);
        server.request_shutdown();
        // The drain cascade can take a few poll ticks; finish it off the
        // router's request path.
        let _ = thread::Builder::new()
            .name(format!("nrpm-cluster-reap-{id}"))
            .spawn(move || {
                let _ = server.join();
            });
        Ok(())
    }

    /// Restarts a drained/killed shard on a fresh ephemeral port, serving
    /// the same store (same checkpoint, same epoch counter). It returns as
    /// `Ejected` and must pass the supervisor's probation before traffic
    /// comes back.
    pub(crate) fn revive_shard(&self, id: u32) -> Result<SocketAddr, String> {
        let shard = self.shard(id).ok_or_else(|| format!("no shard {id}"))?;
        if shard.has_server() {
            return Err(format!("shard {id} is already running"));
        }
        let server = Server::start(
            "127.0.0.1:0",
            shard.store.clone(),
            self.shard_serve_opts(id),
        )
        .map_err(|e| format!("cannot restart shard {id}: {e}"))?;
        let addr = server.addr();
        shard.mark_revived(addr, server);
        Ok(addr)
    }
}

fn shard_serve_opts(opts: &ClusterOptions, id: u32) -> ServeOptions {
    ServeOptions {
        workers: opts.workers_per_shard.max(1),
        shard_id: Some(u64::from(id)),
        ..opts.shard_opts.clone()
    }
}

/// A running sharded serving tier. Dropping the handle does **not** stop
/// it; call [`Cluster::request_shutdown`] (or send the router a `shutdown`
/// request) and then [`Cluster::join`].
pub struct Cluster {
    state: Arc<ClusterState>,
    router: Option<JoinHandle<()>>,
    supervisor: Option<JoinHandle<()>>,
}

impl Cluster {
    /// Publishes `network` as the serving checkpoint (through the registry
    /// when one is configured), starts every shard and the router, and
    /// begins supervising.
    pub fn launch(network: Network, opts: ClusterOptions) -> std::io::Result<Cluster> {
        let count = opts.shards.max(1) as u32;
        let (serving_hash, shard_networks) = distribute_checkpoint(network, &opts, count)?;

        let mut shards = Vec::with_capacity(count as usize);
        for (i, net) in shard_networks.into_iter().enumerate() {
            let id = i as u32;
            let store =
                ModelStore::from_network(net, AdaptiveOptions::default()).map_err(io_other)?;
            let server = Server::start("127.0.0.1:0", store.clone(), shard_serve_opts(&opts, id))?;
            let addr = server.addr();
            shards.push(Arc::new(ShardRuntime::new(id, addr, store, server)));
        }

        let listener = TcpListener::bind(&opts.router_addr)?;
        let router_addr = listener.local_addr()?;
        let ring = HashRing::new(0..count, opts.vnodes);
        let state = Arc::new(ClusterState {
            ring,
            shards,
            opts,
            router_addr,
            serving_hash,
            shutdown: AtomicBool::new(false),
            routed: AtomicU64::new(0),
            failovers: AtomicU64::new(0),
            rejected: AtomicU64::new(0),
        });

        let router = {
            let state = Arc::clone(&state);
            thread::Builder::new()
                .name("nrpm-cluster-router".into())
                .spawn(move || crate::router::run_router(listener, &state))
                .expect("spawn router thread")
        };
        let supervisor = {
            let state = Arc::clone(&state);
            thread::Builder::new()
                .name("nrpm-cluster-supervisor".into())
                .spawn(move || run_supervisor(&state))
                .expect("spawn cluster supervisor thread")
        };

        Ok(Cluster {
            state,
            router: Some(router),
            supervisor: Some(supervisor),
        })
    }

    /// The router's bound address (resolves ephemeral ports).
    pub fn router_addr(&self) -> SocketAddr {
        self.state.router_addr
    }

    /// Shard count (fixed at launch).
    pub fn shards(&self) -> usize {
        self.state.shards.len()
    }

    /// A shard's current address, if the id exists.
    pub fn shard_addr(&self, id: u32) -> Option<SocketAddr> {
        self.state.shard(id).map(|s| s.addr())
    }

    /// A shard's store handle — tests use this to force checkpoint
    /// divergence with a direct hot-swap.
    pub fn shard_store(&self, id: u32) -> Option<ModelStore> {
        self.state.shard(id).map(|s| s.store.clone())
    }

    /// A shard's routing availability.
    pub fn shard_availability(&self, id: u32) -> Option<Availability> {
        self.state.shard(id).map(|s| s.availability())
    }

    /// Content hash of the registry-distributed serving checkpoint (`None`
    /// without a registry).
    pub fn serving_hash(&self) -> Option<u64> {
        self.state.serving_hash
    }

    /// Gracefully removes one shard from rotation (see
    /// [`ClusterState::remove_shard`]).
    pub fn drain_shard(&self, id: u32) -> Result<(), String> {
        self.state.remove_shard(id, false)
    }

    /// Abruptly removes one shard, as the `cluster_kill` test hook does.
    pub fn kill_shard(&self, id: u32) -> Result<(), String> {
        self.state.remove_shard(id, true)
    }

    /// Restarts a removed shard under probation rules.
    pub fn revive_shard(&self, id: u32) -> Result<SocketAddr, String> {
        self.state.revive_shard(id)
    }

    /// `true` once a drain has begun.
    pub fn draining(&self) -> bool {
        self.state.draining()
    }

    /// Begins a graceful drain of the router and every shard.
    pub fn request_shutdown(&self) {
        self.state.begin_shutdown();
    }

    /// Waits for the drain cascade: router, supervisor, then every shard.
    pub fn join(mut self) -> std::thread::Result<()> {
        if let Some(router) = self.router.take() {
            router.join()?;
        }
        if let Some(supervisor) = self.supervisor.take() {
            supervisor.join()?;
        }
        for shard in &self.state.shards {
            if let Some(server) = shard.take_server() {
                server.request_shutdown();
                server.join()?;
            }
        }
        Ok(())
    }
}

/// Publishes the serving checkpoint and produces each shard's copy of the
/// network. With a registry, every shard loads from its own synced
/// registry — the same object bytes, so every store computes the same
/// `checkpoint_hash`.
fn distribute_checkpoint(
    network: Network,
    opts: &ClusterOptions,
    count: u32,
) -> std::io::Result<(Option<u64>, Vec<Network>)> {
    let Some(dir) = &opts.registry_dir else {
        return Ok((None, vec![network; count as usize]));
    };
    let source = CheckpointRegistry::open(dir).map_err(io_other)?;
    let hash = source.put(&network).map_err(io_other)?;
    source.set_ref(&opts.serving_ref, hash).map_err(io_other)?;
    let mut networks = Vec::with_capacity(count as usize);
    for i in 0..count {
        let dest = CheckpointRegistry::open(dir.join("shards").join(format!("shard-{i}")))
            .map_err(io_other)?;
        source.sync_to(&dest, hash).map_err(io_other)?;
        networks.push(dest.get(hash).map_err(io_other)?);
    }
    Ok((Some(hash), networks))
}

/// Wire-polls every probed shard's `health` and `stats` each tick, driving
/// the eject/re-admit state machine and refreshing the router's per-shard
/// checkpoint-hash/epoch view.
fn run_supervisor(state: &Arc<ClusterState>) {
    while !state.draining() {
        for shard in &state.shards {
            if !shard.is_probed() {
                continue;
            }
            match probe_shard(shard.addr(), state.opts.probe_timeout) {
                Ok(polled) => {
                    *shard
                        .polled
                        .lock()
                        .unwrap_or_else(|poisoned| poisoned.into_inner()) = polled;
                    shard.note_probe_ok(state.opts.readmit_probes);
                }
                Err(_) => shard.note_probe_fail(state.opts.eject_after),
            }
        }
        thread::sleep(state.opts.probe_interval);
    }
}

/// One probe: `health` must answer ok and not be draining, then `stats`
/// yields the shard's checkpoint hash and adaptation epoch.
fn probe_shard(addr: SocketAddr, timeout: Duration) -> std::io::Result<PolledStats> {
    let mut client = Client::connect(addr, timeout)?;
    let health = client.health()?;
    if !is_ok(&health) || health.get("draining").and_then(Value::as_bool) == Some(true) {
        return Err(io_other("shard reports unhealthy or draining"));
    }
    let stats = client.stats()?;
    Ok(PolledStats {
        checkpoint_hash: stats
            .get("checkpoint_hash")
            .and_then(Value::as_str)
            .map(str::to_string),
        epoch: stats.get("epoch").and_then(Value::as_u64).unwrap_or(0),
    })
}
