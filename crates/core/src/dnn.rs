//! The DNN performance modeler (Sec. IV-D) and its transfer-learning
//! machinery (Sec. IV-E).
//!
//! Model identification is phrased as classification: the network receives
//! a preprocessed measurement line and predicts which of the 43 exponent
//! pairs `(i, j)` of the canonical PMNF set produced it. The top-3 classes
//! seed hypotheses whose coefficients are then fitted by linear regression;
//! cross-validation on SMAPE picks the winner — identical machinery to the
//! regression modeler, only the candidate generation differs. For
//! multi-parameter tasks each parameter is classified separately and the
//! per-parameter winners are combined additively and multiplicatively.

use crate::preprocess::{encode_line_with, PreprocessError, ValueScaling, NUM_INPUTS};
use nrpm_extrap::{
    combine_candidate_pairs, exponent_set, Aggregation, ExponentPair, MeasurementSet, ModelError,
    ModelingResult, NUM_CLASSES,
};
use nrpm_linalg::Matrix;
use nrpm_nn::{
    top_k_classes, Dataset, Network, NetworkConfig, OptimizerKind, QuantGate, QuantReport,
    QuantizedNetwork, TrainerOptions, ValidatedReport, ValidationOptions, WatchdogOptions,
};
use nrpm_synth::{generate_training_samples_seeded, TrainingSample, TrainingSpec};
use rand::rngs::StdRng;
use rand::{RngCore, SeedableRng};

/// Options of the DNN modeler.
#[derive(Debug, Clone)]
pub struct DnnOptions {
    /// Network architecture. Default: [`NetworkConfig::compact`]; switch to
    /// [`NetworkConfig::paper`] for full fidelity (see DESIGN.md).
    pub network: NetworkConfig,
    /// Pretraining data generation (random sequences, full noise range).
    pub pretrain_spec: TrainingSpec,
    /// Pretraining epochs.
    pub pretrain_epochs: usize,
    /// Domain-adaptation epochs (paper: one).
    pub adaptation_epochs: usize,
    /// Samples per class generated for domain adaptation (paper: 2000;
    /// default lower to keep retraining snappy — scale up via this knob).
    pub adaptation_samples_per_class: usize,
    /// Mini-batch size for both training phases.
    pub batch_size: usize,
    /// Optimizer for both training phases. The paper uses AdaMax; the
    /// default learning rate here (0.01) is tuned for the compact network
    /// and the smaller-than-paper training budgets of the harness.
    pub optimizer: OptimizerKind,
    /// How many top classes seed hypotheses (paper: 3).
    pub top_k: usize,
    /// RNG seed for reproducibility.
    pub seed: u64,
    /// Repetition aggregation.
    pub aggregation: Aggregation,
    /// CV-SMAPE tie tolerance for final selection.
    pub tie_tolerance: f64,
    /// Minimum distinct points per parameter line.
    pub min_points: usize,
    /// Input-value scaling of the preprocessing step (ablation knob; the
    /// default log-ratio encoding separates growth classes far better).
    pub encoding: ValueScaling,
    /// Worker threads for synthetic corpus generation and training. `0`
    /// (the default) resolves to the process-wide
    /// [`ThreadBudget`](nrpm_linalg::ThreadBudget), which honors the
    /// `NRPM_THREADS` environment variable. Results are bitwise identical
    /// at every thread count — this knob only changes speed.
    pub train_threads: usize,
    /// Serve inference through an int8-quantized copy of the network when
    /// the accuracy gate accepts it (see
    /// [`QuantizedNetwork::validated`](nrpm_nn::QuantizedNetwork)). The
    /// gate is re-run against a deterministic synthetic calibration batch
    /// after every (re)train; if it rejects — any argmax flip, or class
    /// probabilities drifting beyond [`Self::quant_gate`] — inference
    /// falls back to the f64 network. Training always runs in f64; this
    /// knob only affects the forward pass.
    pub quantize: bool,
    /// Accuracy thresholds for the quantization gate.
    pub quant_gate: QuantGate,
}

impl Default for DnnOptions {
    fn default() -> Self {
        DnnOptions {
            network: NetworkConfig::compact(),
            pretrain_spec: TrainingSpec {
                samples_per_class: 500,
                ..TrainingSpec::default()
            },
            pretrain_epochs: 20,
            adaptation_epochs: 1,
            adaptation_samples_per_class: 200,
            batch_size: 128,
            optimizer: OptimizerKind::AdaMax {
                learning_rate: 0.01,
                beta1: 0.9,
                beta2: 0.999,
            },
            top_k: 3,
            seed: 0xD77,
            aggregation: Aggregation::Median,
            tie_tolerance: 1e-6,
            min_points: 5,
            encoding: ValueScaling::default(),
            train_threads: 0,
            quantize: false,
            quant_gate: QuantGate::default(),
        }
    }
}

impl DnnOptions {
    /// Full paper fidelity: the 3.7 M-parameter architecture and 2000
    /// adaptation samples per class. Expect pretraining and adaptation to
    /// take minutes instead of seconds.
    pub fn paper_fidelity() -> Self {
        DnnOptions {
            network: NetworkConfig::paper(),
            adaptation_samples_per_class: 2000,
            ..Default::default()
        }
    }
}

/// Result of one coalesced classification pass over many lines
/// ([`DnnModeler::classify_lines_batch`]).
#[derive(Debug, Clone)]
pub struct BatchClassification {
    /// Per-line class-probability vectors; lines whose encoding failed
    /// carry the corresponding error instead.
    pub probabilities: Vec<Result<Vec<f64>, ModelError>>,
    /// Rows pushed through the network in the coalesced pass.
    pub rows: usize,
    /// Network forward passes issued: `1`, or `0` when every line was
    /// degenerate.
    pub forward_passes: usize,
    /// Whether the forward pass ran on the int8-quantized network (`false`
    /// on the f64 reference path — quantization off, gate-rejected, or no
    /// forward pass issued).
    pub quantized: bool,
}

/// Result of a batched modeling run ([`DnnModeler::model_batch`]).
#[derive(Debug, Clone)]
pub struct DnnBatch {
    /// Per-set modeling results, in input order.
    pub results: Vec<Result<ModelingResult, ModelError>>,
    /// Measurement lines classified in the coalesced forward pass.
    pub lines: usize,
    /// Network forward passes issued for the whole batch (`0` or `1`).
    pub forward_passes: usize,
    /// Whether the coalesced forward pass ran on the int8-quantized
    /// network.
    pub quantized: bool,
}

/// The DNN modeler: a pretrained classifier plus the hypothesis-fitting
/// pipeline shared with Extra-P.
#[derive(Debug, Clone)]
pub struct DnnModeler {
    opts: DnnOptions,
    network: Network,
    rng: StdRng,
    /// The gated int8 snapshot plus its calibration report, present only
    /// when `opts.quantize` is set and the gate accepted. Rebuilt after
    /// every weight mutation.
    quant: Option<(QuantizedNetwork, QuantReport)>,
    /// The report of the last gate *rejection* (quantization requested but
    /// serving fell back to f64). Cleared when the gate accepts.
    quant_rejection: Option<QuantReport>,
}

impl DnnModeler {
    /// Builds and pretrains a modeler on synthetic data.
    pub fn pretrained(opts: DnnOptions) -> Self {
        let mut rng = StdRng::seed_from_u64(opts.seed);
        let mut network = Network::new(&opts.network, opts.seed);
        let samples = generate_training_samples_seeded(
            &opts.pretrain_spec,
            rng.next_u64(),
            opts.train_threads,
        );
        let data = dataset_from_samples_with(&samples, opts.encoding);
        // Guarded training: synthetic pretraining data is benign by
        // construction, but the watchdog makes divergence (NaN loss,
        // exploding gradients) a recoverable event instead of a poisoned
        // network.
        network
            .train_guarded(
                &data,
                &TrainerOptions {
                    epochs: opts.pretrain_epochs,
                    batch_size: opts.batch_size,
                    optimizer: opts.optimizer,
                    shuffle_seed: opts.seed ^ 0xA5A5,
                    threads: opts.train_threads,
                    ..Default::default()
                },
                &WatchdogOptions::default(),
            )
            .expect("pretraining dataset is compatible by construction");
        let mut modeler = DnnModeler {
            opts,
            network,
            rng,
            quant: None,
            quant_rejection: None,
        };
        modeler.refresh_quant();
        modeler
    }

    /// Wraps an already-trained network (e.g. loaded from disk).
    pub fn from_network(opts: DnnOptions, network: Network) -> Self {
        assert_eq!(
            network.input_dim(),
            NUM_INPUTS,
            "network must take 11 inputs"
        );
        assert_eq!(
            network.num_classes(),
            NUM_CLASSES,
            "network must predict 43 classes"
        );
        let rng = StdRng::seed_from_u64(opts.seed);
        let mut modeler = DnnModeler {
            opts,
            network,
            rng,
            quant: None,
            quant_rejection: None,
        };
        modeler.refresh_quant();
        modeler
    }

    /// (Re)builds the quantized inference snapshot behind the accuracy
    /// gate. Runs after construction and after every weight mutation; a
    /// no-op unless [`DnnOptions::quantize`] is set. The calibration batch
    /// is synthesized from a seed derived only from `opts.seed` — it never
    /// consumes `self.rng`, so enabling quantization cannot perturb the
    /// training/adaptation RNG stream.
    fn refresh_quant(&mut self) {
        self.quant = None;
        self.quant_rejection = None;
        if !self.opts.quantize {
            return;
        }
        let spec = TrainingSpec {
            samples_per_class: 4,
            noise_range: (0.0, 0.4),
            ..Default::default()
        };
        let samples = generate_training_samples_seeded(
            &spec,
            self.opts.seed ^ 0x0CA1_1B8A,
            self.opts.train_threads,
        );
        let calib = dataset_from_samples_with(&samples, self.opts.encoding);
        match QuantizedNetwork::validated(&self.network, calib.inputs(), &self.opts.quant_gate) {
            Ok((q, report)) => self.quant = Some((q, report)),
            Err(nrpm_nn::QuantError::GateRejected(report)) => {
                self.quant_rejection = Some(report);
            }
            Err(nrpm_nn::QuantError::Unsupported(_)) => {}
        }
    }

    /// Whether batched inference currently runs on the int8 path.
    pub fn quantized(&self) -> bool {
        self.quant.is_some()
    }

    /// The calibration report of the active quantized snapshot, when the
    /// gate accepted.
    pub fn quant_report(&self) -> Option<&QuantReport> {
        self.quant.as_ref().map(|(_, r)| r)
    }

    /// The calibration report of the last gate rejection: quantization was
    /// requested, but inference fell back to the f64 reference.
    pub fn quant_rejection(&self) -> Option<&QuantReport> {
        self.quant_rejection.as_ref()
    }

    /// The underlying network (for persistence or inspection).
    pub fn network(&self) -> &Network {
        &self.network
    }

    /// The configured options.
    pub fn options(&self) -> &DnnOptions {
        &self.opts
    }

    /// Retrains the network on synthetic data from an explicit spec. This
    /// is the raw domain-adaptation primitive; [`Self::adapt_to_task`]
    /// derives the spec from a concrete measurement set. The sweep harness
    /// uses it directly to adapt once per noise level instead of once per
    /// function (see DESIGN.md).
    ///
    /// Returns the number of training samples used.
    pub fn adapt_with_spec(&mut self, spec: &TrainingSpec) -> usize {
        let samples =
            generate_training_samples_seeded(spec, self.rng.next_u64(), self.opts.train_threads);
        let data = dataset_from_samples_with(&samples, self.opts.encoding);
        self.network
            .train_guarded(
                &data,
                &TrainerOptions {
                    epochs: self.opts.adaptation_epochs,
                    batch_size: self.opts.batch_size,
                    optimizer: self.opts.optimizer,
                    shuffle_seed: self.opts.seed ^ 0x5A5A,
                    threads: self.opts.train_threads,
                    ..Default::default()
                },
                &WatchdogOptions::default(),
            )
            .expect("adaptation dataset is compatible by construction");
        self.refresh_quant();
        data.len()
    }

    /// Like [`Self::adapt_with_spec`], but behind the validation gate of
    /// [`Network::train_validated`]: a holdout slice of the synthetic
    /// adaptation corpus judges the retrain, and the pre-adaptation
    /// weights are restored when training gives up or held-out accuracy
    /// regresses beyond the tolerance. This is the retrain entry the
    /// serving adaptation pipeline uses — a candidate that fails the gate
    /// never leaves this method as a changed network.
    pub fn adapt_with_spec_validated(
        &mut self,
        spec: &TrainingSpec,
        validation: &ValidationOptions,
    ) -> ValidatedReport {
        let samples =
            generate_training_samples_seeded(spec, self.rng.next_u64(), self.opts.train_threads);
        let data = dataset_from_samples_with(&samples, self.opts.encoding);
        let report = self
            .network
            .train_validated(
                &data,
                &TrainerOptions {
                    epochs: self.opts.adaptation_epochs,
                    batch_size: self.opts.batch_size,
                    optimizer: self.opts.optimizer,
                    shuffle_seed: self.opts.seed ^ 0x5A5A,
                    threads: self.opts.train_threads,
                    ..Default::default()
                },
                &WatchdogOptions::default(),
                validation,
            )
            .expect("adaptation dataset is compatible by construction");
        self.refresh_quant();
        report
    }

    /// Domain adaptation (Sec. IV-E): retrains the network on fresh
    /// synthetic data that mirrors the task at hand — its measurement
    /// positions per parameter, its repetition count, and the estimated
    /// noise range.
    ///
    /// Returns the number of training samples used.
    pub fn adapt_to_task(
        &mut self,
        set: &MeasurementSet,
        noise_range: (f64, f64),
    ) -> Result<usize, ModelError> {
        let m = set.num_params();
        if m == 0 {
            return Err(ModelError::NoParameters);
        }
        let repetitions = set
            .measurements()
            .iter()
            .map(|meas| meas.values.len())
            .max()
            .unwrap_or(1)
            .clamp(1, 5);
        let per_param_samples = (self.opts.adaptation_samples_per_class / m).max(8);

        let mut all_samples: Vec<TrainingSample> = Vec::new();
        for l in 0..m {
            let line = set.line(l, self.opts.aggregation);
            let xs: Vec<f64> = line.iter().map(|(x, _)| *x).collect();
            if xs.len() < 2 {
                continue;
            }
            let spec = TrainingSpec {
                samples_per_class: per_param_samples,
                sequence: Some(xs),
                noise_range: (
                    noise_range.0.max(0.0),
                    noise_range.1.max(noise_range.0.max(0.0)),
                ),
                repetitions,
                aggregation: self.opts.aggregation,
                ..Default::default()
            };
            all_samples.extend(generate_training_samples_seeded(
                &spec,
                self.rng.next_u64(),
                self.opts.train_threads,
            ));
        }
        if all_samples.is_empty() {
            return Err(ModelError::NoViableHypothesis);
        }
        let data = dataset_from_samples_with(&all_samples, self.opts.encoding);
        self.network
            .train_guarded(
                &data,
                &TrainerOptions {
                    epochs: self.opts.adaptation_epochs,
                    batch_size: self.opts.batch_size,
                    optimizer: self.opts.optimizer,
                    shuffle_seed: self.opts.seed ^ 0x5A5A,
                    threads: self.opts.train_threads,
                    ..Default::default()
                },
                &WatchdogOptions::default(),
            )
            .expect("adaptation dataset is compatible by construction");
        self.refresh_quant();
        Ok(data.len())
    }

    /// Classifies a single-parameter measurement line and returns the top-k
    /// exponent pairs, most probable first.
    pub fn predict_pairs(&self, xs: &[f64], ys: &[f64]) -> Result<Vec<ExponentPair>, ModelError> {
        let probs = self.class_probabilities(xs, ys)?;
        let set = exponent_set();
        Ok(top_k_classes(&probs, self.opts.top_k)
            .into_iter()
            .map(|class| set.pair(class))
            .collect())
    }

    /// The raw class-probability vector for one line.
    pub fn class_probabilities(&self, xs: &[f64], ys: &[f64]) -> Result<Vec<f64>, ModelError> {
        let input = encode_line_with(xs, ys, self.opts.encoding).map_err(map_preprocess_error)?;
        Ok(self
            .network
            .predict_proba_one(&input)
            .expect("input dimension is NUM_INPUTS by construction"))
    }

    /// Classifies several *parallel* lines of the same parameter and
    /// returns the top-k pairs of the averaged probability distribution.
    /// Parallel lines (a `5^m` grid has `5^(m-1)` per parameter) are
    /// independent noisy views of the same behaviour; averaging the
    /// network's posteriors is the ensembling counterpart of the
    /// regression modeler's mean-CV ranking.
    pub fn predict_pairs_over_lines(
        &self,
        lines: &[Vec<(f64, f64)>],
    ) -> Result<Vec<ExponentPair>, ModelError> {
        let mut avg = vec![0.0f64; NUM_CLASSES];
        let mut used = 0usize;
        let mut last_err = None;
        for line in lines {
            let xs: Vec<f64> = line.iter().map(|(x, _)| *x).collect();
            let ys: Vec<f64> = line.iter().map(|(_, y)| *y).collect();
            match self.class_probabilities(&xs, &ys) {
                Ok(probs) => {
                    for (a, p) in avg.iter_mut().zip(probs.iter()) {
                        *a += p;
                    }
                    used += 1;
                }
                Err(e) => last_err = Some(e),
            }
        }
        if used == 0 {
            return Err(last_err.unwrap_or(ModelError::NoViableHypothesis));
        }
        let set = exponent_set();
        Ok(top_k_classes(&avg, self.opts.top_k)
            .into_iter()
            .map(|class| set.pair(class))
            .collect())
    }

    /// Classifies many measurement lines in **one** coalesced forward pass:
    /// every encodable line becomes one row of a single input matrix, so the
    /// whole batch flows through one blocked matrix-multiply chain in
    /// `nrpm-linalg` instead of one tiny per-line product per request.
    ///
    /// Per-row results are bitwise identical to per-line
    /// [`Self::class_probabilities`] calls — rows of a matmul are
    /// accumulated independently and in the same order — which is what
    /// makes the serving layer's batched path a pure throughput
    /// optimization.
    pub fn classify_lines_batch(&self, lines: &[Vec<(f64, f64)>]) -> BatchClassification {
        let mut encoded: Vec<Vec<f64>> = Vec::with_capacity(lines.len());
        // For each line: index into `encoded`, or the encoding error.
        let mut slots: Vec<Result<usize, ModelError>> = Vec::with_capacity(lines.len());
        for line in lines {
            let xs: Vec<f64> = line.iter().map(|(x, _)| *x).collect();
            let ys: Vec<f64> = line.iter().map(|(_, y)| *y).collect();
            match encode_line_with(&xs, &ys, self.opts.encoding) {
                Ok(input) => {
                    slots.push(Ok(encoded.len()));
                    encoded.push(input);
                }
                Err(e) => slots.push(Err(map_preprocess_error(e))),
            }
        }
        if encoded.is_empty() {
            return BatchClassification {
                probabilities: slots.into_iter().map(|s| s.map(|_| Vec::new())).collect(),
                rows: 0,
                forward_passes: 0,
                quantized: false,
            };
        }
        let rows = encoded.len();
        let x = Matrix::from_row_vecs(&encoded, NUM_INPUTS)
            .expect("encoded lines all have NUM_INPUTS features");
        // The gated int8 snapshot serves the batch when present; the gate
        // guarantees it never flips a predicted class on calibration data,
        // and any weight mutation rebuilds or drops it (`refresh_quant`).
        let (probs, quantized) = match &self.quant {
            Some((q, _)) => (
                q.predict_proba(&x)
                    .expect("input dimension is NUM_INPUTS by construction"),
                true,
            ),
            None => (
                self.network
                    .predict_proba(&x)
                    .expect("input dimension is NUM_INPUTS by construction"),
                false,
            ),
        };
        let probabilities = slots
            .into_iter()
            .map(|slot| slot.map(|row| probs.row(row).to_vec()))
            .collect();
        BatchClassification {
            probabilities,
            rows,
            forward_passes: 1,
            quantized,
        }
    }

    /// Models several kernels at once, coalescing all their DNN forward
    /// passes into a single batched inference (see
    /// [`Self::classify_lines_batch`]). Candidate combination and
    /// coefficient fitting still run per kernel; only the network inference
    /// is batched. Results are identical to calling [`Self::model`] on each
    /// set individually.
    pub fn model_batch(&self, sets: &[&MeasurementSet]) -> DnnBatch {
        // Phase 1: extract every parameter's primary line from every set.
        let mut lines: Vec<Vec<(f64, f64)>> = Vec::new();
        // Per set: the range of `lines` it owns, or an early error.
        let mut plans: Vec<Result<std::ops::Range<usize>, ModelError>> =
            Vec::with_capacity(sets.len());
        for set in sets {
            plans.push(self.plan_lines(set, &mut lines));
        }

        // Phase 2: one coalesced forward pass for the whole batch.
        let classified = self.classify_lines_batch(&lines);

        // Phase 3: per-set candidate combination and coefficient fitting.
        let exponents = exponent_set();
        let results = plans
            .into_iter()
            .zip(sets)
            .map(|(plan, set)| {
                let range = plan?;
                let mut per_param = Vec::with_capacity(range.len());
                for idx in range {
                    let probs = match &classified.probabilities[idx] {
                        Ok(p) => p,
                        Err(e) => return Err(e.clone()),
                    };
                    let mut pairs: Vec<ExponentPair> = top_k_classes(probs, self.opts.top_k)
                        .into_iter()
                        .map(|class| exponents.pair(class))
                        .collect();
                    if !pairs.contains(&ExponentPair::CONSTANT) {
                        pairs.push(ExponentPair::CONSTANT);
                    }
                    per_param.push(pairs);
                }
                combine_candidate_pairs(
                    set,
                    &per_param,
                    self.opts.aggregation,
                    self.opts.tie_tolerance,
                )
            })
            .collect();
        DnnBatch {
            results,
            lines: classified.rows,
            forward_passes: classified.forward_passes,
            quantized: classified.quantized,
        }
    }

    /// Pushes one line per parameter of `set` onto `lines` and returns the
    /// owned index range, or the error that makes the whole set unmodelable.
    fn plan_lines(
        &self,
        set: &MeasurementSet,
        lines: &mut Vec<Vec<(f64, f64)>>,
    ) -> Result<std::ops::Range<usize>, ModelError> {
        let m = set.num_params();
        if m == 0 {
            return Err(ModelError::NoParameters);
        }
        let start = lines.len();
        for l in 0..m {
            let line = set.line(l, self.opts.aggregation);
            if line.len() < self.opts.min_points {
                lines.truncate(start);
                return Err(ModelError::TooFewPoints {
                    param: l,
                    found: line.len(),
                    required: self.opts.min_points,
                });
            }
            lines.push(line);
        }
        Ok(start..lines.len())
    }

    /// Full modeling run: classify each parameter's line, construct the
    /// combined hypothesis space from the top-k predictions, fit the
    /// coefficients by regression, select by cross-validated SMAPE.
    pub fn model(&self, set: &MeasurementSet) -> Result<ModelingResult, ModelError> {
        let m = set.num_params();
        if m == 0 {
            return Err(ModelError::NoParameters);
        }
        let mut per_param = Vec::with_capacity(m);
        for l in 0..m {
            // Classify the primary line (smallest fixed coordinates) — the
            // same rationale as the regression modeler's ranking: on lines
            // with large fixed coordinates the other parameters' offsets
            // dominate and the posterior collapses toward "constant".
            // `predict_pairs_over_lines` stays available for ensembling.
            let line = set.line(l, self.opts.aggregation);
            if line.len() < self.opts.min_points {
                return Err(ModelError::TooFewPoints {
                    param: l,
                    found: line.len(),
                    required: self.opts.min_points,
                });
            }
            let mut pairs = self.predict_pairs_over_lines(std::slice::from_ref(&line))?;
            // The constant pair must always be reachable: if the network is
            // confident about growth but the data is flat, the combination
            // step would otherwise be forced into a spurious term.
            if !pairs.contains(&ExponentPair::CONSTANT) {
                pairs.push(ExponentPair::CONSTANT);
            }
            per_param.push(pairs);
        }
        combine_candidate_pairs(
            set,
            &per_param,
            self.opts.aggregation,
            self.opts.tie_tolerance,
        )
    }
}

fn map_preprocess_error(e: PreprocessError) -> ModelError {
    match e {
        PreprocessError::TooFewPoints(found) => ModelError::TooFewPoints {
            param: 0,
            found,
            required: 2,
        },
        PreprocessError::InvalidCoordinate(value) => {
            ModelError::NonPositiveParameter { param: 0, value }
        }
        PreprocessError::InvalidValue(_) => ModelError::NonFiniteData,
    }
}

/// Converts raw training samples into a network-ready dataset by encoding
/// every line with the default scaling; samples whose encoding fails
/// (degenerate lines) are skipped.
pub fn dataset_from_samples(samples: &[TrainingSample]) -> Dataset {
    dataset_from_samples_with(samples, ValueScaling::default())
}

/// [`dataset_from_samples`] with an explicit value-scaling strategy.
pub fn dataset_from_samples_with(samples: &[TrainingSample], scaling: ValueScaling) -> Dataset {
    let mut rows: Vec<Vec<f64>> = Vec::with_capacity(samples.len());
    let mut labels: Vec<usize> = Vec::with_capacity(samples.len());
    for s in samples {
        if let Ok(input) = encode_line_with(&s.xs, &s.ys, scaling) {
            rows.push(input);
            labels.push(s.class);
        }
    }
    let mut inputs = Matrix::zeros(rows.len(), NUM_INPUTS);
    for (r, row) in rows.iter().enumerate() {
        inputs.row_mut(r).copy_from_slice(row);
    }
    Dataset::new(inputs, labels, NUM_CLASSES).expect("encoded samples are consistent")
}

#[cfg(test)]
mod tests {
    use super::*;
    use nrpm_synth::generate_training_samples;

    use std::sync::OnceLock;

    /// A mid-sized configuration: strong enough to classify clean lines
    /// reliably, small enough to pretrain in a few seconds.
    fn tiny_opts() -> DnnOptions {
        DnnOptions {
            network: NetworkConfig::new(&[NUM_INPUTS, 128, 64, NUM_CLASSES]),
            pretrain_spec: TrainingSpec {
                samples_per_class: 200,
                noise_range: (0.0, 0.5),
                ..Default::default()
            },
            pretrain_epochs: 20,
            adaptation_samples_per_class: 40,
            seed: 3,
            ..Default::default()
        }
    }

    /// Pretraining is the expensive step; share one modeler across tests.
    fn shared_modeler() -> &'static DnnModeler {
        static MODELER: OnceLock<DnnModeler> = OnceLock::new();
        MODELER.get_or_init(|| DnnModeler::pretrained(tiny_opts()))
    }

    fn line_set(f: impl Fn(f64) -> f64, xs: &[f64]) -> MeasurementSet {
        let mut set = MeasurementSet::new(1);
        for &x in xs {
            set.add(&[x], f(x));
        }
        set
    }

    #[test]
    fn dataset_from_samples_encodes_and_labels() {
        let samples = vec![
            TrainingSample {
                xs: vec![2.0, 4.0, 8.0, 16.0, 32.0],
                ys: vec![2.0, 4.0, 8.0, 16.0, 32.0],
                class: 7,
                noise_level: 0.0,
            },
            TrainingSample {
                // degenerate: only one point after dedup -> skipped
                xs: vec![2.0],
                ys: vec![1.0],
                class: 3,
                noise_level: 0.0,
            },
        ];
        let data = dataset_from_samples(&samples);
        assert_eq!(data.len(), 1);
        assert_eq!(data.labels(), &[7]);
        assert_eq!(data.num_features(), NUM_INPUTS);
        assert_eq!(data.num_classes(), NUM_CLASSES);
    }

    #[test]
    fn pretrained_modeler_learns_something() {
        let modeler = shared_modeler();
        // Evaluate on a fresh clean sample set: top-3 accuracy must beat
        // chance (3/43 ~ 7%) by a wide margin.
        let mut rng = StdRng::seed_from_u64(99);
        let spec = TrainingSpec {
            samples_per_class: 10,
            noise_range: (0.0, 0.0),
            ..Default::default()
        };
        let eval = dataset_from_samples(&generate_training_samples(&spec, &mut rng));
        let top3 = modeler.network().top_k_accuracy(&eval, 3).unwrap();
        // Chance is 3/43 ~ 7 %; the shared test network is deliberately
        // small, so the bar is "clearly learned", not "paper quality".
        assert!(top3 > 0.25, "top-3 accuracy {top3} barely beats chance");
    }

    #[test]
    fn predict_pairs_returns_top_k_distinct_pairs() {
        let modeler = shared_modeler();
        let xs = [4.0, 8.0, 16.0, 32.0, 64.0];
        let ys: Vec<f64> = xs.iter().map(|x| 3.0 * x).collect();
        let pairs = modeler.predict_pairs(&xs, &ys).unwrap();
        assert_eq!(pairs.len(), 3);
        let mut dedup = pairs.clone();
        dedup.dedup_by(|a, b| a == b);
        assert_eq!(dedup.len(), 3, "top-k classes must be distinct");
    }

    #[test]
    fn model_recovers_clean_linear_scaling() {
        let modeler = shared_modeler();
        let set = line_set(|x| 5.0 + 2.0 * x, &[4.0, 8.0, 16.0, 32.0, 64.0]);
        let result = modeler.model(&set).unwrap();
        // Even if the network's top guess is off, the CV re-fit over the
        // top-3 + constant candidates must produce a model that fits well.
        assert!(
            result.cv_smape < 5.0,
            "cv = {}, model = {}",
            result.cv_smape,
            result.model
        );
    }

    #[test]
    fn model_rejects_too_few_points() {
        let modeler = shared_modeler();
        let set = line_set(|x| x, &[2.0, 4.0, 8.0]);
        assert!(matches!(
            modeler.model(&set),
            Err(ModelError::TooFewPoints { .. })
        ));
    }

    #[test]
    fn line_ensembling_returns_top_k_pairs() {
        let modeler = shared_modeler();
        // Three parallel noisy views of the same linear behaviour.
        let lines: Vec<Vec<(f64, f64)>> = (0..3)
            .map(|i| {
                let scale = 1.0 + i as f64 * 0.5;
                [4.0f64, 8.0, 16.0, 32.0, 64.0]
                    .iter()
                    .map(|&x| (x, scale * (1.0 + 2.0 * x)))
                    .collect()
            })
            .collect();
        let pairs = modeler.predict_pairs_over_lines(&lines).unwrap();
        assert_eq!(pairs.len(), 3);
        // Ensembled prediction must agree with the single-line prediction
        // when all lines say the same thing.
        let single = modeler
            .predict_pairs(
                &[4.0, 8.0, 16.0, 32.0, 64.0],
                &[9.0, 17.0, 33.0, 65.0, 129.0],
            )
            .unwrap();
        assert_eq!(pairs[0], single[0]);
    }

    #[test]
    fn line_ensembling_skips_degenerate_lines() {
        let modeler = shared_modeler();
        let good: Vec<(f64, f64)> = [4.0f64, 8.0, 16.0, 32.0, 64.0]
            .iter()
            .map(|&x| (x, 3.0 * x))
            .collect();
        let degenerate = vec![(4.0, 1.0)]; // single point: encoder rejects
        let pairs = modeler
            .predict_pairs_over_lines(&[degenerate.clone(), good])
            .unwrap();
        assert_eq!(pairs.len(), 3);
        // All lines degenerate -> error.
        assert!(modeler.predict_pairs_over_lines(&[degenerate]).is_err());
    }

    #[test]
    fn batched_classification_matches_per_line_calls_bitwise() {
        let modeler = shared_modeler();
        let xs = [4.0, 8.0, 16.0, 32.0, 64.0];
        let lines: Vec<Vec<(f64, f64)>> = vec![
            xs.iter().map(|&x| (x, 3.0 * x)).collect(),
            xs.iter().map(|&x| (x, 1.0 + 0.5 * x * x)).collect(),
            vec![(4.0, 1.0)], // degenerate: single point
            xs.iter().map(|&x| (x, 7.0)).collect(),
        ];
        let batch = modeler.classify_lines_batch(&lines);
        assert_eq!(batch.forward_passes, 1, "one coalesced pass");
        assert_eq!(batch.rows, 3, "degenerate lines are not encoded");
        for (line, batched) in lines.iter().zip(&batch.probabilities) {
            let xs: Vec<f64> = line.iter().map(|(x, _)| *x).collect();
            let ys: Vec<f64> = line.iter().map(|(_, y)| *y).collect();
            match (modeler.class_probabilities(&xs, &ys), batched) {
                (Ok(single), Ok(b)) => {
                    assert_eq!(single.len(), b.len());
                    for (s, v) in single.iter().zip(b) {
                        assert_eq!(
                            s.to_bits(),
                            v.to_bits(),
                            "probabilities must be bitwise equal"
                        );
                    }
                }
                (Err(_), Err(_)) => {}
                (s, b) => panic!("batched/sequential disagree: {s:?} vs {b:?}"),
            }
        }
    }

    #[test]
    fn all_degenerate_batch_issues_no_forward_pass() {
        let modeler = shared_modeler();
        let batch = modeler.classify_lines_batch(&[vec![(4.0, 1.0)], vec![(8.0, 2.0)]]);
        assert_eq!(batch.forward_passes, 0);
        assert_eq!(batch.rows, 0);
        assert!(batch.probabilities.iter().all(|p| p.is_err()));
    }

    #[test]
    fn model_batch_matches_sequential_modeling() {
        let modeler = shared_modeler();
        let xs = [4.0, 8.0, 16.0, 32.0, 64.0];
        let sets = [
            line_set(|x| 5.0 + 2.0 * x, &xs),
            line_set(|x| 1.0 + 0.25 * x * x, &xs),
            line_set(|x| x, &[2.0, 4.0, 8.0]), // too few points
        ];
        let refs: Vec<&MeasurementSet> = sets.iter().collect();
        let batch = modeler.model_batch(&refs);
        assert_eq!(batch.forward_passes, 1);
        assert_eq!(batch.lines, 2, "the too-few-points set contributes no line");
        for (set, batched) in sets.iter().zip(&batch.results) {
            match (modeler.model(set), batched) {
                (Ok(single), Ok(b)) => {
                    assert_eq!(single.model.to_string(), b.model.to_string());
                    assert_eq!(single.cv_smape.to_bits(), b.cv_smape.to_bits());
                    assert_eq!(single.fit_smape.to_bits(), b.fit_smape.to_bits());
                }
                (Err(se), Err(be)) => assert_eq!(&se, be),
                (s, b) => panic!("batched/sequential disagree: {s:?} vs {b:?}"),
            }
        }
    }

    #[test]
    fn adaptation_runs_and_reports_sample_count() {
        let mut modeler = shared_modeler().clone();
        let set = line_set(|x| 1.0 + x, &[8.0, 64.0, 512.0, 4096.0, 32768.0]);
        let n = modeler.adapt_to_task(&set, (0.05, 0.2)).unwrap();
        assert!(n >= 8 * NUM_CLASSES, "adaptation used only {n} samples");
        // The modeler must still work after adaptation.
        assert!(modeler.model(&set).is_ok());
    }

    #[test]
    fn quantized_modeler_gates_and_preserves_decisions() {
        let base = shared_modeler();
        let opts = DnnOptions {
            quantize: true,
            ..tiny_opts()
        };
        let q = DnnModeler::from_network(opts, base.network().clone());
        // The gate decision is always recorded one way or the other.
        assert!(q.quantized() != q.quant_rejection().is_some());
        if let Some(report) = q.quant_report() {
            assert_eq!(report.argmax_flips, 0, "gate admits no argmax flips");
            assert!(report.calib_rows > 0);
        }
        let xs = [4.0, 8.0, 16.0, 32.0, 64.0];
        let lines: Vec<Vec<(f64, f64)>> = vec![
            xs.iter().map(|&x| (x, 3.0 * x)).collect(),
            xs.iter().map(|&x| (x, 1.0 + 0.5 * x * x)).collect(),
            xs.iter().map(|&x| (x, 7.0)).collect(),
        ];
        let quant_batch = q.classify_lines_batch(&lines);
        assert_eq!(quant_batch.quantized, q.quantized());
        let ref_batch = base.classify_lines_batch(&lines);
        assert!(!ref_batch.quantized, "quantization defaults off");
        let top = |p: &[f64]| (0..p.len()).fold(0, |best, i| if p[i] > p[best] { i } else { best });
        for (a, b) in quant_batch
            .probabilities
            .iter()
            .zip(&ref_batch.probabilities)
        {
            let (a, b) = (a.as_ref().unwrap(), b.as_ref().unwrap());
            assert_eq!(top(a), top(b), "served class must not change");
        }
    }

    #[test]
    fn adaptation_rebuilds_the_quantized_snapshot() {
        let base = shared_modeler();
        let opts = DnnOptions {
            quantize: true,
            ..tiny_opts()
        };
        let mut q = DnnModeler::from_network(opts, base.network().clone());
        let before = q.quantized();
        let set = line_set(|x| 1.0 + x, &[8.0, 64.0, 512.0, 4096.0, 32768.0]);
        q.adapt_to_task(&set, (0.05, 0.2)).unwrap();
        // After retraining the gate re-ran against the new weights.
        assert!(q.quantized() != q.quant_rejection().is_some());
        let _ = before;
        assert!(q.model(&set).is_ok());
    }

    #[test]
    fn from_network_validates_shape() {
        let net = Network::new(&NetworkConfig::new(&[NUM_INPUTS, 8, NUM_CLASSES]), 1);
        let m = DnnModeler::from_network(tiny_opts(), net.clone());
        assert_eq!(m.network().num_classes(), NUM_CLASSES);
    }

    #[test]
    #[should_panic(expected = "11 inputs")]
    fn from_network_rejects_wrong_input_dim() {
        let net = Network::new(&NetworkConfig::new(&[5, 8, NUM_CLASSES]), 1);
        let _ = DnnModeler::from_network(tiny_opts(), net);
    }
}
