//! The concurrent serving loop: acceptor, per-connection readers, and a
//! worker pool over a shared job queue.
//!
//! ## Threading model
//!
//! - One **acceptor** thread owns the [`TcpListener`] and spawns one
//!   reader thread per connection.
//! - Each **connection** thread parses newline-delimited requests, answers
//!   `health`/`stats`/`shutdown` inline, and hands `model`/`batch` work to
//!   the pool through an [`mpsc`] queue, waiting for the reply with the
//!   request's deadline.
//! - **Worker** threads each own an [`AdaptiveModeler`] warmed from the
//!   shared [`ModelStore`] — weights are loaded and validated once, then
//!   cloned per worker, so adaptation in one worker can never bleed into
//!   another.
//!
//! ## Graceful drain
//!
//! A `shutdown` request (or [`Server::request_shutdown`]) flips a shared
//! flag and wakes the acceptor with a loopback connect. The acceptor stops
//! accepting and joins its connection threads; connections finish the
//! request in flight, refuse new modeling work with `shutting_down`, and
//! close; dropping the last job sender lets every worker drain the queue
//! and exit. [`Server::join`] observes the whole cascade.

use crate::metrics::{ErrorClass, Metrics, RequestKind};
use crate::protocol::{
    batch_entry, error_line, ok_line, outcome_value, ErrorKind, Request, MAX_LINE_BYTES,
};
use crate::store::ModelStore;
use nrpm_core::adaptive::AdaptiveModeler;
use nrpm_extrap::MeasurementSet;
use serde::{Serialize, Value};
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{self, RecvTimeoutError};
use std::sync::{Arc, Mutex};
use std::thread::{self, JoinHandle};
use std::time::{Duration, Instant};

/// Tuning knobs of [`Server::start`].
#[derive(Debug, Clone)]
pub struct ServeOptions {
    /// Worker threads computing models.
    pub workers: usize,
    /// Run domain adaptation for single `model` requests. `batch` requests
    /// never adapt — a server cannot retrain per request without making
    /// results depend on request order. With adaptation on, each `model`
    /// request rebuilds its modeler from the warm base weights, so results
    /// stay order-independent at the cost of extra training time.
    pub adapt: bool,
    /// Deadline applied when a request carries no `timeout_ms`.
    pub default_timeout: Duration,
    /// How often blocked reads wake up to check the drain flag.
    pub poll_interval: Duration,
}

impl Default for ServeOptions {
    fn default() -> Self {
        ServeOptions {
            workers: 4,
            adapt: false,
            default_timeout: Duration::from_secs(30),
            poll_interval: Duration::from_millis(50),
        }
    }
}

/// State shared by every thread of one server.
struct Shared {
    store: ModelStore,
    metrics: Metrics,
    shutdown: AtomicBool,
    opts: ServeOptions,
    addr: SocketAddr,
}

impl Shared {
    fn draining(&self) -> bool {
        self.shutdown.load(Ordering::SeqCst)
    }

    /// Flips the drain flag and wakes the acceptor with a loopback connect.
    fn begin_shutdown(&self) {
        if !self.shutdown.swap(true, Ordering::SeqCst) {
            let _ = TcpStream::connect_timeout(&self.addr, Duration::from_secs(1));
        }
    }
}

/// One unit of modeling work handed to the pool.
struct Job {
    request: JobRequest,
    deadline: Instant,
    reply: mpsc::Sender<Reply>,
}

enum JobRequest {
    Model {
        set: Box<MeasurementSet>,
        at: Option<Vec<f64>>,
        id: Option<String>,
    },
    Batch {
        sets: Vec<MeasurementSet>,
        id: Option<String>,
    },
}

/// A computed response plus its class, so the connection thread records
/// exactly what it sends.
struct Reply {
    line: String,
    error: Option<ErrorClass>,
}

/// A running server. Dropping the handle does **not** stop the server; call
/// [`Server::request_shutdown`] (or send a `shutdown` request) and then
/// [`Server::join`].
pub struct Server {
    shared: Arc<Shared>,
    acceptor: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
}

impl Server {
    /// Binds `addr` (use port `0` for an ephemeral port), warms the worker
    /// pool from `store`, and starts serving in background threads.
    pub fn start(addr: &str, store: ModelStore, opts: ServeOptions) -> std::io::Result<Server> {
        let listener = TcpListener::bind(addr)?;
        let local = listener.local_addr()?;
        let workers = opts.workers.max(1);
        // `opts.adapt` is the single adaptation knob: align the store's
        // modeling options so per-worker modelers inherit it.
        let store = store.with_adaptation(opts.adapt);
        let shared = Arc::new(Shared {
            store,
            metrics: Metrics::new(),
            shutdown: AtomicBool::new(false),
            opts,
            addr: local,
        });

        let (job_tx, job_rx) = mpsc::channel::<Job>();
        let job_rx = Arc::new(Mutex::new(job_rx));
        let worker_handles: Vec<JoinHandle<()>> = (0..workers)
            .map(|i| {
                let shared = Arc::clone(&shared);
                let job_rx = Arc::clone(&job_rx);
                thread::Builder::new()
                    .name(format!("nrpm-serve-worker-{i}"))
                    .spawn(move || run_worker(&shared, &job_rx))
                    .expect("spawn worker thread")
            })
            .collect();

        let acceptor = {
            let shared = Arc::clone(&shared);
            thread::Builder::new()
                .name("nrpm-serve-acceptor".into())
                .spawn(move || run_acceptor(listener, &shared, job_tx))
                .expect("spawn acceptor thread")
        };

        Ok(Server {
            shared,
            acceptor: Some(acceptor),
            workers: worker_handles,
        })
    }

    /// The bound address (resolves ephemeral ports).
    pub fn addr(&self) -> SocketAddr {
        self.shared.addr
    }

    /// `true` once a drain has begun.
    pub fn draining(&self) -> bool {
        self.shared.draining()
    }

    /// Begins a graceful drain, as if a `shutdown` request had arrived.
    pub fn request_shutdown(&self) {
        self.shared.begin_shutdown();
    }

    /// Waits for the drain cascade to finish: acceptor, connections, then
    /// workers. Blocks forever unless a shutdown was requested.
    pub fn join(mut self) -> std::thread::Result<()> {
        if let Some(acceptor) = self.acceptor.take() {
            acceptor.join()?;
        }
        for worker in self.workers.drain(..) {
            worker.join()?;
        }
        Ok(())
    }
}

fn run_acceptor(listener: TcpListener, shared: &Arc<Shared>, job_tx: mpsc::Sender<Job>) {
    let mut connections: Vec<JoinHandle<()>> = Vec::new();
    for stream in listener.incoming() {
        if shared.draining() {
            break;
        }
        let Ok(stream) = stream else { continue };
        let shared = Arc::clone(shared);
        let job_tx = job_tx.clone();
        let handle = thread::Builder::new()
            .name("nrpm-serve-conn".into())
            .spawn(move || {
                let _ = serve_connection(stream, &shared, &job_tx);
            })
            .expect("spawn connection thread");
        connections.push(handle);
        // Reap finished readers so a long-lived server does not accumulate
        // one parked JoinHandle per past connection.
        connections.retain(|h| !h.is_finished());
    }
    for handle in connections {
        let _ = handle.join();
    }
    // `job_tx` drops here — with every connection gone this was the last
    // sender, so the workers drain the queue and exit.
}

/// Reads newline-delimited requests off one connection until EOF, error, or
/// drain. Returns `Err` only on socket failures (the caller ignores it).
fn serve_connection(
    mut stream: TcpStream,
    shared: &Arc<Shared>,
    job_tx: &mpsc::Sender<Job>,
) -> std::io::Result<()> {
    stream.set_nodelay(true).ok();
    stream.set_read_timeout(Some(shared.opts.poll_interval))?;
    let mut buf: Vec<u8> = Vec::new();
    let mut chunk = [0u8; 16 * 1024];
    loop {
        while let Some(pos) = buf.iter().position(|&b| b == b'\n') {
            let line_bytes: Vec<u8> = buf.drain(..=pos).collect();
            let line = String::from_utf8_lossy(&line_bytes);
            let line = line.trim();
            if line.is_empty() {
                continue;
            }
            match handle_line(line, shared, job_tx) {
                Disposition::Respond(response) => {
                    stream.write_all(response.as_bytes())?;
                    stream.write_all(b"\n")?;
                    stream.flush()?;
                }
                Disposition::RespondAndClose(response) => {
                    stream.write_all(response.as_bytes())?;
                    stream.write_all(b"\n")?;
                    stream.flush()?;
                    return Ok(());
                }
            }
        }
        if buf.len() > MAX_LINE_BYTES {
            shared.metrics.record_error(ErrorClass::Usage);
            let response = error_line(
                None,
                ErrorKind::Usage,
                &format!("request exceeds {MAX_LINE_BYTES} bytes"),
            );
            stream.write_all(response.as_bytes())?;
            stream.write_all(b"\n")?;
            return Ok(());
        }
        match stream.read(&mut chunk) {
            Ok(0) => return Ok(()), // client closed
            Ok(n) => buf.extend_from_slice(&chunk[..n]),
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                // Idle poll tick: leave once a drain starts and nothing is
                // buffered (a partially received request is abandoned too —
                // its sender can no longer get an answer anyway).
                if shared.draining() {
                    return Ok(());
                }
            }
            Err(e) => return Err(e),
        }
    }
}

enum Disposition {
    Respond(String),
    RespondAndClose(String),
}

fn handle_line(line: &str, shared: &Arc<Shared>, job_tx: &mpsc::Sender<Job>) -> Disposition {
    let request = match Request::parse(line) {
        Ok(request) => request,
        Err((kind, message)) => {
            shared.metrics.record_error(match kind {
                ErrorKind::Parse => ErrorClass::Parse,
                _ => ErrorClass::Usage,
            });
            return Disposition::Respond(error_line(None, kind, &message));
        }
    };
    match request {
        Request::Health => {
            shared.metrics.record_request(RequestKind::Health);
            shared.metrics.record_ok();
            Disposition::Respond(ok_line(
                None,
                vec![
                    ("service".into(), Value::Str("nrpm-serve".into())),
                    ("workers".into(), Value::U64(shared.opts.workers as u64)),
                    ("adapt".into(), Value::Bool(shared.opts.adapt)),
                    ("draining".into(), Value::Bool(shared.draining())),
                ],
            ))
        }
        Request::Stats => {
            shared.metrics.record_request(RequestKind::Stats);
            shared.metrics.record_ok();
            let snapshot = shared.metrics.snapshot();
            Disposition::Respond(ok_line(None, vec![("stats".into(), snapshot.to_value())]))
        }
        Request::Shutdown => {
            shared.metrics.record_request(RequestKind::Shutdown);
            shared.metrics.record_ok();
            shared.begin_shutdown();
            Disposition::RespondAndClose(ok_line(
                None,
                vec![("draining".into(), Value::Bool(true))],
            ))
        }
        Request::Model {
            set,
            at,
            timeout_ms,
            id,
        } => {
            shared.metrics.record_request(RequestKind::Model);
            let request = JobRequest::Model {
                set: Box::new(set),
                at,
                id,
            };
            Disposition::Respond(dispatch_job(shared, job_tx, request, timeout_ms))
        }
        Request::Batch {
            sets,
            timeout_ms,
            id,
        } => {
            shared.metrics.record_request(RequestKind::Batch);
            let request = JobRequest::Batch { sets, id };
            Disposition::Respond(dispatch_job(shared, job_tx, request, timeout_ms))
        }
    }
}

/// Queues one modeling job and waits for its reply within the deadline.
fn dispatch_job(
    shared: &Arc<Shared>,
    job_tx: &mpsc::Sender<Job>,
    request: JobRequest,
    timeout_ms: Option<u64>,
) -> String {
    let id = match &request {
        JobRequest::Model { id, .. } | JobRequest::Batch { id, .. } => id.clone(),
    };
    if shared.draining() {
        shared.metrics.record_error(ErrorClass::ShuttingDown);
        return error_line(
            id.as_deref(),
            ErrorKind::ShuttingDown,
            "server is draining; no new modeling work accepted",
        );
    }
    let started = Instant::now();
    let timeout = timeout_ms
        .map(Duration::from_millis)
        .unwrap_or(shared.opts.default_timeout);
    let deadline = started + timeout;
    let (reply_tx, reply_rx) = mpsc::channel::<Reply>();
    let job = Job {
        request,
        deadline,
        reply: reply_tx,
    };
    if job_tx.send(job).is_err() {
        shared.metrics.record_error(ErrorClass::ShuttingDown);
        return error_line(
            id.as_deref(),
            ErrorKind::ShuttingDown,
            "worker pool is gone; server is shutting down",
        );
    }
    match reply_rx.recv_timeout(deadline.saturating_duration_since(Instant::now())) {
        Ok(reply) => {
            match reply.error {
                None => shared.metrics.record_ok(),
                Some(class) => shared.metrics.record_error(class),
            }
            shared.metrics.record_latency(started.elapsed());
            reply.line
        }
        Err(RecvTimeoutError::Timeout) => {
            // The worker may still answer later; the receiver is dropped
            // here, so that late reply is discarded unrecorded.
            shared.metrics.record_error(ErrorClass::Timeout);
            shared.metrics.record_latency(started.elapsed());
            error_line(
                id.as_deref(),
                ErrorKind::Timeout,
                &format!("deadline of {timeout:?} exceeded"),
            )
        }
        Err(RecvTimeoutError::Disconnected) => {
            shared.metrics.record_error(ErrorClass::ShuttingDown);
            error_line(
                id.as_deref(),
                ErrorKind::ShuttingDown,
                "worker dropped the request during shutdown",
            )
        }
    }
}

fn run_worker(shared: &Arc<Shared>, job_rx: &Arc<Mutex<mpsc::Receiver<Job>>>) {
    let mut modeler = shared.store.modeler();
    loop {
        // Take the lock only to receive; computing happens lock-free so the
        // other workers can pick up jobs concurrently.
        let job = {
            let Ok(guard) = job_rx.lock() else { break };
            guard.recv()
        };
        let Ok(job) = job else { break }; // all senders gone: drain complete
        let reply = compute_reply(shared, &mut modeler, &job);
        let reply = match reply {
            Ok(reply) => reply,
            Err(panic_message) => {
                // A modeling panic must never take the server down. The
                // worker's modeler is rebuilt from the warm store in case
                // the panic left it inconsistent.
                modeler = shared.store.modeler();
                let id = match &job.request {
                    JobRequest::Model { id, .. } | JobRequest::Batch { id, .. } => id.clone(),
                };
                Reply {
                    line: error_line(
                        id.as_deref(),
                        ErrorKind::Fatal,
                        &format!("internal modeling failure: {panic_message}"),
                    ),
                    error: Some(ErrorClass::Fatal),
                }
            }
        };
        // The connection may have timed out and moved on; a failed send
        // just means nobody is listening anymore.
        let _ = job.reply.send(reply);
    }
}

/// Computes the reply for one job, catching panics into `Err(message)`.
fn compute_reply(
    shared: &Arc<Shared>,
    modeler: &mut AdaptiveModeler,
    job: &Job,
) -> Result<Reply, String> {
    if Instant::now() >= job.deadline {
        let id = match &job.request {
            JobRequest::Model { id, .. } | JobRequest::Batch { id, .. } => id.clone(),
        };
        return Ok(Reply {
            line: error_line(
                id.as_deref(),
                ErrorKind::Timeout,
                "deadline expired before a worker picked the request up",
            ),
            error: Some(ErrorClass::Timeout),
        });
    }
    let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| match &job.request {
        JobRequest::Model { set, at, id } => {
            let result = if shared.opts.adapt {
                // Adaptation mutates weights: start from the warm base so
                // results cannot depend on what this worker served before.
                shared.store.modeler().model(set)
            } else {
                modeler.model(set)
            };
            match result {
                Ok(outcome) => {
                    shared.metrics.record_choice(outcome.choice);
                    Reply {
                        line: ok_line(
                            id.as_deref(),
                            vec![("outcome".into(), outcome_value(&outcome, at.as_deref()))],
                        ),
                        error: None,
                    }
                }
                Err(e) => Reply {
                    line: error_line(id.as_deref(), ErrorKind::of_model_error(&e), &e.to_string()),
                    error: Some(match ErrorKind::of_model_error(&e) {
                        ErrorKind::Fatal => ErrorClass::Fatal,
                        _ => ErrorClass::Recoverable,
                    }),
                },
            }
        }
        JobRequest::Batch { sets, id } => {
            let batch = modeler.model_batch(sets);
            shared
                .metrics
                .record_batched_inference(batch.forward_passes, batch.batched_lines);
            let mut ok = 0u64;
            let entries: Vec<Value> = batch
                .outcomes
                .iter()
                .map(|result| {
                    if let Ok(outcome) = result {
                        shared.metrics.record_choice(outcome.choice);
                        ok += 1;
                    }
                    batch_entry(result)
                })
                .collect();
            Reply {
                line: ok_line(
                    id.as_deref(),
                    vec![
                        ("results".into(), Value::Seq(entries)),
                        ("kernels".into(), Value::U64(batch.outcomes.len() as u64)),
                        ("kernels_ok".into(), Value::U64(ok)),
                        (
                            "forward_passes".into(),
                            Value::U64(batch.forward_passes as u64),
                        ),
                        (
                            "batched_lines".into(),
                            Value::U64(batch.batched_lines as u64),
                        ),
                    ],
                ),
                error: None,
            }
        }
    }));
    outcome.map_err(|panic| {
        if let Some(s) = panic.downcast_ref::<&str>() {
            (*s).to_string()
        } else if let Some(s) = panic.downcast_ref::<String>() {
            s.clone()
        } else {
            "unknown panic".to_string()
        }
    })
}
