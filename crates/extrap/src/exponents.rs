//! The canonical PMNF exponent set *E* (Eq. 2 of the paper).
//!
//! `E` enumerates every `(i, j)` pair a PMNF term `x^i · log2^j(x)` may use.
//! The pairs double as the **43 classification targets** of the DNN modeler,
//! so a stable, canonical ordering (and a bijection pair ⇄ class id) lives
//! here.

use crate::Fraction;
use serde::{Deserialize, Serialize};
use std::fmt;
use std::sync::OnceLock;

/// Number of `(i, j)` combinations in the canonical exponent set — and the
/// number of output classes of the DNN.
pub const NUM_CLASSES: usize = 43;

/// One `(i, j)` exponent combination of a PMNF term `x^i · log2^j(x)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct ExponentPair {
    /// Polynomial exponent `i` (exact rational).
    pub poly: Fraction,
    /// Logarithm exponent `j` (non-negative integer).
    pub log: u8,
}

impl ExponentPair {
    /// Creates a pair from a rational polynomial exponent and a log exponent.
    pub fn new(poly: Fraction, log: u8) -> Self {
        ExponentPair { poly, log }
    }

    /// Convenience constructor from a `(num, den, log)` triple.
    pub fn from_parts(num: i32, den: i32, log: u8) -> Self {
        ExponentPair {
            poly: Fraction::new(num, den),
            log,
        }
    }

    /// The constant pair `(0, 0)` — `x^0 · log^0 = 1`.
    pub const CONSTANT: ExponentPair = ExponentPair {
        poly: Fraction::ZERO,
        log: 0,
    };

    /// `true` when the pair is `(0, 0)`.
    pub fn is_constant(&self) -> bool {
        self.poly.is_zero() && self.log == 0
    }

    /// Evaluates `x^i · log2^j(x)` at `x`.
    ///
    /// Defined for `x > 0`; callers feed parameter values which are ≥ 1 in
    /// practice.
    pub fn evaluate(&self, x: f64) -> f64 {
        debug_assert!(x > 0.0, "PMNF terms are defined for positive x (got {x})");
        let poly = if self.poly.is_zero() {
            1.0
        } else {
            x.powf(self.poly.to_f64())
        };
        let log = if self.log == 0 {
            1.0
        } else {
            x.log2().powi(self.log as i32)
        };
        poly * log
    }

    /// Asymptotic-growth comparison: which pair dominates as `x → ∞`?
    ///
    /// Larger polynomial exponent wins; the log exponent breaks ties.
    pub fn growth_cmp(&self, other: &ExponentPair) -> std::cmp::Ordering {
        self.poly.cmp(&other.poly).then(self.log.cmp(&other.log))
    }
}

impl fmt::Display for ExponentPair {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match (self.poly.is_zero(), self.log) {
            (true, 0) => write!(f, "1"),
            (true, j) => write!(f, "log2^{j}(x)"),
            (false, 0) => write!(f, "x^({})", self.poly),
            (false, j) => write!(f, "x^({}) * log2^{j}(x)", self.poly),
        }
    }
}

/// The canonical ordered exponent set with pair ⇄ class-id lookup.
#[derive(Debug, Clone)]
pub struct ExponentSet {
    pairs: Vec<ExponentPair>,
}

impl ExponentSet {
    fn build() -> Self {
        let mut pairs = Vec::with_capacity(NUM_CLASSES);
        // Group A: {0, 1/4, 1/3, 1/2, 2/3, 3/4, 1, 3/2, 2, 5/2} x {0, 1, 2}
        let group_a = [
            (0, 1),
            (1, 4),
            (1, 3),
            (1, 2),
            (2, 3),
            (3, 4),
            (1, 1),
            (3, 2),
            (2, 1),
            (5, 2),
        ];
        for &(n, d) in &group_a {
            for j in 0..=2u8 {
                pairs.push(ExponentPair::from_parts(n, d, j));
            }
        }
        // Group B: {5/4, 4/3, 3} x {0, 1}
        let group_b = [(5, 4), (4, 3), (3, 1)];
        for &(n, d) in &group_b {
            for j in 0..=1u8 {
                pairs.push(ExponentPair::from_parts(n, d, j));
            }
        }
        // Group C: {4/5, 5/3, 7/4, 9/4, 7/3, 8/3, 11/4} x {0}
        let group_c = [(4, 5), (5, 3), (7, 4), (9, 4), (7, 3), (8, 3), (11, 4)];
        for &(n, d) in &group_c {
            pairs.push(ExponentPair::from_parts(n, d, 0));
        }
        debug_assert_eq!(pairs.len(), NUM_CLASSES);
        // Canonical ordering: ascending growth, so neighbouring class ids are
        // neighbouring complexity classes (useful when inspecting confusion).
        pairs.sort_by(|a, b| a.growth_cmp(b));
        ExponentSet { pairs }
    }

    /// All pairs in canonical (growth) order.
    pub fn pairs(&self) -> &[ExponentPair] {
        &self.pairs
    }

    /// Number of pairs (always [`NUM_CLASSES`]).
    pub fn len(&self) -> usize {
        self.pairs.len()
    }

    /// Never true; present for API completeness.
    pub fn is_empty(&self) -> bool {
        self.pairs.is_empty()
    }

    /// The pair with class id `class`.
    ///
    /// # Panics
    /// Panics if `class >= NUM_CLASSES`.
    pub fn pair(&self, class: usize) -> ExponentPair {
        self.pairs[class]
    }

    /// The class id of `pair`, if it is a member of *E*.
    pub fn class_of(&self, pair: &ExponentPair) -> Option<usize> {
        self.pairs.iter().position(|p| p == pair)
    }

    /// The member of *E* closest to an arbitrary pair, by lead-exponent
    /// distance. Used to snap externally supplied exponents into the space.
    pub fn nearest(&self, poly: f64, log: f64) -> ExponentPair {
        *self
            .pairs
            .iter()
            .min_by(|a, b| {
                let da = (a.poly.to_f64() - poly).abs() + 0.25 * (a.log as f64 - log).abs();
                let db = (b.poly.to_f64() - poly).abs() + 0.25 * (b.log as f64 - log).abs();
                da.partial_cmp(&db).expect("finite distances")
            })
            .expect("exponent set is non-empty")
    }
}

/// The process-wide canonical exponent set.
pub fn exponent_set() -> &'static ExponentSet {
    static SET: OnceLock<ExponentSet> = OnceLock::new();
    SET.get_or_init(ExponentSet::build)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_has_exactly_43_distinct_pairs() {
        let set = exponent_set();
        assert_eq!(set.len(), NUM_CLASSES);
        let mut seen = std::collections::HashSet::new();
        for p in set.pairs() {
            assert!(seen.insert(*p), "duplicate pair {p}");
        }
    }

    #[test]
    fn set_contains_the_papers_examples() {
        let set = exponent_set();
        // constant
        assert!(set.class_of(&ExponentPair::CONSTANT).is_some());
        // x^{1/3} (Kripke processes), x^{4/5} (Kripke groups), x * log2^2(x)
        // (RELeARN connectivity update)
        assert!(set.class_of(&ExponentPair::from_parts(1, 3, 0)).is_some());
        assert!(set.class_of(&ExponentPair::from_parts(4, 5, 0)).is_some());
        assert!(set.class_of(&ExponentPair::from_parts(1, 1, 2)).is_some());
        // x^3 log x in group B
        assert!(set.class_of(&ExponentPair::from_parts(3, 1, 1)).is_some());
        // but NOT x^3 log^2 x
        assert!(set.class_of(&ExponentPair::from_parts(3, 1, 2)).is_none());
        // and NOT x^{4/5} log x
        assert!(set.class_of(&ExponentPair::from_parts(4, 5, 1)).is_none());
    }

    #[test]
    fn class_ids_round_trip() {
        let set = exponent_set();
        for class in 0..NUM_CLASSES {
            let pair = set.pair(class);
            assert_eq!(set.class_of(&pair), Some(class));
        }
    }

    #[test]
    fn ordering_is_by_growth() {
        let set = exponent_set();
        assert_eq!(set.pair(0), ExponentPair::CONSTANT);
        for w in set.pairs().windows(2) {
            assert_eq!(w[0].growth_cmp(&w[1]), std::cmp::Ordering::Less);
        }
        // The last class is the fastest-growing: x^3 log x
        assert_eq!(set.pair(NUM_CLASSES - 1), ExponentPair::from_parts(3, 1, 1));
    }

    #[test]
    fn evaluate_matches_closed_forms() {
        let p = ExponentPair::from_parts(1, 2, 1); // sqrt(x) * log2(x)
        assert!((p.evaluate(4.0) - 2.0 * 2.0).abs() < 1e-12);
        assert!((p.evaluate(1.0) - 0.0).abs() < 1e-12); // log2(1) = 0

        let c = ExponentPair::CONSTANT;
        assert_eq!(c.evaluate(123.0), 1.0);

        let cube = ExponentPair::from_parts(3, 1, 0);
        assert_eq!(cube.evaluate(2.0), 8.0);
    }

    #[test]
    fn nearest_snaps_to_members() {
        let set = exponent_set();
        let snapped = set.nearest(0.34, 0.0);
        assert_eq!(snapped, ExponentPair::from_parts(1, 3, 0));
        let snapped = set.nearest(1.01, 1.9);
        assert_eq!(snapped, ExponentPair::from_parts(1, 1, 2));
    }

    #[test]
    fn growth_cmp_prefers_poly_then_log() {
        let a = ExponentPair::from_parts(1, 1, 0);
        let b = ExponentPair::from_parts(1, 1, 1);
        let c = ExponentPair::from_parts(3, 2, 0);
        assert_eq!(a.growth_cmp(&b), std::cmp::Ordering::Less);
        assert_eq!(b.growth_cmp(&c), std::cmp::Ordering::Less);
        assert_eq!(a.growth_cmp(&a), std::cmp::Ordering::Equal);
    }

    #[test]
    fn display_is_readable() {
        assert_eq!(ExponentPair::CONSTANT.to_string(), "1");
        assert_eq!(ExponentPair::from_parts(1, 2, 0).to_string(), "x^(1/2)");
        assert_eq!(ExponentPair::from_parts(0, 1, 2).to_string(), "log2^2(x)");
        assert_eq!(
            ExponentPair::from_parts(5, 2, 1).to_string(),
            "x^(5/2) * log2^1(x)"
        );
    }
}
