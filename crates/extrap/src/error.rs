use std::fmt;

/// Errors produced by the modelers.
#[derive(Debug, Clone, PartialEq)]
pub enum ModelError {
    /// The measurement set declares zero parameters.
    NoParameters,
    /// Too few measurement points to model a parameter (Extra-P needs at
    /// least five values per parameter).
    TooFewPoints {
        /// Parameter index that lacked points.
        param: usize,
        /// Number of points found.
        found: usize,
        /// Minimum required.
        required: usize,
    },
    /// Every hypothesis in the search space failed to fit (for example,
    /// because the design matrices were all singular).
    NoViableHypothesis,
    /// Measurement values contain NaN or infinities.
    NonFiniteData,
    /// A parameter value was not strictly positive; PMNF terms
    /// (`x^i log2^j x`) require positive coordinates.
    NonPositiveParameter {
        /// Parameter index.
        param: usize,
        /// Offending value.
        value: f64,
    },
}

impl fmt::Display for ModelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ModelError::NoParameters => write!(f, "measurement set declares zero parameters"),
            ModelError::TooFewPoints { param, found, required } => write!(
                f,
                "parameter {param} has only {found} distinct measurement points, {required} required"
            ),
            ModelError::NoViableHypothesis => {
                write!(f, "no hypothesis in the search space could be fitted")
            }
            ModelError::NonFiniteData => write!(f, "measurement values contain NaN or infinities"),
            ModelError::NonPositiveParameter { param, value } => write!(
                f,
                "parameter {param} has non-positive value {value}; PMNF requires positive coordinates"
            ),
        }
    }
}

impl std::error::Error for ModelError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_mentions_key_facts() {
        let e = ModelError::TooFewPoints { param: 1, found: 3, required: 5 };
        let s = e.to_string();
        assert!(s.contains('1') && s.contains('3') && s.contains('5'));
        assert!(ModelError::NoViableHypothesis.to_string().contains("hypothesis"));
        assert!(ModelError::NonPositiveParameter { param: 0, value: -2.0 }
            .to_string()
            .contains("-2"));
    }
}
