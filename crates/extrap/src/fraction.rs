//! Exact rational exponents.
//!
//! The PMNF exponent set contains fractions like `1/3` and `11/4`; storing
//! them as `f64` would make class identity (needed by the DNN classifier)
//! and model comparison fragile, so exponents are exact rationals.

use serde::{Deserialize, Serialize};
use std::cmp::Ordering;
use std::fmt;

/// An exact rational number `num / den` with `den > 0`, always stored in
/// lowest terms.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Fraction {
    num: i32,
    den: i32,
}

fn gcd(a: i32, b: i32) -> i32 {
    let (mut a, mut b) = (a.abs(), b.abs());
    while b != 0 {
        let t = a % b;
        a = b;
        b = t;
    }
    a
}

impl Fraction {
    /// Creates a fraction, normalizing sign and reducing to lowest terms.
    ///
    /// # Panics
    /// Panics if `den == 0`.
    pub fn new(num: i32, den: i32) -> Self {
        assert!(den != 0, "fraction denominator must be non-zero");
        let sign = if den < 0 { -1 } else { 1 };
        let g = gcd(num, den).max(1);
        Fraction {
            num: sign * num / g,
            den: sign * den / g,
        }
    }

    /// The fraction `0/1`.
    pub const ZERO: Fraction = Fraction { num: 0, den: 1 };

    /// The fraction `1/1`.
    pub const ONE: Fraction = Fraction { num: 1, den: 1 };

    /// Creates a whole-number fraction.
    pub fn integer(n: i32) -> Self {
        Fraction { num: n, den: 1 }
    }

    /// Numerator (sign-carrying).
    pub fn num(&self) -> i32 {
        self.num
    }

    /// Denominator (always positive).
    pub fn den(&self) -> i32 {
        self.den
    }

    /// Converts to `f64`.
    pub fn to_f64(&self) -> f64 {
        self.num as f64 / self.den as f64
    }

    /// `true` when the fraction equals zero.
    pub fn is_zero(&self) -> bool {
        self.num == 0
    }

    /// Absolute difference as `f64` — the distance used by the
    /// lead-exponent accuracy metric.
    pub fn abs_diff(&self, other: &Fraction) -> f64 {
        (self.to_f64() - other.to_f64()).abs()
    }

    /// Exact sum.
    pub fn add(&self, other: &Fraction) -> Fraction {
        Fraction::new(
            self.num * other.den + other.num * self.den,
            self.den * other.den,
        )
    }

    /// Exact difference.
    pub fn sub(&self, other: &Fraction) -> Fraction {
        Fraction::new(
            self.num * other.den - other.num * self.den,
            self.den * other.den,
        )
    }
}

impl PartialOrd for Fraction {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Fraction {
    fn cmp(&self, other: &Self) -> Ordering {
        // Cross-multiply; denominators are positive so ordering is preserved.
        (self.num as i64 * other.den as i64).cmp(&(other.num as i64 * self.den as i64))
    }
}

impl fmt::Display for Fraction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.den == 1 {
            write!(f, "{}", self.num)
        } else {
            write!(f, "{}/{}", self.num, self.den)
        }
    }
}

impl From<i32> for Fraction {
    fn from(n: i32) -> Self {
        Fraction::integer(n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reduces_to_lowest_terms() {
        let f = Fraction::new(2, 4);
        assert_eq!(f, Fraction::new(1, 2));
        assert_eq!(f.num(), 1);
        assert_eq!(f.den(), 2);
    }

    #[test]
    fn normalizes_negative_denominators() {
        let f = Fraction::new(1, -2);
        assert_eq!(f.num(), -1);
        assert_eq!(f.den(), 2);
        assert_eq!(f.to_f64(), -0.5);
    }

    #[test]
    #[should_panic(expected = "denominator")]
    fn zero_denominator_panics() {
        let _ = Fraction::new(1, 0);
    }

    #[test]
    fn ordering_is_numeric() {
        let mut v = [
            Fraction::new(5, 2),
            Fraction::new(1, 3),
            Fraction::ZERO,
            Fraction::new(11, 4),
            Fraction::ONE,
        ];
        v.sort();
        let vals: Vec<f64> = v.iter().map(Fraction::to_f64).collect();
        assert_eq!(vals, vec![0.0, 1.0 / 3.0, 1.0, 2.5, 2.75]);
    }

    #[test]
    fn arithmetic_is_exact() {
        let a = Fraction::new(1, 3);
        let b = Fraction::new(1, 6);
        assert_eq!(a.add(&b), Fraction::new(1, 2));
        assert_eq!(a.sub(&b), Fraction::new(1, 6));
        assert_eq!(Fraction::new(1, 4).abs_diff(&Fraction::new(1, 2)), 0.25);
    }

    #[test]
    fn display_formats() {
        assert_eq!(Fraction::new(3, 1).to_string(), "3");
        assert_eq!(Fraction::new(-7, 4).to_string(), "-7/4");
    }

    #[test]
    fn equality_ignores_representation() {
        assert_eq!(Fraction::new(10, 4), Fraction::new(5, 2));
        use std::collections::HashSet;
        let mut s = HashSet::new();
        s.insert(Fraction::new(2, 4));
        assert!(s.contains(&Fraction::new(1, 2)));
    }
}
