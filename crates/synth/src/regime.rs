//! Noise families beyond the paper's uniform regime.
//!
//! The paper injects uniform multiplicative noise (Sec. IV-D); real
//! campaigns exhibit richer regimes. This module names four families the
//! sweep harness grids against each other:
//!
//! - **Uniform** — the paper's regime: every point perturbed by
//!   `U(1 − level/2, 1 + level/2)`, identical draws to
//!   [`crate::noisy_repetitions`].
//! - **Heteroscedastic** — the effective level grows linearly along the
//!   measurement line, from `0` at the smallest configuration to
//!   `2 · level` at the largest, averaging `level`. Larger runs really are
//!   noisier: more memory traffic, more OS jitter, more contention.
//! - **Spike-contaminated** — uniform base noise plus rare multiplicative
//!   spikes (a repetition lands on a congested node, a daemon wakes up):
//!   with probability `spike_rate` a repetition is multiplied by
//!   `spike_factor`.
//! - **Device-variation** — Gaussian multiplicative noise with standard
//!   deviation `level/2`, the shape memristive/analog device models use
//!   for write variation (`dev_var` in the CIM literature); tails are
//!   unbounded, unlike the uniform band.
//!
//! Every family is mean-preserving except the spike regime, whose mean is
//! inflated by exactly `spike_rate · (spike_factor − 1)` — the quantity
//! the moment proptests pin down.

use crate::noise::{apply_noise, noisy_repetitions};
use rand::Rng;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Default spike probability for [`NoiseFamily::spike_contaminated`].
pub const DEFAULT_SPIKE_RATE: f64 = 0.05;

/// Default spike multiplier for [`NoiseFamily::spike_contaminated`] —
/// matches the 10× winsorization bound of the sanitizer, so spikes sit
/// right at the edge of what input repair catches.
pub const DEFAULT_SPIKE_FACTOR: f64 = 10.0;

/// A multiplicative noise family. The *scale* of the noise (the paper's
/// "noise level") stays a separate knob; the family decides its shape.
#[derive(Debug, Default, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum NoiseFamily {
    /// The paper's uniform regime: `v · U(1 − level/2, 1 + level/2)`.
    #[default]
    Uniform,
    /// Level grows linearly along the line: point at position fraction
    /// `pos` sees an effective level of `2 · level · pos` (mean `level`).
    Heteroscedastic,
    /// Uniform base noise plus rare multiplicative spikes.
    SpikeContaminated {
        /// Probability that one repetition is a spike.
        spike_rate: f64,
        /// Multiplier applied to a spiked repetition.
        spike_factor: f64,
    },
    /// Gaussian multiplicative noise, `v · N(1, (level/2)²)`, clamped to
    /// stay positive (runtimes cannot go negative).
    DeviceVariation,
}

impl NoiseFamily {
    /// The spike regime with its default rate and factor.
    pub fn spike_contaminated() -> Self {
        NoiseFamily::SpikeContaminated {
            spike_rate: DEFAULT_SPIKE_RATE,
            spike_factor: DEFAULT_SPIKE_FACTOR,
        }
    }

    /// The four families at their default parameters — the sweep grid.
    pub fn all() -> [NoiseFamily; 4] {
        [
            NoiseFamily::Uniform,
            NoiseFamily::Heteroscedastic,
            NoiseFamily::spike_contaminated(),
            NoiseFamily::DeviceVariation,
        ]
    }

    /// Parses a CLI regime name (`uniform`, `heteroscedastic`/`hetero`,
    /// `spike`, `device`).
    pub fn parse(name: &str) -> Option<NoiseFamily> {
        match name.trim().to_ascii_lowercase().as_str() {
            "uniform" => Some(NoiseFamily::Uniform),
            "heteroscedastic" | "hetero" => Some(NoiseFamily::Heteroscedastic),
            "spike" | "spike-contaminated" => Some(NoiseFamily::spike_contaminated()),
            "device" | "device-variation" => Some(NoiseFamily::DeviceVariation),
            _ => None,
        }
    }

    /// Perturbs one repetition of `value` at noise scale `level`, for a
    /// point at position fraction `pos` (`0` = first point of the line,
    /// `1` = last). `pos` only matters to the heteroscedastic family.
    pub fn perturb(&self, value: f64, level: f64, pos: f64, rng: &mut impl Rng) -> f64 {
        if level <= 0.0 {
            return value;
        }
        match *self {
            NoiseFamily::Uniform => apply_noise(value, level, rng),
            NoiseFamily::Heteroscedastic => {
                apply_noise(value, 2.0 * level * pos.clamp(0.0, 1.0), rng)
            }
            NoiseFamily::SpikeContaminated {
                spike_rate,
                spike_factor,
            } => {
                let v = apply_noise(value, level, rng);
                if spike_rate > 0.0 && rng.gen_range(0.0..1.0) < spike_rate {
                    v * spike_factor
                } else {
                    v
                }
            }
            NoiseFamily::DeviceVariation => {
                let u1: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
                let u2: f64 = rng.gen_range(0.0..1.0);
                let z = (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos();
                value * (1.0 + 0.5 * level * z).max(1e-12)
            }
        }
    }

    /// Simulates `rep` noisy repetitions of one measurement. The uniform
    /// family draws exactly like [`crate::noisy_repetitions`], so corpora
    /// generated under the default family are bitwise identical to the
    /// pre-family generator.
    pub fn repetitions(
        &self,
        value: f64,
        level: f64,
        pos: f64,
        rep: usize,
        rng: &mut impl Rng,
    ) -> Vec<f64> {
        if matches!(self, NoiseFamily::Uniform) {
            return noisy_repetitions(value, level, rep, rng);
        }
        assert!(rep >= 1, "at least one repetition required");
        (0..rep)
            .map(|_| self.perturb(value, level, pos, rng))
            .collect()
    }

    /// The expected value of a perturbed measurement divided by its truth.
    /// `1` for the mean-preserving families; `1 + rate · (factor − 1)` for
    /// the spike regime.
    pub fn expected_mean_factor(&self) -> f64 {
        match *self {
            NoiseFamily::SpikeContaminated {
                spike_rate,
                spike_factor,
            } => 1.0 + spike_rate * (spike_factor - 1.0),
            _ => 1.0,
        }
    }

    /// The expected standard deviation of one perturbed repetition of a
    /// unit measurement at scale `level`, at line position `pos` — the
    /// second moment the proptests check.
    pub fn expected_std(&self, level: f64, pos: f64) -> f64 {
        // A U(1 − h, 1 + h) factor has std h/√3.
        let uniform_std = |width: f64| width / 2.0 / 3.0_f64.sqrt();
        match *self {
            NoiseFamily::Uniform => uniform_std(level),
            NoiseFamily::Heteroscedastic => uniform_std(2.0 * level * pos.clamp(0.0, 1.0)),
            NoiseFamily::SpikeContaminated {
                spike_rate,
                spike_factor,
            } => {
                // Var = E[f²]·E[b²] − (E[f]·E[b])², with b the base
                // uniform factor and f the spike factor (factor w.p. rate,
                // 1 otherwise).
                let eb = 1.0;
                let eb2 = uniform_std(level).powi(2) + 1.0;
                let ef = 1.0 + spike_rate * (spike_factor - 1.0);
                let ef2 = 1.0 + spike_rate * (spike_factor * spike_factor - 1.0);
                (ef2 * eb2 - (ef * eb).powi(2)).max(0.0).sqrt()
            }
            NoiseFamily::DeviceVariation => 0.5 * level,
        }
    }
}

impl fmt::Display for NoiseFamily {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NoiseFamily::Uniform => write!(f, "uniform"),
            NoiseFamily::Heteroscedastic => write!(f, "heteroscedastic"),
            NoiseFamily::SpikeContaminated { .. } => write!(f, "spike"),
            NoiseFamily::DeviceVariation => write!(f, "device"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn uniform_family_draws_exactly_like_noisy_repetitions() {
        let mut a = StdRng::seed_from_u64(11);
        let mut b = StdRng::seed_from_u64(11);
        let family = NoiseFamily::Uniform;
        for (value, level, rep) in [(10.0, 0.3, 5), (2.0, 0.0, 3), (7.5, 1.0, 1)] {
            assert_eq!(
                family.repetitions(value, level, 0.7, rep, &mut a),
                noisy_repetitions(value, level, rep, &mut b),
            );
        }
    }

    #[test]
    fn heteroscedastic_noise_grows_along_the_line() {
        let mut rng = StdRng::seed_from_u64(3);
        let spread = |pos: f64, rng: &mut StdRng| {
            let reps = NoiseFamily::Heteroscedastic.repetitions(100.0, 0.4, pos, 400, rng);
            let mean = reps.iter().sum::<f64>() / reps.len() as f64;
            (reps.iter().map(|v| (v - mean).powi(2)).sum::<f64>() / reps.len() as f64).sqrt()
        };
        let early = spread(0.1, &mut rng);
        let late = spread(0.9, &mut rng);
        assert!(late > 3.0 * early, "late {late} !>> early {early}");
        // The first point of a line is noiseless under this family.
        let first = NoiseFamily::Heteroscedastic.repetitions(100.0, 0.4, 0.0, 3, &mut rng);
        assert!(first.iter().all(|&v| v == 100.0));
    }

    #[test]
    fn spikes_occur_at_the_configured_rate() {
        let mut rng = StdRng::seed_from_u64(5);
        let family = NoiseFamily::SpikeContaminated {
            spike_rate: 0.1,
            spike_factor: 50.0,
        };
        let reps = family.repetitions(1.0, 0.1, 0.5, 20_000, &mut rng);
        let spiked = reps.iter().filter(|&&v| v > 10.0).count();
        let rate = spiked as f64 / reps.len() as f64;
        assert!((rate - 0.1).abs() < 0.01, "spike rate {rate}");
    }

    #[test]
    fn device_variation_is_gaussian_shaped() {
        let mut rng = StdRng::seed_from_u64(9);
        let reps = NoiseFamily::DeviceVariation.repetitions(1.0, 0.4, 0.5, 20_000, &mut rng);
        let mean = reps.iter().sum::<f64>() / reps.len() as f64;
        let std = (reps.iter().map(|v| (v - mean).powi(2)).sum::<f64>() / reps.len() as f64).sqrt();
        assert!((mean - 1.0).abs() < 0.01, "mean {mean}");
        assert!((std - 0.2).abs() < 0.01, "std {std} vs level/2 = 0.2");
        // Unlike the uniform band, the tails exceed ±level/2.
        assert!(reps.iter().any(|&v| !(0.75..=1.25).contains(&v)));
        assert!(reps.iter().all(|&v| v > 0.0), "values stay positive");
    }

    #[test]
    fn zero_level_is_identity_for_every_family() {
        let mut rng = StdRng::seed_from_u64(1);
        for family in NoiseFamily::all() {
            assert_eq!(family.perturb(42.0, 0.0, 0.5, &mut rng), 42.0, "{family}");
        }
    }

    #[test]
    fn parse_and_display_round_trip() {
        for family in NoiseFamily::all() {
            assert_eq!(
                NoiseFamily::parse(&family.to_string()),
                Some(family),
                "{family}"
            );
        }
        assert_eq!(
            NoiseFamily::parse("hetero"),
            Some(NoiseFamily::Heteroscedastic)
        );
        assert_eq!(NoiseFamily::parse("bogus"), None);
    }
}
