//! Network shard membership: the `cluster_join` handshake, the heartbeat
//! lease, the `cluster_sync` state-sync endpoint, and the shard-side
//! [`JoinAgent`] that keeps a server enrolled.
//!
//! ## The handshake
//!
//! An `nrpm serve` on another host registers with the router by sending
//! one admin command over the ordinary newline-JSON protocol:
//!
//! ```text
//! {"cmd":"cluster_join","token":"...","addr":"host:port",
//!  "checkpoint_hash":"<hex16>","protocol":1}
//! ```
//!
//! The router refuses the join unless (in order): joins are enabled
//! (`--join-token` was set), the token matches, the protocol version is
//! compatible, the advertised checkpoint hash equals the cluster's
//! serving hash, and one direct probe of the advertised address confirms
//! the shard is reachable *and really serves that hash* — the shard's
//! claim is verified over the wire, never trusted. An admitted member
//! starts `Ejected` and earns traffic through the same probation gauntlet
//! as a revived local shard.
//!
//! ## The lease
//!
//! Admission grants a heartbeat lease (`lease_ms` in the reply). The
//! agent renews it at a third of its duration with `cluster_heartbeat`;
//! the supervisor ejects any member whose lease lapses, and a dead lease
//! also blocks probe-driven readmission — a server that answers probes
//! but lost its agent is *not* servable, because nobody would renew its
//! membership claim. Rejoining after a lapse is the same `cluster_join`
//! again: same address means the same member id (with a bumped
//! incarnation, so routers drop cached connections to the old process).

use std::net::SocketAddr;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::{self, JoinHandle};
use std::time::{Duration, Instant};

use nrpm_registry::{hex16, parse_hex16};
use nrpm_serve::client::{is_ok, Client};
use nrpm_serve::protocol::{error_line, ok_line, ErrorKind};
use serde::Value;
use serde_json;

use crate::cluster::{probe_shard, ClusterState};
use crate::shard::ShardRuntime;

/// Version of the join/heartbeat/sync vocabulary. A joiner advertising a
/// different version is refused rather than half-understood.
pub const JOIN_PROTOCOL_VERSION: u64 = 1;

/// Checks the `token` field of an admin command against the configured
/// join token. `Err` carries the refusal reply.
fn check_token(value: &Value, state: &ClusterState, verb: &str) -> Result<(), String> {
    let Some(expected) = &state.opts.join_token else {
        return Err(error_line(
            None,
            ErrorKind::Usage,
            &format!("{verb} refused: this cluster is closed to network members (no join token configured)"),
        ));
    };
    if value.get("token").and_then(Value::as_str) != Some(expected.as_str()) {
        return Err(error_line(
            None,
            ErrorKind::Usage,
            &format!("{verb} refused: join token rejected"),
        ));
    }
    Ok(())
}

/// Handles `cluster_join`. See the [module docs](self) for the contract.
pub(crate) fn handle_join(value: &Value, state: &Arc<ClusterState>) -> String {
    if let Err(refusal) = check_token(value, state, "cluster_join") {
        return refusal;
    }
    if value.get("protocol").and_then(Value::as_u64) != Some(JOIN_PROTOCOL_VERSION) {
        return error_line(
            None,
            ErrorKind::Usage,
            &format!(
                "cluster_join refused: this router speaks join protocol {JOIN_PROTOCOL_VERSION}"
            ),
        );
    }
    let Some(addr) = value
        .get("addr")
        .and_then(Value::as_str)
        .and_then(|s| s.parse::<SocketAddr>().ok())
    else {
        return error_line(
            None,
            ErrorKind::Usage,
            "cluster_join requires an `addr` field (\"host:port\" the router can reach)",
        );
    };
    let Some(claimed) = value
        .get("checkpoint_hash")
        .and_then(Value::as_str)
        .and_then(parse_hex16)
    else {
        return error_line(
            None,
            ErrorKind::Usage,
            "cluster_join requires a `checkpoint_hash` field (hex16 of the served checkpoint)",
        );
    };
    if let Some(serving) = state.serving_hash() {
        if claimed != serving {
            return error_line(
                None,
                ErrorKind::Usage,
                &format!(
                    "cluster_join refused: shard serves checkpoint {} but the cluster serves {}; \
                     sync the serving checkpoint and rejoin",
                    hex16(claimed),
                    hex16(serving)
                ),
            );
        }
    }
    // Verify the claim over the wire: the advertised address must answer a
    // probe and actually serve the claimed checkpoint.
    let polled = match probe_shard(addr, state.opts.probe_timeout) {
        Ok(polled) => polled,
        Err(e) => {
            return error_line(
                None,
                ErrorKind::Recoverable,
                &format!("cluster_join refused: cannot probe advertised address {addr}: {e}"),
            );
        }
    };
    if polled.checkpoint_hash.as_deref() != Some(hex16(claimed).as_str()) {
        return error_line(
            None,
            ErrorKind::Usage,
            &format!(
                "cluster_join refused: {addr} reports checkpoint {:?}, not the claimed {}",
                polled.checkpoint_hash,
                hex16(claimed)
            ),
        );
    }

    let lease = state.opts.member_lease;
    let member = match state.find_member_by_addr(addr) {
        Some(existing) => {
            // Same address, possibly a new process: renew membership under
            // a fresh lease and incarnation.
            existing.mark_rejoined(addr, lease);
            existing
        }
        None => {
            let id = state.member_count() as u32;
            let member = Arc::new(ShardRuntime::remote(id, addr, lease));
            state.add_member(Arc::clone(&member));
            member
        }
    };
    *member
        .polled
        .lock()
        .unwrap_or_else(|poisoned| poisoned.into_inner()) = polled;
    state.joins.fetch_add(1, Ordering::Relaxed);
    ok_line(
        None,
        vec![
            ("shard".into(), Value::U64(u64::from(member.id))),
            ("lease_ms".into(), Value::U64(lease.as_millis() as u64)),
            (
                "serving_hash".into(),
                match state.serving_hash() {
                    Some(hash) => Value::Str(hex16(hash)),
                    None => Value::Null,
                },
            ),
            (
                "generation".into(),
                Value::U64(state.generation.load(Ordering::SeqCst)),
            ),
        ],
    )
}

/// Handles `cluster_heartbeat`: renews a network member's lease.
pub(crate) fn handle_heartbeat(value: &Value, state: &Arc<ClusterState>) -> String {
    if let Err(refusal) = check_token(value, state, "cluster_heartbeat") {
        return refusal;
    }
    let Some(id) = value
        .get("shard")
        .and_then(Value::as_u64)
        .and_then(|v| u32::try_from(v).ok())
    else {
        return error_line(
            None,
            ErrorKind::Usage,
            "cluster_heartbeat requires a numeric `shard` field",
        );
    };
    let Some(member) = state.member(id) else {
        return error_line(
            None,
            ErrorKind::Usage,
            &format!("cluster_heartbeat refused: unknown shard {id}; rejoin"),
        );
    };
    if !member.is_remote() {
        return error_line(
            None,
            ErrorKind::Usage,
            &format!("cluster_heartbeat refused: shard {id} is a local member"),
        );
    }
    member.renew_lease(state.opts.member_lease);
    ok_line(
        None,
        vec![
            ("shard".into(), Value::U64(u64::from(id))),
            (
                "lease_ms".into(),
                Value::U64(state.opts.member_lease.as_millis() as u64),
            ),
            (
                "serving_hash".into(),
                match state.serving_hash() {
                    Some(hash) => Value::Str(hex16(hash)),
                    None => Value::Null,
                },
            ),
        ],
    )
}

/// Handles `cluster_sync`: the full membership view a standby router
/// mirrors. Token-gated exactly like joins when a token is configured
/// (membership is topology information).
pub(crate) fn handle_sync(value: &Value, state: &Arc<ClusterState>) -> String {
    if state.opts.join_token.is_some() {
        if let Err(refusal) = check_token(value, state, "cluster_sync") {
            return refusal;
        }
    }
    let now = Instant::now();
    let members: Vec<Value> = state
        .members_snapshot()
        .iter()
        .map(|m| {
            Value::Map(vec![
                ("shard".into(), Value::U64(u64::from(m.id))),
                ("addr".into(), Value::Str(m.addr().to_string())),
                (
                    "state".into(),
                    Value::Str(m.availability().name().to_string()),
                ),
                ("remote".into(), Value::Bool(m.is_remote())),
                (
                    "lease_ms".into(),
                    match m.lease_remaining_ms(now) {
                        Some(ms) => Value::U64(ms),
                        None => Value::Null,
                    },
                ),
            ])
        })
        .collect();
    ok_line(
        None,
        vec![
            ("role".into(), Value::Str(state.role.into())),
            (
                "generation".into(),
                Value::U64(state.generation.load(Ordering::SeqCst)),
            ),
            (
                "serving_hash".into(),
                match state.serving_hash() {
                    Some(hash) => Value::Str(hex16(hash)),
                    None => Value::Null,
                },
            ),
            (
                "lease_ms".into(),
                Value::U64(state.opts.member_lease.as_millis() as u64),
            ),
            ("members".into(), Value::Seq(members)),
        ],
    )
}

/// Configuration of a [`JoinAgent`].
#[derive(Debug, Clone)]
pub struct JoinAgentOptions {
    /// The cluster router's advertised address.
    pub router: SocketAddr,
    /// The join token the router was launched with.
    pub token: String,
    /// The address the router should reach this shard at.
    pub advertise: SocketAddr,
    /// Content hash of the checkpoint this shard serves.
    pub checkpoint_hash: u64,
    /// Connect/roundtrip deadline for join and heartbeat calls.
    pub timeout: Duration,
    /// How long to wait before retrying a refused or failed join.
    pub retry_interval: Duration,
}

impl JoinAgentOptions {
    /// Sensible defaults around the required fields.
    pub fn new(
        router: SocketAddr,
        token: impl Into<String>,
        advertise: SocketAddr,
        checkpoint_hash: u64,
    ) -> JoinAgentOptions {
        JoinAgentOptions {
            router,
            token: token.into(),
            advertise,
            checkpoint_hash,
            timeout: Duration::from_secs(2),
            retry_interval: Duration::from_millis(250),
        }
    }
}

/// The shard-side enrollment loop: joins the cluster, heartbeats at a
/// third of the granted lease, and rejoins from scratch whenever a
/// heartbeat is refused or the router is unreachable — including after a
/// router failover, since the promoted standby answers at the same
/// advertised address.
pub struct JoinAgent {
    stop: Arc<AtomicBool>,
    handle: Option<JoinHandle<()>>,
}

impl JoinAgent {
    /// Starts the enrollment loop in a background thread.
    pub fn start(opts: JoinAgentOptions) -> JoinAgent {
        let stop = Arc::new(AtomicBool::new(false));
        let flag = Arc::clone(&stop);
        let handle = thread::Builder::new()
            .name("nrpm-join-agent".into())
            .spawn(move || run_agent(&opts, &flag))
            .expect("spawn join agent thread");
        JoinAgent {
            stop,
            handle: Some(handle),
        }
    }

    /// Stops heartbeating and waits for the loop to exit. The router will
    /// eject the member when its lease lapses.
    pub fn stop(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
    }
}

impl Drop for JoinAgent {
    fn drop(&mut self) {
        self.stop();
    }
}

/// Sleeps up to `total` in small slices, returning early (true) when the
/// stop flag flips.
fn sleep_interruptibly(total: Duration, stop: &AtomicBool) -> bool {
    let deadline = Instant::now() + total;
    while Instant::now() < deadline {
        if stop.load(Ordering::SeqCst) {
            return true;
        }
        thread::sleep(Duration::from_millis(10).min(total));
    }
    stop.load(Ordering::SeqCst)
}

fn run_agent(opts: &JoinAgentOptions, stop: &AtomicBool) {
    while !stop.load(Ordering::SeqCst) {
        match join_once(opts) {
            Ok((shard, lease_ms)) => {
                let interval = Duration::from_millis((lease_ms / 3).max(10));
                loop {
                    if sleep_interruptibly(interval, stop) {
                        return;
                    }
                    if heartbeat_once(opts, shard).is_err() {
                        // Lost the router (or it forgot us — e.g. a promoted
                        // standby that never saw this member). Re-enroll.
                        break;
                    }
                }
            }
            Err(_) => {
                if sleep_interruptibly(opts.retry_interval, stop) {
                    return;
                }
            }
        }
    }
}

/// One join attempt; `Ok((shard_id, lease_ms))` on admission.
fn join_once(opts: &JoinAgentOptions) -> Result<(u32, u64), String> {
    let line = serde_json::to_string(&Value::Map(vec![
        ("cmd".into(), Value::Str("cluster_join".into())),
        ("token".into(), Value::Str(opts.token.clone())),
        ("addr".into(), Value::Str(opts.advertise.to_string())),
        (
            "checkpoint_hash".into(),
            Value::Str(hex16(opts.checkpoint_hash)),
        ),
        ("protocol".into(), Value::U64(JOIN_PROTOCOL_VERSION)),
    ]))
    .expect("serializing a join request cannot fail");
    let reply = roundtrip(opts.router, opts.timeout, &line)?;
    if !is_ok(&reply) {
        return Err(reply
            .get("error")
            .and_then(Value::as_str)
            .unwrap_or("join refused")
            .to_string());
    }
    let shard = reply
        .get("shard")
        .and_then(Value::as_u64)
        .and_then(|v| u32::try_from(v).ok())
        .ok_or("join reply lacks a shard id")?;
    let lease_ms = reply
        .get("lease_ms")
        .and_then(Value::as_u64)
        .unwrap_or(1000);
    Ok((shard, lease_ms))
}

fn heartbeat_once(opts: &JoinAgentOptions, shard: u32) -> Result<(), String> {
    let line = serde_json::to_string(&Value::Map(vec![
        ("cmd".into(), Value::Str("cluster_heartbeat".into())),
        ("token".into(), Value::Str(opts.token.clone())),
        ("shard".into(), Value::U64(u64::from(shard))),
    ]))
    .expect("serializing a heartbeat cannot fail");
    let reply = roundtrip(opts.router, opts.timeout, &line)?;
    if !is_ok(&reply) {
        return Err("heartbeat refused".into());
    }
    Ok(())
}

fn roundtrip(addr: SocketAddr, timeout: Duration, line: &str) -> Result<Value, String> {
    let mut client = Client::connect(addr, timeout).map_err(|e| e.to_string())?;
    client.roundtrip_line(line).map_err(|e| e.to_string())
}
