//! Library backing the `nrpm` command-line tool — parsing, command
//! dispatch, and rendering live here so they are unit-testable without
//! spawning processes.

#![warn(missing_docs)]

use nrpm_bench::regime::{run_regime_sweep, RegimeSweepConfig};
use nrpm_cluster::{Cluster, ClusterOptions, JoinAgent, JoinAgentOptions};
use nrpm_core::adaptive::{AdaptiveModeler, AdaptiveOptions, AdaptiveOutcome};
use nrpm_core::fingerprint::ModelKey;
use nrpm_core::noise::NoiseEstimate;
use nrpm_core::report::render_outcome;
use nrpm_core::sanitize::{sanitize, SanitizeOptions, SanitizePolicy};
use nrpm_core::threshold::ThresholdTable;
use nrpm_extrap::{parse_text_file, MeasurementSet, ModelError, RegressionModeler};
use nrpm_ingest::{FollowSource, IngestEngine, IngestOptions, PushSource, WindowOptions};
use nrpm_linalg::ThreadBudget;
use nrpm_nn::Network;
use nrpm_registry::cache::JOURNAL_FILE;
use nrpm_registry::checkpoints::VerifyIssue;
use nrpm_registry::{hex16, CheckpointRegistry, Journal, ResultCache, SwapJournal};
use nrpm_serve::adapt::AdaptOptions;
use nrpm_serve::client::{Client, RetryPolicy, RetryingClient};
use nrpm_serve::server::{ServeOptions, Server};
use nrpm_serve::store::ModelStore;
use serde::Value;
use std::fmt::Write as _;
use std::net::{SocketAddr, ToSocketAddrs};
use std::path::{Path, PathBuf};
use std::time::Duration;

/// Usage text shown on argument errors.
pub const USAGE: &str = "\
usage:
  nrpm fit <file> [--adaptive] [--strict|--lenient] [--network net.json] [--at x1,x2,...]
           [--thresholds table.json [--regime NAME]]
  nrpm noise <file>
  nrpm pretrain --out net.json [--samples N] [--epochs E] [--paper-net]
                [--train-threads N]
  nrpm serve --model net.json [--addr HOST:PORT] [--workers N] [--adapt]
             [--timeout-ms T] [--queue-depth N] [--max-conns N]
             [--io-timeout-ms T] [--work-delay-ms T]
             [--cache-capacity N] [--cache-dir DIR] [--train-threads N]
             [--adapt-interval MS] [--swap-smape-tolerance FRAC]
             [--feed] [--thresholds table.json [--regime NAME]] [--quantize]
  nrpm ingest [--follow FILE] [--push-addr HOST:PORT] [--state-dir DIR]
              [--registry-dir DIR] [--model net.json] [--interval-ms T]
              [--once | --duration-ms T] [--window-capacity N]
              [--min-points N] [--fire-interval N] [--max-records N]
              [--allowed-lateness T]
  nrpm sweep [--out FILE] [--thresholds-out FILE] [--functions N]
             [--params M] [--noise l1,l2,...] [--matrix-noise L]
             [--seed S] [--quick]
  nrpm query health|stats|shutdown [--addr HOST:PORT] [--timeout-ms T]
  nrpm query model <file> [--at x1,x2,...] [--addr HOST:PORT] [--timeout-ms T]
  nrpm query batch <file>... [--addr HOST:PORT] [--timeout-ms T]
  query flags: [--retries N] retry overloaded/timeout responses and
               transport failures with backoff + jitter (default 0)
  nrpm registry stats|verify|gc --dir DIR [--cache-capacity N]
  registry gc flags: [--dry-run] list what gc would remove without
               touching disk
  nrpm registry warm --dir DIR --model net.json <file>... [--ref NAME] [--adapt]
  nrpm cluster launch --model net.json [--shards N] [--addr HOST:PORT]
               [--workers N] [--vnodes N] [--registry-dir DIR] [--debug-hooks]
               [--replication R] [--join-token TOKEN] [--lease-ms MS]
               [--standby]
  nrpm cluster status [--addr HOST:PORT] [--timeout-ms T]
  nrpm cluster drain|kill <shard> [--addr HOST:PORT] [--timeout-ms T]
  nrpm cluster rollout --model net.json [--addr HOST:PORT] [--timeout-ms T]
  serve may also enroll in a cluster as a network shard:
  nrpm serve ... --join ROUTER:PORT --join-token TOKEN [--advertise HOST:PORT]

measurement files: PARAMS/POINT text format, or a MeasurementSet .json

input handling:
  --lenient (default)  repair corrupt values (drop NaN/Inf/zeros, clamp
                       spikes) and report what changed
  --strict             refuse input that would need any repair

serving:
  `serve` loads the checkpoint once into a warm store and answers
  newline-delimited JSON requests until a shutdown request drains it;
  `query` is the matching client (default --addr 127.0.0.1:7077)

overload behavior:
  once --queue-depth jobs wait for a worker, further modeling requests
  are shed immediately with an `overloaded` error; connections past
  --max-conns are refused the same way; a connection that stalls
  mid-request or blocks writes for --io-timeout-ms is closed.
  --work-delay-ms adds simulated service time per job (testing only)

threading:
  --train-threads sets the worker threads for corpus generation and
  training (0 = the process thread budget, which honors NRPM_THREADS
  and defaults to the machine's cores). Results are bitwise identical
  at every thread count. `serve` divides the budget among its workers;
  with --adapt-interval, a quarter of the budget is reserved for the
  adaptation engine's retraining before the division.

background adaptation:
  --adapt-interval MS runs a supervised background engine that
  accumulates per-tenant noise profiles from live requests, retrains
  the network, shadow-validates the candidate against mirrored
  traffic, and hot-swaps it in through a crash-safe two-phase journal
  (stored under --cache-dir; memory-only without one). A swap whose
  live SMAPE regresses afterwards is rolled back automatically.
  --swap-smape-tolerance FRAC (default 0.10) sets the shadow gate.
  --feed (requires --cache-dir) additionally watches the registry's
  `ingest-candidate` ref for models published by an external `nrpm
  ingest` and hot-swaps them in through the same two-phase journal;
  the post-swap watchdog still applies.

streaming ingestion:
  `ingest` tails live measurement sources — --follow FILE follows a
  PARAMS/POINT log (with KERNEL/TENANT/TIME directives) through
  appends and rotations, --push-addr accepts newline-JSON records
  over TCP — sanitizes each record, assembles per-(kernel, tenant)
  sliding windows (watermark lateness via --allowed-lateness, bounded
  memory via --window-capacity/--max-records with shed-oldest
  backpressure), and re-models each due window (--min-points,
  --fire-interval) through the adaptive modeler seeded from --model,
  publishing adapted networks into --registry under the
  `ingest-candidate` ref for `serve --feed`. Progress is journaled
  under --state-dir: a killed ingester resumes from its checkpoint
  with no record duplicated or dropped. --once drains the current
  file and exits; --duration-ms bounds a live run (default: forever).

regime sweeping:
  `sweep` grids the four noise regimes (uniform, heteroscedastic,
  spike, device) train × test: per regime it sweeps --noise levels,
  locates the DNN/regression accuracy crossover, and calibrates a
  switching-threshold table (--thresholds-out) that `fit`/`serve`
  load via --thresholds (with --regime selecting the row; default
  uniform). The full result including the transfer matrix at
  --matrix-noise goes to --out (BENCH_ingest.json). --quick shrinks
  the network for CI-sized runs.

caching:
  `serve` memoizes model outcomes per (measurement set, checkpoint,
  adaptation) — identical concurrent requests collapse into one modeler
  run; --cache-capacity 0 disables it, --cache-dir journals outcomes to
  disk so they survive restarts. `registry` maintains such a directory:
  `stats` summarizes it, `verify` is a read-only integrity sweep (exit 4
  on damage), `gc` drops unreferenced checkpoints and compacts the
  journal — checkpoints the swap journal still names (serving,
  rollback target, pending candidates) are pinned; --dry-run lists
  the doomed and pinned hashes without deleting anything — and `warm`
  stores a checkpoint and pre-models files into the cache (pass
  --adapt iff the server runs with --adapt)

cluster serving:
  `cluster launch` starts N backend shards behind one router speaking
  the same protocol; requests route by measurement-set fingerprint
  over a consistent-hash ring, so every shard keeps its own warm
  cache. A dead shard is ejected and its keys fail over to its ring
  successors; a returning shard must answer consecutive health probes
  before traffic comes back. --registry-dir distributes the serving
  checkpoint through a content-addressed registry so every shard
  serves the same hash. `status` renders per-shard state plus
  checkpoint/epoch divergence; `drain` retires one shard gracefully;
  `kill` (needs --debug-hooks on the router) stops one abruptly for
  failover drills. `query` works against a router unchanged — model
  replies carry a `served by shard ...` trailer.

replication & cross-machine membership:
  --replication R fans each request out to the first R distinct ring
  successors in parallel; the answer is resolved by served_hash/epoch
  quorum and replica disagreement is surfaced in `status`. --join-token
  opens the cluster to network shards: an `nrpm serve --join ROUTER
  --join-token T` on another host enrolls through a token-authenticated
  handshake (its checkpoint hash is verified over the wire) and stays
  enrolled by heartbeat lease (--lease-ms, default 2000); a lapsed lease
  ejects the member until it rejoins. --standby runs a warm standby
  router that mirrors membership via state sync and takes over the
  advertised address when the primary stops answering. `cluster
  rollout` upgrades the fleet one shard at a time (drain, sync, swap,
  verify over the wire, readmit), journaled in the registry so a crash
  mid-rollout recovers to a single-epoch fleet at the next launch.

exit codes: 0 success, 2 usage, 3 unreadable or malformed input,
            4 recoverable modeling failure, 5 fatal modeling failure";

/// Default address of `nrpm serve` and `nrpm query`.
pub const DEFAULT_ADDR: &str = "127.0.0.1:7077";

/// An error carrying the process exit code of its class: `2` usage,
/// `3` I/O or parse, `4` recoverable modeling error, `5` fatal modeling
/// error.
#[derive(Debug, Clone, PartialEq)]
pub struct CliError {
    /// Human-readable description.
    pub message: String,
    /// Process exit code.
    pub code: u8,
}

impl CliError {
    fn io(message: impl Into<String>) -> Self {
        CliError {
            message: message.into(),
            code: 3,
        }
    }

    fn model(e: ModelError) -> Self {
        let code = if e.is_recoverable() { 4 } else { 5 };
        CliError {
            message: e.to_string(),
            code,
        }
    }
}

impl std::fmt::Display for CliError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.message)
    }
}

/// A parsed command-line invocation.
#[derive(Debug, Clone, PartialEq)]
pub enum Invocation {
    /// Fit a model to a measurement file.
    Fit {
        /// Input file.
        file: PathBuf,
        /// Use the adaptive (DNN) modeler instead of regression only.
        adaptive: bool,
        /// Load a pretrained network instead of pretraining now.
        network: Option<PathBuf>,
        /// Evaluate the fitted model at this point.
        at: Option<Vec<f64>>,
        /// How corrupt input is handled (`--strict` / `--lenient`).
        policy: SanitizePolicy,
        /// Calibrated threshold table (from `nrpm sweep`) for the
        /// adaptive switch.
        thresholds: Option<PathBuf>,
        /// Regime row of the threshold table (default `uniform`).
        regime: Option<String>,
    },
    /// Analyze the noise of a measurement file.
    Noise {
        /// Input file.
        file: PathBuf,
    },
    /// Pretrain a network and save it.
    Pretrain {
        /// Output path.
        out: PathBuf,
        /// Samples per class.
        samples: usize,
        /// Training epochs.
        epochs: usize,
        /// Use the paper's full architecture.
        paper_net: bool,
        /// Worker threads for corpus generation and training (0 = the
        /// process thread budget).
        train_threads: usize,
    },
    /// Run the model-serving subsystem until it is drained.
    Serve {
        /// Pretrained checkpoint to warm the model store with.
        model: PathBuf,
        /// Listen address.
        addr: String,
        /// Worker threads.
        workers: usize,
        /// Run domain adaptation for single `model` requests.
        adapt: bool,
        /// Default per-request deadline in milliseconds.
        timeout_ms: Option<u64>,
        /// Admission-queue depth before requests are shed.
        queue_depth: usize,
        /// Maximum live connections before new ones are shed.
        max_conns: usize,
        /// Per-connection I/O stall limit in milliseconds.
        io_timeout_ms: Option<u64>,
        /// Simulated per-job service time in milliseconds (testing knob).
        work_delay_ms: Option<u64>,
        /// Result-cache capacity (0 disables caching and single-flight).
        cache_capacity: usize,
        /// Journal cached outcomes under this directory.
        cache_dir: Option<PathBuf>,
        /// Total thread budget shared by the workers (0 = the process
        /// thread budget).
        train_threads: usize,
        /// Run the background adaptation engine, cycling every this many
        /// milliseconds. `None` disables the engine.
        adapt_interval_ms: Option<u64>,
        /// Shadow-validation gate: a candidate may exceed the incumbent's
        /// SMAPE on mirrored requests by at most this fraction.
        swap_smape_tolerance: Option<f64>,
        /// Enroll as a network shard with the cluster router at this
        /// address (requires `--join-token`).
        join: Option<String>,
        /// Join token the router was launched with.
        join_token: Option<String>,
        /// Address the router should reach this shard at (defaults to the
        /// bound listen address).
        advertise: Option<String>,
        /// Watch the registry's ingest-candidate ref for externally
        /// published models and hot-swap them in (requires `--cache-dir`).
        feed: bool,
        /// Calibrated threshold table (from `nrpm sweep`) for the
        /// adaptive switch.
        thresholds: Option<PathBuf>,
        /// Regime row of the threshold table (default `uniform`).
        regime: Option<String>,
        /// Serve inference through the int8-quantized fast path when the
        /// accuracy gate accepts it (falls back to f64 otherwise).
        quantize: bool,
    },
    /// Tail live measurement sources, window them, re-model, publish.
    Ingest {
        /// Measurement log to follow through appends and rotations.
        follow: Option<PathBuf>,
        /// Accept newline-JSON push records on this address.
        push_addr: Option<String>,
        /// Journal the ingest checkpoint here (crash-safe resume).
        state_dir: Option<PathBuf>,
        /// Publish adapted networks into this checkpoint registry.
        registry_dir: Option<PathBuf>,
        /// Base network the windowed re-modeling adapts from.
        model: Option<PathBuf>,
        /// Idle poll interval in milliseconds.
        interval_ms: u64,
        /// Drain the current file contents, checkpoint, and exit.
        once: bool,
        /// Stop after this many milliseconds (`None` = run forever).
        duration_ms: Option<u64>,
        /// Sliding-window capacity per (kernel, tenant).
        window_capacity: usize,
        /// Minimum records in a window before it may fire.
        min_points: usize,
        /// Accepted records between fires of the same window.
        fire_interval: usize,
        /// Global record budget across all windows (shed-oldest past it).
        max_records: usize,
        /// Watermark lateness allowance (event-time units).
        allowed_lateness: f64,
    },
    /// Run the train-regime × test-regime noise sweep and calibrate the
    /// switching-threshold table.
    Sweep {
        /// Write the full result (curves, thresholds, transfer matrix)
        /// as JSON here.
        out: Option<PathBuf>,
        /// Write just the loadable threshold table as JSON here.
        thresholds_out: Option<PathBuf>,
        /// Functions generated per (regime, level) cell.
        functions: usize,
        /// Number of model parameters `m`.
        params: usize,
        /// Noise levels of the crossover curves (ascending).
        noise_levels: Option<Vec<f64>>,
        /// Noise level of the transfer-matrix cells.
        matrix_noise: Option<f64>,
        /// Base RNG seed.
        seed: u64,
        /// Shrink the network and corpus to CI size.
        quick: bool,
    },
    /// Inspect or maintain a registry/cache directory.
    Registry {
        /// What to do.
        action: RegistryAction,
        /// The registry/cache root directory.
        dir: PathBuf,
        /// Checkpoint to store (`warm` only).
        model: Option<PathBuf>,
        /// Measurement files to pre-model into the cache (`warm` only).
        files: Vec<PathBuf>,
        /// Ref name pointed at the warmed checkpoint (default `default`).
        ref_name: Option<String>,
        /// Cache capacity for `gc` compaction and `warm` insertion.
        cache_capacity: usize,
        /// Warm with domain adaptation (must match the server's --adapt).
        adapt: bool,
        /// `gc` only: report what would be removed, touch nothing.
        dry_run: bool,
    },
    /// Operate the sharded serving tier.
    Cluster {
        /// What to do.
        action: ClusterAction,
        /// Checkpoint every shard serves (`launch` only).
        model: Option<PathBuf>,
        /// Backend shard count (`launch` only).
        shards: usize,
        /// Router address: bind address for `launch`, target otherwise.
        addr: String,
        /// Worker threads per shard (`launch` only).
        workers: usize,
        /// Virtual nodes per shard on the routing ring (`launch` only).
        vnodes: usize,
        /// Distribute the serving checkpoint through a registry here
        /// (`launch` only).
        registry_dir: Option<PathBuf>,
        /// Enable the `cluster_kill` test hook (`launch` only).
        debug_hooks: bool,
        /// Target shard id (`drain`/`kill` only).
        shard: Option<u32>,
        /// Per-request deadline in milliseconds (every action but
        /// `launch`).
        timeout_ms: Option<u64>,
        /// Replicas per key (`launch` only; 1 disables replication).
        replication: usize,
        /// Token network shards must present to join (`launch` only;
        /// absent = closed cluster).
        join_token: Option<String>,
        /// Heartbeat lease granted to network members, in milliseconds
        /// (`launch` only).
        lease_ms: Option<u64>,
        /// Run a warm standby router for failover (`launch` only).
        standby: bool,
    },
    /// Query a running server.
    Query {
        /// What to ask.
        what: QueryKind,
        /// Server address.
        addr: String,
        /// Measurement files (for `model` and `batch`).
        files: Vec<PathBuf>,
        /// Evaluate the fitted model at this point (for `model`).
        at: Option<Vec<f64>>,
        /// Per-request deadline in milliseconds.
        timeout_ms: Option<u64>,
        /// Retry attempts for shed/timed-out requests (0 = no retries).
        retries: u32,
    },
}

/// The sub-command of `nrpm query`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum QueryKind {
    /// Liveness probe.
    Health,
    /// Metrics snapshot.
    Stats,
    /// Graceful drain.
    Shutdown,
    /// Model one measurement file.
    Model,
    /// Model several files through one coalesced batch request.
    Batch,
}

/// The sub-command of `nrpm registry`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RegistryAction {
    /// Summarize checkpoints, refs, and the cache journal.
    Stats,
    /// Read-only integrity sweep; exit 4 when damage is found.
    Verify,
    /// Drop unreferenced checkpoints and compact the cache journal.
    Gc,
    /// Store a checkpoint and pre-model measurement files into the cache.
    Warm,
}

/// The sub-command of `nrpm cluster`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ClusterAction {
    /// Start shards + router and run until the tier is drained.
    Launch,
    /// Render a running router's per-shard state and divergence view.
    Status,
    /// Gracefully retire one shard from rotation.
    Drain,
    /// Abruptly stop one shard (router must run with --debug-hooks).
    Kill,
    /// Roll a new checkpoint out across the fleet one shard at a time.
    Rollout,
}

impl Invocation {
    /// Parses raw arguments (without the binary name).
    pub fn parse(args: &[String]) -> Result<Invocation, String> {
        let mut iter = args.iter().peekable();
        let command = iter.next().ok_or("missing command")?;
        let mut positional: Vec<String> = Vec::new();
        let mut flags: Vec<(String, Option<String>)> = Vec::new();
        while let Some(arg) = iter.next() {
            if let Some(name) = arg.strip_prefix("--") {
                let value = match iter.peek() {
                    Some(next) if !next.starts_with("--") => Some(iter.next().unwrap().clone()),
                    _ => None,
                };
                flags.push((name.to_string(), value));
            } else {
                positional.push(arg.clone());
            }
        }
        let get_flag = |name: &str| -> Option<&Option<String>> {
            flags.iter().find(|(n, _)| n == name).map(|(_, v)| v)
        };
        let get_value = |name: &str| -> Result<Option<String>, String> {
            match get_flag(name) {
                None => Ok(None),
                Some(Some(v)) => Ok(Some(v.clone())),
                Some(None) => Err(format!("--{name} needs a value")),
            }
        };

        match command.as_str() {
            "fit" => {
                let file = positional.first().ok_or("fit: missing <file>")?.into();
                let at = get_value("at")?
                    .as_deref()
                    .map(parse_point_list)
                    .transpose()?;
                let policy = match (get_flag("strict").is_some(), get_flag("lenient").is_some()) {
                    (true, true) => return Err("--strict and --lenient conflict".to_string()),
                    (true, false) => SanitizePolicy::Strict,
                    _ => SanitizePolicy::Lenient,
                };
                let adaptive = get_flag("adaptive").is_some();
                let thresholds = get_value("thresholds")?.map(PathBuf::from);
                let regime = get_value("regime")?;
                if thresholds.is_some() && !adaptive {
                    return Err("fit: --thresholds requires --adaptive".to_string());
                }
                if regime.is_some() && thresholds.is_none() {
                    return Err("fit: --regime requires --thresholds".to_string());
                }
                Ok(Invocation::Fit {
                    file,
                    adaptive,
                    network: get_value("network")?.map(PathBuf::from),
                    at,
                    policy,
                    thresholds,
                    regime,
                })
            }
            "noise" => Ok(Invocation::Noise {
                file: positional.first().ok_or("noise: missing <file>")?.into(),
            }),
            "pretrain" => Ok(Invocation::Pretrain {
                out: get_value("out")?
                    .ok_or("pretrain: --out is required")?
                    .into(),
                samples: get_value("samples")?
                    .map(|s| s.parse().map_err(|_| "--samples: not a number".to_string()))
                    .transpose()?
                    .unwrap_or(500),
                epochs: get_value("epochs")?
                    .map(|s| s.parse().map_err(|_| "--epochs: not a number".to_string()))
                    .transpose()?
                    .unwrap_or(20),
                paper_net: get_flag("paper-net").is_some(),
                train_threads: get_value("train-threads")?
                    .map(|s| {
                        s.parse()
                            .map_err(|_| "--train-threads: not a number".to_string())
                    })
                    .transpose()?
                    .unwrap_or(0),
            }),
            "serve" => {
                let join = get_value("join")?;
                let join_token = get_value("join-token")?;
                let advertise = get_value("advertise")?;
                if join.is_none() && (join_token.is_some() || advertise.is_some()) {
                    return Err("serve: --join-token and --advertise require --join".to_string());
                }
                if join.is_some() && join_token.is_none() {
                    return Err("serve: --join requires --join-token".to_string());
                }
                let feed = get_flag("feed").is_some();
                if feed && get_flag("cache-dir").is_none() {
                    return Err("serve: --feed requires --cache-dir".to_string());
                }
                let thresholds = get_value("thresholds")?.map(PathBuf::from);
                let regime = get_value("regime")?;
                if regime.is_some() && thresholds.is_none() {
                    return Err("serve: --regime requires --thresholds".to_string());
                }
                Ok(Invocation::Serve {
                    model: get_value("model")?
                        .ok_or("serve: --model is required")?
                        .into(),
                    addr: get_value("addr")?.unwrap_or_else(|| DEFAULT_ADDR.to_string()),
                    workers: get_value("workers")?
                        .map(|s| s.parse().map_err(|_| "--workers: not a number".to_string()))
                        .transpose()?
                        .unwrap_or(4),
                    adapt: get_flag("adapt").is_some(),
                    timeout_ms: get_value("timeout-ms")?
                        .map(|s| {
                            s.parse()
                                .map_err(|_| "--timeout-ms: not a number".to_string())
                        })
                        .transpose()?,
                    queue_depth: get_value("queue-depth")?
                        .map(|s| {
                            s.parse()
                                .map_err(|_| "--queue-depth: not a number".to_string())
                        })
                        .transpose()?
                        .unwrap_or(64),
                    max_conns: get_value("max-conns")?
                        .map(|s| {
                            s.parse()
                                .map_err(|_| "--max-conns: not a number".to_string())
                        })
                        .transpose()?
                        .unwrap_or(256),
                    io_timeout_ms: get_value("io-timeout-ms")?
                        .map(|s| {
                            s.parse()
                                .map_err(|_| "--io-timeout-ms: not a number".to_string())
                        })
                        .transpose()?,
                    work_delay_ms: get_value("work-delay-ms")?
                        .map(|s| {
                            s.parse()
                                .map_err(|_| "--work-delay-ms: not a number".to_string())
                        })
                        .transpose()?,
                    cache_capacity: get_value("cache-capacity")?
                        .map(|s| {
                            s.parse()
                                .map_err(|_| "--cache-capacity: not a number".to_string())
                        })
                        .transpose()?
                        .unwrap_or(1024),
                    cache_dir: get_value("cache-dir")?.map(PathBuf::from),
                    train_threads: get_value("train-threads")?
                        .map(|s| {
                            s.parse()
                                .map_err(|_| "--train-threads: not a number".to_string())
                        })
                        .transpose()?
                        .unwrap_or(0),
                    adapt_interval_ms: {
                        let interval = get_value("adapt-interval")?
                            .map(|s| {
                                s.parse()
                                    .map_err(|_| "--adapt-interval: not a number".to_string())
                            })
                            .transpose()?;
                        if interval == Some(0) {
                            return Err("--adapt-interval: must be at least 1 ms".to_string());
                        }
                        interval
                    },
                    swap_smape_tolerance: {
                        let tolerance = get_value("swap-smape-tolerance")?
                            .map(|s| {
                                s.parse::<f64>()
                                    .map_err(|_| "--swap-smape-tolerance: not a number".to_string())
                            })
                            .transpose()?;
                        match tolerance {
                            Some(t) if !t.is_finite() || t < 0.0 => {
                                return Err(
                                    "--swap-smape-tolerance: must be a non-negative fraction"
                                        .to_string(),
                                )
                            }
                            Some(_) if get_flag("adapt-interval").is_none() => {
                                return Err(
                                    "--swap-smape-tolerance requires --adapt-interval".to_string()
                                )
                            }
                            _ => tolerance,
                        }
                    },
                    join,
                    join_token,
                    advertise,
                    feed,
                    thresholds,
                    regime,
                    quantize: get_flag("quantize").is_some(),
                })
            }
            "ingest" => {
                let follow = get_value("follow")?.map(PathBuf::from);
                let push_addr = get_value("push-addr")?;
                if follow.is_none() && push_addr.is_none() {
                    return Err("ingest: need --follow and/or --push-addr".to_string());
                }
                let once = get_flag("once").is_some();
                if once && follow.is_none() {
                    return Err("ingest: --once requires --follow".to_string());
                }
                let duration_ms = get_value("duration-ms")?
                    .map(|s| {
                        s.parse()
                            .map_err(|_| "--duration-ms: not a number".to_string())
                    })
                    .transpose()?;
                if once && duration_ms.is_some() {
                    return Err("ingest: --once and --duration-ms conflict".to_string());
                }
                let defaults = WindowOptions::default();
                let parse_usize = |name: &str, default: usize| -> Result<usize, String> {
                    get_value(name)?
                        .map(|s| s.parse().map_err(|_| format!("--{name}: not a number")))
                        .transpose()
                        .map(|v| v.unwrap_or(default))
                };
                let allowed_lateness = get_value("allowed-lateness")?
                    .map(|s| {
                        s.parse::<f64>()
                            .map_err(|_| "--allowed-lateness: not a number".to_string())
                    })
                    .transpose()?
                    .unwrap_or(defaults.allowed_lateness);
                if allowed_lateness.is_nan() || allowed_lateness < 0.0 {
                    return Err("--allowed-lateness: must be non-negative".to_string());
                }
                Ok(Invocation::Ingest {
                    follow,
                    push_addr,
                    state_dir: get_value("state-dir")?.map(PathBuf::from),
                    registry_dir: get_value("registry-dir")?.map(PathBuf::from),
                    model: get_value("model")?.map(PathBuf::from),
                    interval_ms: get_value("interval-ms")?
                        .map(|s| {
                            s.parse()
                                .map_err(|_| "--interval-ms: not a number".to_string())
                        })
                        .transpose()?
                        .unwrap_or(200),
                    once,
                    duration_ms,
                    window_capacity: parse_usize("window-capacity", defaults.capacity)?,
                    min_points: parse_usize("min-points", defaults.min_points)?,
                    fire_interval: parse_usize("fire-interval", defaults.fire_interval)?,
                    max_records: parse_usize("max-records", defaults.max_total_records)?,
                    allowed_lateness,
                })
            }
            "sweep" => {
                let noise_levels = get_value("noise")?
                    .as_deref()
                    .map(parse_point_list)
                    .transpose()?;
                if let Some(levels) = &noise_levels {
                    if levels.len() < 2 {
                        return Err("--noise: need at least two levels".to_string());
                    }
                    if levels.windows(2).any(|w| w[1] <= w[0]) {
                        return Err("--noise: levels must be strictly ascending".to_string());
                    }
                }
                let matrix_noise = get_value("matrix-noise")?
                    .map(|s| {
                        s.parse::<f64>()
                            .map_err(|_| "--matrix-noise: not a number".to_string())
                    })
                    .transpose()?;
                if matrix_noise.is_some_and(|m| m.is_nan() || m <= 0.0) {
                    return Err("--matrix-noise: must be positive".to_string());
                }
                Ok(Invocation::Sweep {
                    out: get_value("out")?.map(PathBuf::from),
                    thresholds_out: get_value("thresholds-out")?.map(PathBuf::from),
                    functions: get_value("functions")?
                        .map(|s| {
                            s.parse()
                                .map_err(|_| "--functions: not a number".to_string())
                        })
                        .transpose()?
                        .unwrap_or(100),
                    params: get_value("params")?
                        .map(|s| s.parse().map_err(|_| "--params: not a number".to_string()))
                        .transpose()?
                        .unwrap_or(1),
                    noise_levels,
                    matrix_noise,
                    seed: get_value("seed")?
                        .map(|s| s.parse().map_err(|_| "--seed: not a number".to_string()))
                        .transpose()?
                        .unwrap_or(0x1265),
                    quick: get_flag("quick").is_some(),
                })
            }
            "registry" => {
                let action = match positional.first().map(String::as_str) {
                    Some("stats") => RegistryAction::Stats,
                    Some("verify") => RegistryAction::Verify,
                    Some("gc") => RegistryAction::Gc,
                    Some("warm") => RegistryAction::Warm,
                    Some(other) => return Err(format!("registry: unknown action `{other}`")),
                    None => return Err("registry: missing action".to_string()),
                };
                let files: Vec<PathBuf> = positional[1..].iter().map(PathBuf::from).collect();
                let model = get_value("model")?.map(PathBuf::from);
                match action {
                    RegistryAction::Warm if model.is_none() => {
                        return Err("registry warm: --model is required".to_string())
                    }
                    RegistryAction::Warm => {}
                    _ if !files.is_empty() => {
                        return Err("registry: this action takes no files".to_string())
                    }
                    _ => {}
                }
                let dry_run = get_flag("dry-run").is_some();
                if dry_run && action != RegistryAction::Gc {
                    return Err("registry: --dry-run only applies to gc".to_string());
                }
                Ok(Invocation::Registry {
                    action,
                    dir: get_value("dir")?
                        .ok_or("registry: --dir is required")?
                        .into(),
                    model,
                    files,
                    ref_name: get_value("ref")?,
                    cache_capacity: get_value("cache-capacity")?
                        .map(|s| {
                            s.parse()
                                .map_err(|_| "--cache-capacity: not a number".to_string())
                        })
                        .transpose()?
                        .unwrap_or(1024),
                    adapt: get_flag("adapt").is_some(),
                    dry_run,
                })
            }
            "cluster" => {
                let action = match positional.first().map(String::as_str) {
                    Some("launch") => ClusterAction::Launch,
                    Some("status") => ClusterAction::Status,
                    Some("drain") => ClusterAction::Drain,
                    Some("kill") => ClusterAction::Kill,
                    Some("rollout") => ClusterAction::Rollout,
                    Some(other) => return Err(format!("cluster: unknown action `{other}`")),
                    None => return Err("cluster: missing action".to_string()),
                };
                let rest = &positional[1..];
                let shard = match action {
                    ClusterAction::Drain | ClusterAction::Kill => {
                        let raw = match rest {
                            [one] => one,
                            _ => {
                                return Err(
                                    "cluster drain|kill: exactly one <shard> required".to_string()
                                )
                            }
                        };
                        Some(
                            raw.parse::<u32>()
                                .map_err(|_| format!("cluster: `{raw}` is not a shard id"))?,
                        )
                    }
                    _ if !rest.is_empty() => {
                        return Err("cluster: this action takes no extra arguments".to_string())
                    }
                    _ => None,
                };
                let model = get_value("model")?.map(PathBuf::from);
                let needs_model = matches!(action, ClusterAction::Launch | ClusterAction::Rollout);
                if needs_model && model.is_none() {
                    return Err(format!(
                        "cluster {}: --model is required",
                        if action == ClusterAction::Launch {
                            "launch"
                        } else {
                            "rollout"
                        }
                    ));
                }
                if !needs_model && model.is_some() {
                    return Err("cluster: --model only applies to launch and rollout".to_string());
                }
                if action != ClusterAction::Launch {
                    for flag in [
                        "shards",
                        "workers",
                        "vnodes",
                        "registry-dir",
                        "replication",
                        "join-token",
                        "lease-ms",
                    ] {
                        if get_flag(flag).is_some() {
                            return Err(format!("cluster: --{flag} only applies to launch"));
                        }
                    }
                    for flag in ["debug-hooks", "standby"] {
                        if get_flag(flag).is_some() {
                            return Err(format!("cluster: --{flag} only applies to launch"));
                        }
                    }
                }
                let shards = get_value("shards")?
                    .map(|s| s.parse().map_err(|_| "--shards: not a number".to_string()))
                    .transpose()?
                    .unwrap_or(3);
                if shards == 0 {
                    return Err("--shards: need at least one shard".to_string());
                }
                let vnodes = get_value("vnodes")?
                    .map(|s| s.parse().map_err(|_| "--vnodes: not a number".to_string()))
                    .transpose()?
                    .unwrap_or(nrpm_cluster::DEFAULT_VNODES);
                if vnodes == 0 {
                    return Err("--vnodes: need at least one virtual node".to_string());
                }
                let replication = get_value("replication")?
                    .map(|s| {
                        s.parse()
                            .map_err(|_| "--replication: not a number".to_string())
                    })
                    .transpose()?
                    .unwrap_or(1);
                if replication == 0 {
                    return Err("--replication: need at least one replica".to_string());
                }
                let lease_ms = get_value("lease-ms")?
                    .map(|s| {
                        s.parse()
                            .map_err(|_| "--lease-ms: not a number".to_string())
                    })
                    .transpose()?;
                if lease_ms == Some(0) {
                    return Err("--lease-ms: must be at least 1 ms".to_string());
                }
                Ok(Invocation::Cluster {
                    action,
                    model,
                    shards,
                    addr: get_value("addr")?.unwrap_or_else(|| DEFAULT_ADDR.to_string()),
                    workers: get_value("workers")?
                        .map(|s| s.parse().map_err(|_| "--workers: not a number".to_string()))
                        .transpose()?
                        .unwrap_or(2),
                    vnodes,
                    registry_dir: get_value("registry-dir")?.map(PathBuf::from),
                    debug_hooks: get_flag("debug-hooks").is_some(),
                    shard,
                    timeout_ms: get_value("timeout-ms")?
                        .map(|s| {
                            s.parse()
                                .map_err(|_| "--timeout-ms: not a number".to_string())
                        })
                        .transpose()?,
                    replication,
                    join_token: get_value("join-token")?,
                    lease_ms,
                    standby: get_flag("standby").is_some(),
                })
            }
            "query" => {
                let what = match positional.first().map(String::as_str) {
                    Some("health") => QueryKind::Health,
                    Some("stats") => QueryKind::Stats,
                    Some("shutdown") => QueryKind::Shutdown,
                    Some("model") => QueryKind::Model,
                    Some("batch") => QueryKind::Batch,
                    Some(other) => return Err(format!("query: unknown request `{other}`")),
                    None => return Err("query: missing request kind".to_string()),
                };
                let files: Vec<PathBuf> = positional[1..].iter().map(PathBuf::from).collect();
                match what {
                    QueryKind::Model if files.len() != 1 => {
                        return Err("query model: exactly one <file> required".to_string())
                    }
                    QueryKind::Batch if files.is_empty() => {
                        return Err("query batch: at least one <file> required".to_string())
                    }
                    QueryKind::Health | QueryKind::Stats | QueryKind::Shutdown
                        if !files.is_empty() =>
                    {
                        return Err("query: this request takes no files".to_string())
                    }
                    _ => {}
                }
                Ok(Invocation::Query {
                    what,
                    addr: get_value("addr")?.unwrap_or_else(|| DEFAULT_ADDR.to_string()),
                    files,
                    at: get_value("at")?
                        .as_deref()
                        .map(parse_point_list)
                        .transpose()?,
                    timeout_ms: get_value("timeout-ms")?
                        .map(|s| {
                            s.parse()
                                .map_err(|_| "--timeout-ms: not a number".to_string())
                        })
                        .transpose()?,
                    retries: get_value("retries")?
                        .map(|s| s.parse().map_err(|_| "--retries: not a number".to_string()))
                        .transpose()?
                        .unwrap_or(0),
                })
            }
            other => Err(format!("unknown command `{other}`")),
        }
    }
}

/// Parses a `--at x1,x2,...` point list.
fn parse_point_list(raw: &str) -> Result<Vec<f64>, String> {
    raw.split(',')
        .map(|s| {
            s.trim()
                .parse::<f64>()
                .map_err(|_| format!("--at: `{s}` is not a number"))
        })
        .collect()
}

/// Loads a measurement set from a text or JSON file. Every failure carries
/// the offending path (and, for text files, the line number).
pub fn load_measurements(path: &Path) -> Result<MeasurementSet, String> {
    if path.extension().is_some_and(|e| e == "json") {
        let raw = std::fs::read_to_string(path).map_err(|e| format!("{}: {e}", path.display()))?;
        MeasurementSet::from_json(&raw).map_err(|e| format!("{}: {e}", path.display()))
    } else {
        parse_text_file(path)
            .map(|named| named.set)
            .map_err(|e| e.to_string())
    }
}

/// Executes an invocation and returns the text to print.
pub fn run(invocation: &Invocation) -> Result<String, CliError> {
    match invocation {
        Invocation::Fit {
            file,
            adaptive,
            network,
            at,
            policy,
            thresholds,
            regime,
        } => {
            let set = load_measurements(file).map_err(CliError::io)?;
            let mut out = String::new();
            if *adaptive {
                let options = AdaptiveOptions {
                    sanitize: SanitizeOptions {
                        policy: *policy,
                        ..Default::default()
                    },
                    thresholds: thresholds
                        .as_deref()
                        .map(|path| load_switch_thresholds(path, regime.as_deref()))
                        .transpose()?,
                    ..Default::default()
                };
                let mut modeler = match network {
                    Some(path) => {
                        let net = Network::load(path)
                            .map_err(|e| CliError::io(format!("{}: {e}", path.display())))?;
                        AdaptiveModeler::from_network(options, net)
                    }
                    None => {
                        let _ = writeln!(out, "pretraining the DNN (pass --network to skip)...");
                        AdaptiveModeler::pretrained(options)
                    }
                };
                let outcome = modeler.model(&set).map_err(CliError::model)?;
                out.push_str(&render_outcome(&outcome));
                if let Some(point) = at {
                    let _ = writeln!(
                        out,
                        "prediction at {:?}: {:.6}",
                        point,
                        outcome.result.model.evaluate(point)
                    );
                }
            } else {
                // The regression-only path honors the same input policy.
                let sanitize_opts = SanitizeOptions {
                    policy: *policy,
                    ..Default::default()
                };
                let (clean, quality) = sanitize(&set, &sanitize_opts);
                if *policy == SanitizePolicy::Strict && !quality.is_clean() {
                    return Err(CliError::model(ModelError::CorruptData {
                        dropped: quality.dropped() + quality.points_dropped,
                        clamped: quality.clamped,
                    }));
                }
                if clean.is_empty() {
                    return Err(CliError::model(ModelError::NoUsableData));
                }
                let result = RegressionModeler::default()
                    .model(&clean)
                    .map_err(CliError::model)?;
                let _ = writeln!(out, "model:      {}", result.model);
                let _ = writeln!(out, "growth:     {}", result.model.asymptotic_string());
                let _ = writeln!(
                    out,
                    "selection:  regression modeler (cv-SMAPE {:.3}%, fit-SMAPE {:.3}%)",
                    result.cv_smape, result.fit_smape
                );
                if !quality.is_clean() {
                    let _ = writeln!(
                        out,
                        "quality:    {} of {} points removed, {} repetitions dropped, {} clamped",
                        quality.points_dropped,
                        quality.points_in,
                        quality.dropped(),
                        quality.clamped,
                    );
                }
                if let Some(point) = at {
                    let _ = writeln!(
                        out,
                        "prediction at {:?}: {:.6}",
                        point,
                        result.model.evaluate(point)
                    );
                }
            }
            Ok(out)
        }
        Invocation::Noise { file } => {
            let set = load_measurements(file).map_err(CliError::io)?;
            let est = NoiseEstimate::of(&set);
            let mut out = String::new();
            if est.is_empty() {
                let _ = writeln!(
                    out,
                    "no repetition information (need >= 2 values per point)"
                );
            } else {
                let _ = writeln!(out, "points analyzed: {}", est.per_point.len());
                let _ = writeln!(out, "mean noise:      {:.2}%", est.mean() * 100.0);
                let _ = writeln!(out, "median noise:    {:.2}%", est.median() * 100.0);
                let _ = writeln!(
                    out,
                    "range:           [{:.2}, {:.2}]%",
                    est.min() * 100.0,
                    est.max() * 100.0
                );
                let _ = writeln!(out, "pooled estimate: {:.2}%", est.pooled * 100.0);
            }
            Ok(out)
        }
        Invocation::Pretrain {
            out,
            samples,
            epochs,
            paper_net,
            train_threads,
        } => {
            use nrpm_core::dnn::{DnnModeler, DnnOptions};
            let mut options = if *paper_net {
                DnnOptions::paper_fidelity()
            } else {
                DnnOptions::default()
            };
            options.pretrain_spec.samples_per_class = *samples;
            options.pretrain_epochs = *epochs;
            options.train_threads = *train_threads;
            let modeler = DnnModeler::pretrained(options);
            modeler
                .network()
                .save(out)
                .map_err(|e| CliError::io(format!("{}: {e}", out.display())))?;
            Ok(format!(
                "trained {} parameters, saved to {}\n",
                modeler.network().num_parameters(),
                out.display()
            ))
        }
        Invocation::Serve {
            model,
            addr,
            workers,
            adapt,
            timeout_ms,
            queue_depth,
            max_conns,
            io_timeout_ms,
            work_delay_ms,
            cache_capacity,
            cache_dir,
            train_threads,
            adapt_interval_ms,
            swap_smape_tolerance,
            join,
            join_token,
            advertise,
            feed,
            thresholds,
            regime,
            quantize,
        } => {
            // Divide the thread budget among the serving workers so
            // concurrent adaptation jobs don't oversubscribe the cores.
            // When the background adaptation engine runs, it *reserves* a
            // quarter of the budget for its retraining up front — the
            // engine's threads come out of the same process-wide budget,
            // never on top of the serve workers'.
            let budget = if *train_threads > 0 {
                *train_threads
            } else {
                ThreadBudget::get()
            };
            let adapt_threads = if adapt_interval_ms.is_some() {
                (budget / 4).max(1)
            } else {
                0
            };
            let serve_budget = budget.saturating_sub(adapt_threads).max(1);
            ThreadBudget::set((serve_budget / (*workers).max(1)).max(1));
            let mut core_opts = AdaptiveOptions {
                thresholds: thresholds
                    .as_deref()
                    .map(|path| load_switch_thresholds(path, regime.as_deref()))
                    .transpose()?,
                ..Default::default()
            };
            // The flag rides on the modeler options the store hands every
            // worker: each warm rebuild re-runs the quantization gate, so a
            // hot-swapped checkpoint that fails it falls back to f64.
            core_opts.dnn.quantize = *quantize;
            let store = ModelStore::open(model, core_opts)
                .map_err(|e| CliError::io(format!("{}: {e}", model.display())))?;
            let mut opts = ServeOptions {
                workers: *workers,
                adapt: *adapt,
                queue_depth: *queue_depth,
                max_conns: *max_conns,
                work_delay: work_delay_ms.map(Duration::from_millis),
                cache_capacity: *cache_capacity,
                cache_dir: cache_dir.clone(),
                ..Default::default()
            };
            if let Some(t) = timeout_ms {
                opts.default_timeout = Duration::from_millis(*t);
            }
            if let Some(t) = io_timeout_ms {
                opts.io_timeout = Duration::from_millis(*t);
            }
            if let Some(interval) = adapt_interval_ms {
                opts.adaptation = AdaptOptions {
                    enabled: true,
                    interval: Duration::from_millis(*interval),
                    smape_tolerance: swap_smape_tolerance
                        .unwrap_or(AdaptOptions::default().smape_tolerance),
                    // Adapted checkpoints and the swap journal live beside
                    // the result cache, so one directory is the server's
                    // whole durable state.
                    dir: cache_dir.clone(),
                    train_threads: adapt_threads,
                    ..Default::default()
                };
            }
            if *feed {
                // The feed watcher rides on the adaptation engine; without
                // --adapt-interval the engine runs but its scheduled
                // retrain cycles never trigger.
                opts.adaptation.enabled = true;
                opts.adaptation.feed = true;
                opts.adaptation.dir = cache_dir.clone();
                if adapt_interval_ms.is_none() {
                    opts.adaptation.min_observations = usize::MAX;
                }
            }
            let checkpoint_hash = store.checkpoint_hash();
            let server = Server::start(addr, store, opts)
                .map_err(|e| CliError::io(format!("{addr}: {e}")))?;
            // Announce the bound address immediately (scripts poll for it);
            // `run` only returns once the server has drained.
            println!(
                "nrpm-serve listening on {} ({} workers)",
                server.addr(),
                workers
            );
            use std::io::Write as _;
            std::io::stdout().flush().ok();
            // Enroll with a cluster router as a network shard; the agent
            // heartbeats (and rejoins after router failover) until the
            // server drains.
            let _join_agent = join
                .as_deref()
                .map(|router| -> Result<JoinAgent, CliError> {
                    let router_addr = resolve_addr(router)?;
                    let advertise_addr = match advertise.as_deref() {
                        Some(a) => resolve_addr(a)?,
                        None => server.addr(),
                    };
                    let token = join_token.clone().expect("parse enforces --join-token");
                    println!("joining cluster at {router_addr} as {advertise_addr}");
                    std::io::stdout().flush().ok();
                    Ok(JoinAgent::start(JoinAgentOptions::new(
                        router_addr,
                        token,
                        advertise_addr,
                        checkpoint_hash,
                    )))
                })
                .transpose()?;
            server
                .join()
                .map_err(|_| CliError::io("a server thread panicked"))?;
            Ok("server drained cleanly\n".to_string())
        }
        Invocation::Registry {
            action,
            dir,
            model,
            files,
            ref_name,
            cache_capacity,
            adapt,
            dry_run,
        } => match action {
            RegistryAction::Stats => registry_stats(dir),
            RegistryAction::Verify => registry_verify(dir),
            RegistryAction::Gc => registry_gc(dir, *cache_capacity, *dry_run),
            RegistryAction::Warm => registry_warm(
                dir,
                model.as_deref().expect("parse enforces --model"),
                files,
                ref_name.as_deref().unwrap_or("default"),
                *cache_capacity,
                *adapt,
            ),
        },
        Invocation::Query {
            what,
            addr,
            files,
            at,
            timeout_ms,
            retries,
        } => {
            let socket = resolve_addr(addr)?;
            let connect_timeout = Duration::from_millis(timeout_ms.unwrap_or(30_000).max(1));
            let response = if *retries > 0 {
                // Overload-aware path: shed/timed-out responses and
                // transport failures are retried with backoff + jitter.
                let policy = RetryPolicy {
                    max_attempts: retries.saturating_add(1),
                    ..Default::default()
                };
                let mut client = RetryingClient::new(socket, connect_timeout, policy);
                let result = match what {
                    QueryKind::Health => client.roundtrip_line(r#"{"cmd":"health"}"#),
                    QueryKind::Stats => client
                        .roundtrip_line(r#"{"cmd":"stats"}"#)
                        .map(|response| response.get("stats").cloned().unwrap_or(response)),
                    QueryKind::Shutdown => client.roundtrip_line(r#"{"cmd":"shutdown"}"#),
                    QueryKind::Model => {
                        let set = load_measurements(&files[0]).map_err(CliError::io)?;
                        client.model(set, at.clone(), *timeout_ms)
                    }
                    QueryKind::Batch => {
                        let sets = files
                            .iter()
                            .map(|f| load_measurements(f))
                            .collect::<Result<Vec<_>, String>>()
                            .map_err(CliError::io)?;
                        client.batch(sets, *timeout_ms)
                    }
                };
                result.map_err(|e| CliError {
                    message: format!("{addr}: {e}"),
                    code: 4, // gave up on a retryable condition
                })?
            } else {
                let mut client = Client::connect(socket, connect_timeout)
                    .map_err(|e| CliError::io(format!("{addr}: {e}")))?;
                match what {
                    QueryKind::Health => client.health(),
                    QueryKind::Stats => client.stats(),
                    QueryKind::Shutdown => client.shutdown(),
                    QueryKind::Model => {
                        let set = load_measurements(&files[0]).map_err(CliError::io)?;
                        client.model(set, at.clone(), *timeout_ms)
                    }
                    QueryKind::Batch => {
                        let sets = files
                            .iter()
                            .map(|f| load_measurements(f))
                            .collect::<Result<Vec<_>, String>>()
                            .map_err(CliError::io)?;
                        client.batch(sets, *timeout_ms)
                    }
                }
                .map_err(|e| CliError::io(format!("{addr}: {e}")))?
            };
            response_to_output(&response)
        }
        Invocation::Cluster {
            action,
            model,
            shards,
            addr,
            workers,
            vnodes,
            registry_dir,
            debug_hooks,
            shard,
            timeout_ms,
            replication,
            join_token,
            lease_ms,
            standby,
        } => match action {
            ClusterAction::Launch => cluster_launch(ClusterLaunchArgs {
                model: model.as_deref().expect("parse enforces --model"),
                shards: *shards,
                addr,
                workers: *workers,
                vnodes: *vnodes,
                registry_dir: registry_dir.as_deref(),
                debug_hooks: *debug_hooks,
                replication: *replication,
                join_token: join_token.clone(),
                lease_ms: *lease_ms,
                standby: *standby,
            }),
            ClusterAction::Status => cluster_status(addr, *timeout_ms),
            ClusterAction::Drain => cluster_signal(
                "drain",
                shard.expect("parse enforces <shard>"),
                addr,
                *timeout_ms,
            ),
            ClusterAction::Kill => cluster_signal(
                "kill",
                shard.expect("parse enforces <shard>"),
                addr,
                *timeout_ms,
            ),
            ClusterAction::Rollout => cluster_rollout(
                model.as_deref().expect("parse enforces --model"),
                addr,
                *timeout_ms,
            ),
        },
        Invocation::Ingest {
            follow,
            push_addr,
            state_dir,
            registry_dir,
            model,
            interval_ms,
            once,
            duration_ms,
            window_capacity,
            min_points,
            fire_interval,
            max_records,
            allowed_lateness,
        } => run_ingest(IngestArgs {
            follow: follow.as_deref(),
            push_addr: push_addr.as_deref(),
            state_dir: state_dir.clone(),
            registry_dir: registry_dir.clone(),
            model: model.as_deref(),
            interval: Duration::from_millis((*interval_ms).max(1)),
            once: *once,
            duration: duration_ms.map(Duration::from_millis),
            windows: WindowOptions {
                capacity: *window_capacity,
                min_points: *min_points,
                fire_interval: *fire_interval,
                max_total_records: *max_records,
                allowed_lateness: *allowed_lateness,
            },
        }),
        Invocation::Sweep {
            out,
            thresholds_out,
            functions,
            params,
            noise_levels,
            matrix_noise,
            seed,
            quick,
        } => run_sweep(
            out.as_deref(),
            thresholds_out.as_deref(),
            RegimeSweepConfig {
                num_params: (*params).max(1),
                functions: (*functions).max(1),
                seed: *seed,
                ..Default::default()
            },
            noise_levels.clone(),
            *matrix_noise,
            *quick,
        ),
    }
}

/// Loads a `nrpm sweep` threshold table and extracts the switch vector for
/// `regime` (default `uniform`).
fn load_switch_thresholds(path: &Path, regime: Option<&str>) -> Result<Vec<f64>, CliError> {
    let raw = std::fs::read_to_string(path)
        .map_err(|e| CliError::io(format!("{}: {e}", path.display())))?;
    let table = ThresholdTable::from_json(&raw)
        .map_err(|e| CliError::io(format!("{}: {e}", path.display())))?;
    let regime = regime.unwrap_or("uniform");
    table.switch_thresholds(regime).ok_or_else(|| {
        CliError::io(format!(
            "{}: regime `{regime}` is not in the table or has no crossover \
             (regimes: {})",
            path.display(),
            table
                .entries
                .iter()
                .map(|e| e.regime.as_str())
                .collect::<Vec<_>>()
                .join(", ")
        ))
    })
}

/// What `nrpm ingest` passes down to [`run_ingest`].
struct IngestArgs<'a> {
    follow: Option<&'a Path>,
    push_addr: Option<&'a str>,
    state_dir: Option<PathBuf>,
    registry_dir: Option<PathBuf>,
    model: Option<&'a Path>,
    interval: Duration,
    once: bool,
    duration: Option<Duration>,
    windows: WindowOptions,
}

/// `nrpm ingest`: open the engine (resuming from the journal), announce
/// the sources, and pump them until `--once` drains, `--duration-ms`
/// elapses, or forever.
fn run_ingest(args: IngestArgs<'_>) -> Result<String, CliError> {
    let base = args
        .model
        .map(|path| {
            Network::load(path).map_err(|e| CliError::io(format!("{}: {e}", path.display())))
        })
        .transpose()?;
    let opts = IngestOptions {
        windows: args.windows,
        state_dir: args.state_dir,
        registry_dir: args.registry_dir,
        ..Default::default()
    };
    let (mut engine, recovery) =
        IngestEngine::open(opts, base).map_err(|e| CliError::io(e.to_string()))?;
    if let Some(resume) = &recovery.resume {
        println!(
            "nrpm-ingest resuming at line {} (offset {}), {} records accounted",
            resume.resume_line, resume.resume_offset, resume.counters.records
        );
    }
    let push = args
        .push_addr
        .map(|addr| PushSource::bind(addr).map_err(|e| CliError::io(format!("{addr}: {e}"))))
        .transpose()?;
    if let Some(push) = &push {
        println!("nrpm-ingest push source on {}", push.local_addr());
    }
    let mut source = args.follow.map(FollowSource::open);
    if let Some(source) = &mut source {
        println!("nrpm-ingest following {}", source.path().display());
        source.seek_to(engine.resume_offset());
    }
    use std::io::Write as _;
    std::io::stdout().flush().ok();

    let deadline = args.duration.map(|d| std::time::Instant::now() + d);
    loop {
        let mut news = 0usize;
        if let Some(source) = &mut source {
            news += engine
                .poll_source(source)
                .map_err(|e| CliError::io(format!("poll: {e}")))?;
        }
        if let Some(push) = &push {
            news += engine
                .poll_push(push)
                .map_err(|e| CliError::io(e.to_string()))?;
        }
        if args.once && news == 0 {
            break;
        }
        if deadline.is_some_and(|d| std::time::Instant::now() >= d) {
            break;
        }
        if news == 0 {
            std::thread::sleep(args.interval);
        }
    }
    if args.once {
        // Drained to EOF: the held tail line is a complete record.
        engine.flush_tail();
    }
    engine
        .checkpoint()
        .map_err(|e| CliError::io(e.to_string()))?;

    let c = engine.counters();
    let mut out = String::new();
    let _ = writeln!(
        out,
        "ingested {} records ({} late-dropped, {} shed, {} evicted, {} parse errors)",
        c.records, c.late_dropped, c.shed, c.evicted, c.parse_errors
    );
    let _ = writeln!(
        out,
        "sanitizer: {} values dropped, {} clamped, {} records unusable",
        c.values_dropped, c.values_clamped, c.records_dropped
    );
    let _ = writeln!(
        out,
        "windows fired {} times, {} models published ({} re-model failures)",
        c.windows_fired, c.models_published, c.remodel_failures
    );
    if let Some(hash) = engine.last_published() {
        let _ = writeln!(
            out,
            "latest candidate {} under ref `{}`",
            hex16(hash),
            nrpm_ingest::INGEST_CANDIDATE_REF
        );
    }
    Ok(out)
}

/// `nrpm sweep`: run the regime grid, render the crossover and transfer
/// tables, and write the JSON artifacts.
fn run_sweep(
    out_path: Option<&Path>,
    thresholds_out: Option<&Path>,
    mut config: RegimeSweepConfig,
    noise_levels: Option<Vec<f64>>,
    matrix_noise: Option<f64>,
    quick: bool,
) -> Result<String, CliError> {
    if let Some(levels) = noise_levels {
        config.noise_levels = levels;
    }
    if let Some(m) = matrix_noise {
        config.matrix_noise = m;
    }
    if quick {
        // CI-sized: a small network, short pretraining, light adaptation.
        config.dnn.network = nrpm_nn::NetworkConfig::new(&[
            nrpm_core::preprocess::NUM_INPUTS,
            48,
            nrpm_extrap::NUM_CLASSES,
        ]);
        config.dnn.pretrain_spec.samples_per_class = 30;
        config.dnn.pretrain_epochs = 3;
        config.dnn.adaptation_samples_per_class = 12;
    }
    let result = run_regime_sweep(&config);

    let mut out = String::new();
    let _ = writeln!(
        out,
        "== regime crossover calibration (m = {}, {} functions/cell) ==",
        config.num_params, config.functions
    );
    for entry in &result.table.entries {
        let threshold = match entry.threshold {
            Some(t) => format!("{:.1}%", t * 100.0),
            None => "no crossover (regression dominates)".to_string(),
        };
        let _ = writeln!(out, "  {:<16} threshold {}", entry.regime, threshold);
        let curve = |acc: &[f64]| {
            acc.iter()
                .map(|a| format!("{:>5.1}", a * 100.0))
                .collect::<Vec<_>>()
                .join(" ")
        };
        let _ = writeln!(
            out,
            "    noise   {}",
            entry
                .noise_levels
                .iter()
                .map(|n| format!("{:>5.2}", n))
                .collect::<Vec<_>>()
                .join(" ")
        );
        let _ = writeln!(out, "    reg %   {}", curve(&entry.regression_accuracy));
        let _ = writeln!(out, "    dnn %   {}", curve(&entry.dnn_accuracy));
    }
    let _ = writeln!(
        out,
        "\n== transfer matrix: DNN accuracy %, adapt on row / test on column \
         (noise {:.2}) ==",
        result.matrix_noise
    );
    let names: Vec<&str> = {
        let mut seen = Vec::new();
        for cell in &result.matrix {
            if !seen.contains(&cell.train.as_str()) {
                seen.push(cell.train.as_str());
            }
        }
        seen
    };
    let _ = writeln!(
        out,
        "  {:<16} {}",
        "train \\ test",
        names
            .iter()
            .map(|n| format!("{:>16}", n))
            .collect::<Vec<_>>()
            .join(" ")
    );
    for train in &names {
        let cells = names
            .iter()
            .map(|test| {
                result
                    .cell(train, test)
                    .map(|c| format!("{:>16.1}", c.dnn_accuracy * 100.0))
                    .unwrap_or_else(|| format!("{:>16}", "-"))
            })
            .collect::<Vec<_>>()
            .join(" ");
        let _ = writeln!(out, "  {train:<16} {cells}");
    }

    if let Some(path) = out_path {
        std::fs::write(path, result.to_json())
            .map_err(|e| CliError::io(format!("{}: {e}", path.display())))?;
        let _ = writeln!(out, "\nwrote {}", path.display());
    }
    if let Some(path) = thresholds_out {
        std::fs::write(path, result.table.to_json())
            .map_err(|e| CliError::io(format!("{}: {e}", path.display())))?;
        let _ = writeln!(out, "wrote {}", path.display());
    }
    Ok(out)
}

/// What `nrpm cluster launch` passes down to [`cluster_launch`].
struct ClusterLaunchArgs<'a> {
    model: &'a Path,
    shards: usize,
    addr: &'a str,
    workers: usize,
    vnodes: usize,
    registry_dir: Option<&'a Path>,
    debug_hooks: bool,
    replication: usize,
    join_token: Option<String>,
    lease_ms: Option<u64>,
    standby: bool,
}

/// `nrpm cluster launch`: start the sharded tier, announce the router's
/// bound address, and block until the tier is drained.
fn cluster_launch(args: ClusterLaunchArgs<'_>) -> Result<String, CliError> {
    let ClusterLaunchArgs {
        model,
        shards,
        addr,
        workers,
        vnodes,
        registry_dir,
        debug_hooks,
        replication,
        join_token,
        lease_ms,
        standby,
    } = args;
    let network =
        Network::load(model).map_err(|e| CliError::io(format!("{}: {e}", model.display())))?;
    let mut opts = ClusterOptions {
        shards,
        vnodes,
        workers_per_shard: workers,
        router_addr: addr.to_string(),
        registry_dir: registry_dir.map(Path::to_path_buf),
        debug_hooks,
        replication,
        join_token,
        standby,
        ..ClusterOptions::default()
    };
    if let Some(ms) = lease_ms {
        opts.member_lease = Duration::from_millis(ms);
    }
    let cluster =
        Cluster::launch(network, opts).map_err(|e| CliError::io(format!("{addr}: {e}")))?;
    // Announce the bound address immediately (scripts poll for it); `run`
    // only returns once the whole tier has drained.
    println!(
        "nrpm-cluster router listening on {} ({} shards)",
        cluster.router_addr(),
        cluster.shards()
    );
    use std::io::Write as _;
    std::io::stdout().flush().ok();
    cluster
        .join()
        .map_err(|_| CliError::io("a cluster thread panicked"))?;
    Ok("cluster drained cleanly\n".to_string())
}

/// `nrpm cluster status`: one `stats` roundtrip against the router,
/// rendered as a per-shard table plus the divergence verdict.
fn cluster_status(addr: &str, timeout_ms: Option<u64>) -> Result<String, CliError> {
    let socket = resolve_addr(addr)?;
    let timeout = Duration::from_millis(timeout_ms.unwrap_or(30_000).max(1));
    let mut client =
        Client::connect(socket, timeout).map_err(|e| CliError::io(format!("{addr}: {e}")))?;
    let stats = client
        .stats()
        .map_err(|e| CliError::io(format!("{addr}: {e}")))?;
    if stats.get("service").and_then(Value::as_str) != Some("nrpm-cluster-router") {
        return Err(CliError::io(format!(
            "{addr}: not an nrpm-cluster router (is this a plain nrpm-serve backend?)"
        )));
    }
    let num = |k: &str| stats.get(k).and_then(Value::as_u64).unwrap_or(0);
    let diverged = |k: &str| stats.get(k).and_then(Value::as_bool).unwrap_or(false);
    let verdict = |k| if diverged(k) { "DIVERGED" } else { "uniform" };
    let mut out = String::new();
    let _ = writeln!(
        out,
        "router:     {addr} ({}, generation {})",
        stats.get("role").and_then(Value::as_str).unwrap_or("?"),
        num("generation")
    );
    let _ = writeln!(
        out,
        "shards:     {} ({} routable), replication {}",
        num("shards"),
        num("routable"),
        num("replication").max(1)
    );
    let _ = writeln!(
        out,
        "requests:   {} routed, {} failovers, {} rejected",
        num("requests_routed"),
        num("failovers"),
        num("rejected")
    );
    let _ = writeln!(
        out,
        "replicas:   {} fanouts, {} divergences resolved by quorum",
        num("replica_fanouts"),
        num("replica_divergences")
    );
    let _ = writeln!(
        out,
        "membership: {} joins, {} lease expiries, {} rollouts",
        num("joins"),
        num("lease_expiries"),
        num("rollouts")
    );
    let _ = writeln!(
        out,
        "serving:    {}",
        stats
            .get("serving_hash")
            .and_then(Value::as_str)
            .unwrap_or("(no registry)")
    );
    let _ = writeln!(
        out,
        "divergence: checkpoint {}, epoch {}",
        verdict("checkpoint_divergence"),
        verdict("epoch_divergence")
    );
    if let Some(per_shard) = stats.get("per_shard").and_then(Value::as_seq) {
        for shard in per_shard {
            let s = |k: &str| shard.get(k).and_then(Value::as_str).unwrap_or("?");
            let n = |k: &str| shard.get(k).and_then(Value::as_u64).unwrap_or(0);
            let remote = shard
                .get("remote")
                .and_then(Value::as_bool)
                .unwrap_or(false);
            let origin = if remote {
                match shard.get("lease_ms").and_then(Value::as_u64) {
                    Some(ms) => format!("network (lease {ms}ms)"),
                    None => "network (adopted)".to_string(),
                }
            } else {
                "local".to_string()
            };
            let _ = writeln!(
                out,
                "shard {}: {:<9} {:<21} routed {:<6} failed {:<4} checkpoint {} epoch {} {origin}",
                n("shard"),
                s("state"),
                s("addr"),
                n("routed"),
                n("failed"),
                shard
                    .get("checkpoint_hash")
                    .and_then(Value::as_str)
                    .unwrap_or("-"),
                n("epoch"),
            );
        }
    }
    Ok(out)
}

/// `nrpm cluster drain|kill`: one admin roundtrip against the router.
fn cluster_signal(
    action: &str,
    shard: u32,
    addr: &str,
    timeout_ms: Option<u64>,
) -> Result<String, CliError> {
    let socket = resolve_addr(addr)?;
    let timeout = Duration::from_millis(timeout_ms.unwrap_or(30_000).max(1));
    let mut client =
        Client::connect(socket, timeout).map_err(|e| CliError::io(format!("{addr}: {e}")))?;
    let response = client
        .roundtrip_line(&format!(r#"{{"cmd":"cluster_{action}","shard":{shard}}}"#))
        .map_err(|e| CliError::io(format!("{addr}: {e}")))?;
    response_to_output(&response)
}

/// `nrpm cluster rollout`: push a new checkpoint through the router's
/// rolling-rollout driver. The walk is synchronous on the router side
/// (drain → sync → swap → verify per shard), so the default timeout is
/// generous.
fn cluster_rollout(model: &Path, addr: &str, timeout_ms: Option<u64>) -> Result<String, CliError> {
    let network =
        Network::load(model).map_err(|e| CliError::io(format!("{}: {e}", model.display())))?;
    let socket = resolve_addr(addr)?;
    let timeout = Duration::from_millis(timeout_ms.unwrap_or(120_000).max(1));
    let request = serde_json::to_string(&Value::Map(vec![
        ("cmd".to_string(), Value::Str("cluster_rollout".to_string())),
        ("network".to_string(), Value::Str(network.to_json())),
    ]))
    .map_err(|e| CliError::io(format!("{}: {e}", model.display())))?;
    let mut client =
        Client::connect(socket, timeout).map_err(|e| CliError::io(format!("{addr}: {e}")))?;
    let response = client
        .roundtrip_line(&request)
        .map_err(|e| CliError::io(format!("{addr}: {e}")))?;
    if !nrpm_serve::client::is_ok(&response) {
        return response_to_output(&response);
    }
    let shard_list = |k: &str| -> String {
        let ids: Vec<String> = response
            .get(k)
            .and_then(Value::as_seq)
            .map(|seq| {
                seq.iter()
                    .filter_map(Value::as_u64)
                    .map(|id| id.to_string())
                    .collect()
            })
            .unwrap_or_default();
        if ids.is_empty() {
            "(none)".to_string()
        } else {
            ids.join(", ")
        }
    };
    let mut out = String::new();
    let _ = writeln!(
        out,
        "rolled out: {}",
        response
            .get("target")
            .and_then(Value::as_str)
            .unwrap_or("?")
    );
    let _ = writeln!(out, "updated:    {}", shard_list("updated"));
    let _ = writeln!(
        out,
        "skipped:    {} (network members)",
        shard_list("skipped_remote")
    );
    Ok(out)
}

/// Maps a registry-layer failure onto exit code 3, carrying the directory.
fn in_dir(dir: &Path, e: impl std::fmt::Display) -> CliError {
    CliError::io(format!("{}: {e}", dir.display()))
}

/// Opens the checkpoint registry at `dir`. Read-only actions require the
/// directory to exist already (opening creates `objects/` and `refs/`).
fn open_registry(dir: &Path, must_exist: bool) -> Result<CheckpointRegistry, CliError> {
    if must_exist && !dir.is_dir() {
        return Err(CliError::io(format!(
            "{}: no such registry directory",
            dir.display()
        )));
    }
    CheckpointRegistry::open(dir).map_err(|e| in_dir(dir, e))
}

/// `nrpm registry stats`: checkpoints, refs, and cache-journal occupancy.
fn registry_stats(dir: &Path) -> Result<String, CliError> {
    let registry = open_registry(dir, true)?;
    let objects = registry.list().map_err(|e| in_dir(dir, e))?;
    let mut refs = registry.refs().map_err(|e| in_dir(dir, e))?;
    refs.sort();
    let mut out = String::new();
    let _ = writeln!(out, "checkpoints:   {}", objects.len());
    for (name, hash) in refs {
        let _ = writeln!(out, "ref:           {name} -> {}", hex16(hash));
    }
    let journal = dir.join(JOURNAL_FILE);
    if journal.exists() {
        let bytes = std::fs::metadata(&journal)
            .map_err(|e| in_dir(dir, e))?
            .len();
        let report = Journal::<AdaptiveOutcome>::verify(&journal).map_err(|e| in_dir(dir, e))?;
        let _ = writeln!(
            out,
            "cache journal: {} records, {} bytes{}",
            report.records,
            bytes,
            if report.repaired {
                " (torn tail pending repair)"
            } else {
                ""
            }
        );
    } else {
        let _ = writeln!(out, "cache journal: none");
    }
    Ok(out)
}

/// `nrpm registry verify`: read-only integrity sweep over checkpoint
/// objects, refs, and the cache journal. Damage exits 4 without touching
/// anything on disk.
fn registry_verify(dir: &Path) -> Result<String, CliError> {
    let registry = open_registry(dir, true)?;
    let outcome = registry.verify().map_err(|e| in_dir(dir, e))?;
    let mut problems: Vec<String> = outcome
        .issues
        .iter()
        .map(|issue| match issue {
            VerifyIssue::HashMismatch { named, actual } => format!(
                "checkpoint {}: content actually hashes to {}",
                hex16(*named),
                hex16(*actual)
            ),
            VerifyIssue::Unloadable { hash, error } => {
                format!("checkpoint {}: not loadable: {error}", hex16(*hash))
            }
            VerifyIssue::DanglingRef { name, target } => {
                format!("ref {name}: dangling target `{target}`")
            }
        })
        .collect();
    let journal = dir.join(JOURNAL_FILE);
    let mut cached = 0usize;
    if journal.exists() {
        match Journal::<AdaptiveOutcome>::verify(&journal) {
            Ok(report) => {
                cached = report.records;
                if report.repaired {
                    problems.push(format!(
                        "cache journal: torn tail, {} trailing bytes need truncation \
                         (recovered on the next open)",
                        report.truncated_bytes
                    ));
                }
            }
            Err(e) => problems.push(format!("cache journal: {e}")),
        }
    }
    if problems.is_empty() {
        Ok(format!(
            "registry clean: {} checkpoint(s) intact, {} cached outcome(s)\n",
            outcome.intact, cached
        ))
    } else {
        Err(CliError {
            message: problems.join("\n"),
            code: 4,
        })
    }
}

/// `nrpm registry gc`: drop checkpoints no ref points at and rewrite the
/// cache journal down to its live entries. Checkpoints named by the swap
/// journal — the serving one, the previous (rollback-target) one, and any
/// pending swap's candidate — are pinned even without a ref, so a crash or
/// rollback can never land on a collected hash.
fn registry_gc(dir: &Path, cache_capacity: usize, dry_run: bool) -> Result<String, CliError> {
    let registry = open_registry(dir, true)?;
    let mut pins = std::collections::HashSet::new();
    let mut journal_present = false;
    if dir.join(nrpm_registry::swap::SWAP_JOURNAL_FILE).exists() {
        let (journal, _recovery) = SwapJournal::open(dir).map_err(|e| {
            CliError::io(format!("{}: cannot read swap journal: {e}", dir.display()))
        })?;
        pins = journal.live_hashes();
        journal_present = true;
    }
    let mut out = String::new();
    if journal_present {
        let _ = writeln!(out, "swap-journal pinned checkpoints: {}", pins.len());
        if dry_run {
            let mut pinned: Vec<u64> = pins.iter().copied().collect();
            pinned.sort_unstable();
            for hash in pinned {
                let _ = writeln!(out, "pinned checkpoint {}", hex16(hash));
            }
        }
    }
    if dry_run {
        let doomed = registry.gc_plan(&pins).map_err(|e| in_dir(dir, e))?;
        for hash in &doomed {
            let _ = writeln!(out, "would remove unreferenced checkpoint {}", hex16(*hash));
        }
        let _ = writeln!(
            out,
            "checkpoints that would be removed: {} (dry run; nothing deleted)",
            doomed.len()
        );
        return Ok(out);
    }
    let removed = registry.gc_with_pins(&pins).map_err(|e| in_dir(dir, e))?;
    for hash in &removed {
        let _ = writeln!(out, "removed unreferenced checkpoint {}", hex16(*hash));
    }
    let _ = writeln!(out, "checkpoints removed: {}", removed.len());
    if dir.join(JOURNAL_FILE).exists() {
        let cache: ResultCache<AdaptiveOutcome> =
            ResultCache::persistent(cache_capacity.max(1), 8, dir).map_err(|e| in_dir(dir, e))?;
        let before = cache.stats().journal_records.unwrap_or(0);
        cache.compact().map_err(|e| in_dir(dir, e))?;
        let after = cache.stats().journal_records.unwrap_or(0);
        let _ = writeln!(out, "cache journal compacted: {before} -> {after} records");
    }
    Ok(out)
}

/// `nrpm registry warm`: store a checkpoint (pointing `ref_name` at it),
/// then model each measurement file locally and journal the outcomes under
/// exactly the keys a server on the same checkpoint would look up.
fn registry_warm(
    dir: &Path,
    model: &Path,
    files: &[PathBuf],
    ref_name: &str,
    cache_capacity: usize,
    adapt: bool,
) -> Result<String, CliError> {
    let network = Network::load(model).map_err(|e| in_dir(model, e))?;
    let registry = open_registry(dir, false)?;
    let hash = registry.put(&network).map_err(|e| in_dir(dir, e))?;
    registry
        .set_ref(ref_name, hash)
        .map_err(|e| in_dir(dir, e))?;
    let store = ModelStore::from_network(network, AdaptiveOptions::default())
        .map_err(|e| in_dir(model, e))?
        .with_adaptation(adapt);
    let cache: ResultCache<AdaptiveOutcome> =
        ResultCache::persistent(cache_capacity.max(1), 8, dir).map_err(|e| in_dir(dir, e))?;
    let mut warmed = 0usize;
    let mut already = 0usize;
    for file in files {
        let set = load_measurements(file).map_err(CliError::io)?;
        let key = ModelKey::new(&set, store.checkpoint_hash(), adapt).combined();
        if cache.get(key).is_some() {
            already += 1;
            continue;
        }
        let outcome = store.modeler().model(&set).map_err(CliError::model)?;
        cache.insert(key, outcome).map_err(|e| in_dir(dir, e))?;
        warmed += 1;
    }
    cache.sync().map_err(|e| in_dir(dir, e))?;
    Ok(format!(
        "checkpoint {} (ref {ref_name}); warmed {warmed} outcome(s), {already} already cached\n",
        hex16(hash)
    ))
}

/// Resolves a `HOST:PORT` string to a socket address.
fn resolve_addr(addr: &str) -> Result<SocketAddr, CliError> {
    addr.to_socket_addrs()
        .map_err(|e| CliError::io(format!("{addr}: {e}")))?
        .next()
        .ok_or_else(|| CliError::io(format!("{addr}: resolves to no address")))
}

/// Renders a server response, mapping error responses onto the CLI's exit
/// code taxonomy: `parse`/`usage` → 2, `fatal` → 5, everything else
/// (recoverable, timeout, overloaded, shutting down) → 4. Model replies
/// get a human-readable provenance trailer: which checkpoint (and, through
/// a cluster router, which shard) answered, at which adaptation epoch.
fn response_to_output(response: &Value) -> Result<String, CliError> {
    let text = serde_json::to_string_pretty(response).unwrap_or_else(|_| format!("{response:?}"));
    if response.get("status").and_then(Value::as_str) == Some("error") {
        let code = match response.get("kind").and_then(Value::as_str) {
            Some("parse") | Some("usage") => 2,
            Some("fatal") => 5,
            _ => 4,
        };
        return Err(CliError {
            message: text,
            code,
        });
    }
    let mut out = format!("{text}\n");
    if let Some(hash) = response.get("served_hash").and_then(Value::as_str) {
        let epoch = response.get("epoch").and_then(Value::as_u64).unwrap_or(0);
        match response.get("shard").and_then(Value::as_u64) {
            Some(shard) => {
                let _ = writeln!(
                    out,
                    "served by shard {shard}, checkpoint {hash} (epoch {epoch})"
                );
            }
            None => {
                let _ = writeln!(out, "served by checkpoint {hash} (epoch {epoch})");
            }
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(s: &str) -> Result<Invocation, String> {
        Invocation::parse(&s.split_whitespace().map(String::from).collect::<Vec<_>>())
    }

    #[test]
    fn parses_fit_with_flags() {
        let inv = parse("fit data.txt --adaptive --network net.json --at 4096,8192").unwrap();
        assert_eq!(
            inv,
            Invocation::Fit {
                file: "data.txt".into(),
                adaptive: true,
                network: Some("net.json".into()),
                at: Some(vec![4096.0, 8192.0]),
                policy: SanitizePolicy::Lenient,
                thresholds: None,
                regime: None,
            }
        );
    }

    #[test]
    fn parses_minimal_fit() {
        let inv = parse("fit data.txt").unwrap();
        assert_eq!(
            inv,
            Invocation::Fit {
                file: "data.txt".into(),
                adaptive: false,
                network: None,
                at: None,
                policy: SanitizePolicy::Lenient,
                thresholds: None,
                regime: None,
            }
        );
    }

    #[test]
    fn parses_the_strictness_flags() {
        assert!(matches!(
            parse("fit data.txt --strict").unwrap(),
            Invocation::Fit {
                policy: SanitizePolicy::Strict,
                ..
            }
        ));
        assert!(matches!(
            parse("fit data.txt --lenient").unwrap(),
            Invocation::Fit {
                policy: SanitizePolicy::Lenient,
                ..
            }
        ));
        assert!(parse("fit data.txt --strict --lenient").is_err());
    }

    #[test]
    fn parses_noise_and_pretrain() {
        assert_eq!(
            parse("noise m.json").unwrap(),
            Invocation::Noise {
                file: "m.json".into()
            }
        );
        let inv =
            parse("pretrain --out n.json --samples 100 --epochs 5 --paper-net --train-threads 2")
                .unwrap();
        assert_eq!(
            inv,
            Invocation::Pretrain {
                out: "n.json".into(),
                samples: 100,
                epochs: 5,
                paper_net: true,
                train_threads: 2,
            }
        );
    }

    #[test]
    fn rejects_malformed_invocations() {
        assert!(parse("").is_err());
        assert!(parse("frobnicate x").is_err());
        assert!(parse("fit").is_err());
        assert!(parse("pretrain").is_err()); // --out required
        assert!(parse("fit f.txt --at abc").is_err());
        assert!(parse("serve").is_err()); // --model required
        assert!(parse("serve --model n.json --workers three").is_err());
        assert!(parse("serve --model n.json --queue-depth deep").is_err());
        assert!(parse("serve --model n.json --cache-capacity lots").is_err());
        assert!(parse("serve --model n.json --train-threads three").is_err());
        assert!(parse("serve --model n.json --adapt-interval soon").is_err());
        assert!(parse("serve --model n.json --adapt-interval 0").is_err());
        assert!(
            parse("serve --model n.json --adapt-interval 1000 --swap-smape-tolerance lax").is_err()
        );
        assert!(
            parse("serve --model n.json --adapt-interval 1000 --swap-smape-tolerance -0.5")
                .is_err()
        );
        // The gate tolerance is meaningless without the engine that uses it.
        assert!(parse("serve --model n.json --swap-smape-tolerance 0.2").is_err());
        assert!(parse("pretrain --out n.json --train-threads many").is_err());
        assert!(parse("registry").is_err()); // action required
        assert!(parse("registry frobnicate --dir d").is_err());
        assert!(parse("registry stats").is_err()); // --dir required
        assert!(parse("registry warm --dir d").is_err()); // --model required
        assert!(parse("registry stats stray.txt --dir d").is_err());
        assert!(parse("registry stats --dir d --dry-run").is_err()); // gc only
        assert!(parse("registry warm --dir d --model n.json --dry-run").is_err());
        assert!(parse("cluster").is_err()); // action required
        assert!(parse("cluster frobnicate").is_err());
        assert!(parse("cluster launch").is_err()); // --model required
        assert!(parse("cluster launch --model n.json --shards 0").is_err());
        assert!(parse("cluster launch --model n.json --shards few").is_err());
        assert!(parse("cluster launch --model n.json --vnodes 0").is_err());
        assert!(parse("cluster launch --model n.json stray").is_err());
        assert!(parse("cluster status stray").is_err());
        assert!(parse("cluster status --model n.json").is_err()); // launch only
        assert!(parse("cluster status --debug-hooks").is_err()); // launch only
        assert!(parse("cluster drain").is_err()); // shard required
        assert!(parse("cluster drain 1 2").is_err()); // exactly one
        assert!(parse("cluster kill one").is_err()); // numeric id
        assert!(parse("query health --retries many").is_err());
        assert!(parse("query").is_err());
        assert!(parse("query frobnicate").is_err());
        assert!(parse("query model").is_err()); // file required
        assert!(parse("query model a.txt b.txt").is_err()); // exactly one
        assert!(parse("query batch").is_err()); // at least one file
        assert!(parse("query health stray.txt").is_err());
        // Feed swaps need a durable registry; thresholds need a regime row
        // and (for fit) the adaptive switch.
        assert!(parse("serve --model n.json --feed").is_err());
        assert!(parse("serve --model n.json --regime spike").is_err());
        assert!(parse("fit f.txt --thresholds t.json").is_err()); // --adaptive
        assert!(parse("fit f.txt --adaptive --regime spike").is_err());
        assert!(parse("ingest").is_err()); // need a source
        assert!(parse("ingest --once").is_err()); // --once needs --follow
        assert!(parse("ingest --follow f.log --once --duration-ms 5").is_err());
        assert!(parse("ingest --follow f.log --interval-ms soon").is_err());
        assert!(parse("ingest --follow f.log --allowed-lateness -1").is_err());
        assert!(parse("sweep --noise 0.5").is_err()); // two levels minimum
        assert!(parse("sweep --noise 0.5,0.2").is_err()); // ascending
        assert!(parse("sweep --matrix-noise 0").is_err());
        assert!(parse("sweep --functions lots").is_err());
    }

    #[test]
    fn parses_ingest_and_sweep() {
        let defaults = WindowOptions::default();
        assert_eq!(
            parse("ingest --follow m.log --state-dir s --registry-dir r --model n.json").unwrap(),
            Invocation::Ingest {
                follow: Some("m.log".into()),
                push_addr: None,
                state_dir: Some("s".into()),
                registry_dir: Some("r".into()),
                model: Some("n.json".into()),
                interval_ms: 200,
                once: false,
                duration_ms: None,
                window_capacity: defaults.capacity,
                min_points: defaults.min_points,
                fire_interval: defaults.fire_interval,
                max_records: defaults.max_total_records,
                allowed_lateness: defaults.allowed_lateness,
            }
        );
        assert_eq!(
            parse(
                "ingest --push-addr 127.0.0.1:0 --duration-ms 500 --window-capacity 16 \
                 --min-points 3 --fire-interval 4 --max-records 64 --allowed-lateness 2.5"
            )
            .unwrap(),
            Invocation::Ingest {
                follow: None,
                push_addr: Some("127.0.0.1:0".into()),
                state_dir: None,
                registry_dir: None,
                model: None,
                interval_ms: 200,
                once: false,
                duration_ms: Some(500),
                window_capacity: 16,
                min_points: 3,
                fire_interval: 4,
                max_records: 64,
                allowed_lateness: 2.5,
            }
        );
        assert!(matches!(
            parse("ingest --follow m.log --once").unwrap(),
            Invocation::Ingest { once: true, .. }
        ));
        assert_eq!(
            parse(
                "sweep --out b.json --thresholds-out t.json --functions 12 --params 2 \
                 --noise 0.1,0.5,1.0 --matrix-noise 0.4 --seed 7 --quick"
            )
            .unwrap(),
            Invocation::Sweep {
                out: Some("b.json".into()),
                thresholds_out: Some("t.json".into()),
                functions: 12,
                params: 2,
                noise_levels: Some(vec![0.1, 0.5, 1.0]),
                matrix_noise: Some(0.4),
                seed: 7,
                quick: true,
            }
        );
        assert_eq!(
            parse("sweep").unwrap(),
            Invocation::Sweep {
                out: None,
                thresholds_out: None,
                functions: 100,
                params: 1,
                noise_levels: None,
                matrix_noise: None,
                seed: 0x1265,
                quick: false,
            }
        );
    }

    #[test]
    fn parses_serve_feed_and_thresholds() {
        assert!(matches!(
            parse("serve --model n.json --cache-dir d --feed").unwrap(),
            Invocation::Serve { feed: true, .. }
        ));
        assert!(matches!(
            parse("serve --model n.json --thresholds t.json --regime spike").unwrap(),
            Invocation::Serve {
                thresholds: Some(_),
                regime: Some(_),
                ..
            }
        ));
        assert!(matches!(
            parse("fit f.txt --adaptive --thresholds t.json").unwrap(),
            Invocation::Fit {
                thresholds: Some(_),
                regime: None,
                ..
            }
        ));
    }

    #[test]
    fn parses_serve_and_query() {
        assert_eq!(
            parse(
                "serve --model net.json --addr 0.0.0.0:9000 --workers 8 --adapt --timeout-ms 500 \
                 --queue-depth 2 --max-conns 32 --io-timeout-ms 750 --work-delay-ms 10 \
                 --cache-capacity 9 --cache-dir /var/cache/nrpm --train-threads 6 \
                 --adapt-interval 5000 --swap-smape-tolerance 0.25 --quantize"
            )
            .unwrap(),
            Invocation::Serve {
                model: "net.json".into(),
                addr: "0.0.0.0:9000".into(),
                workers: 8,
                adapt: true,
                timeout_ms: Some(500),
                queue_depth: 2,
                max_conns: 32,
                io_timeout_ms: Some(750),
                work_delay_ms: Some(10),
                cache_capacity: 9,
                cache_dir: Some("/var/cache/nrpm".into()),
                train_threads: 6,
                adapt_interval_ms: Some(5000),
                swap_smape_tolerance: Some(0.25),
                join: None,
                join_token: None,
                advertise: None,
                feed: false,
                thresholds: None,
                regime: None,
                quantize: true,
            }
        );
        assert_eq!(
            parse("serve --model net.json").unwrap(),
            Invocation::Serve {
                model: "net.json".into(),
                addr: DEFAULT_ADDR.into(),
                workers: 4,
                adapt: false,
                timeout_ms: None,
                queue_depth: 64,
                max_conns: 256,
                io_timeout_ms: None,
                work_delay_ms: None,
                cache_capacity: 1024,
                cache_dir: None,
                train_threads: 0,
                adapt_interval_ms: None,
                swap_smape_tolerance: None,
                join: None,
                join_token: None,
                advertise: None,
                feed: false,
                thresholds: None,
                regime: None,
                quantize: false,
            }
        );
        assert!(matches!(
            parse(
                "serve --model net.json --join 10.0.0.1:9000 --join-token s3cret \
                 --advertise 10.0.0.2:7070"
            )
            .unwrap(),
            Invocation::Serve {
                join: Some(_),
                join_token: Some(_),
                advertise: Some(_),
                ..
            }
        ));
        // Join flags are all-or-nothing: the agent cannot authenticate
        // without a token, and the token is meaningless without a router.
        assert!(parse("serve --model net.json --join-token s3cret").is_err());
        assert!(parse("serve --model net.json --advertise 10.0.0.2:7070").is_err());
        assert!(parse("serve --model net.json --join 10.0.0.1:9000").is_err());
        assert_eq!(
            parse("query health").unwrap(),
            Invocation::Query {
                what: QueryKind::Health,
                addr: DEFAULT_ADDR.into(),
                files: vec![],
                at: None,
                timeout_ms: None,
                retries: 0,
            }
        );
        assert_eq!(
            parse("query model data.txt --at 1024 --addr 127.0.0.1:7171 --timeout-ms 2000 --retries 3")
                .unwrap(),
            Invocation::Query {
                what: QueryKind::Model,
                addr: "127.0.0.1:7171".into(),
                files: vec!["data.txt".into()],
                at: Some(vec![1024.0]),
                timeout_ms: Some(2000),
                retries: 3,
            }
        );
        assert_eq!(
            parse("query batch a.txt b.json").unwrap(),
            Invocation::Query {
                what: QueryKind::Batch,
                addr: DEFAULT_ADDR.into(),
                files: vec!["a.txt".into(), "b.json".into()],
                at: None,
                timeout_ms: None,
                retries: 0,
            }
        );
    }

    #[test]
    fn parses_registry_commands() {
        assert_eq!(
            parse("registry stats --dir /var/nrpm").unwrap(),
            Invocation::Registry {
                action: RegistryAction::Stats,
                dir: "/var/nrpm".into(),
                model: None,
                files: vec![],
                ref_name: None,
                cache_capacity: 1024,
                adapt: false,
                dry_run: false,
            }
        );
        assert_eq!(
            parse("registry gc --dir d --cache-capacity 16").unwrap(),
            Invocation::Registry {
                action: RegistryAction::Gc,
                dir: "d".into(),
                model: None,
                files: vec![],
                ref_name: None,
                cache_capacity: 16,
                adapt: false,
                dry_run: false,
            }
        );
        assert_eq!(
            parse("registry warm --dir d --model n.json a.txt b.json --ref best --adapt").unwrap(),
            Invocation::Registry {
                action: RegistryAction::Warm,
                dir: "d".into(),
                model: Some("n.json".into()),
                files: vec!["a.txt".into(), "b.json".into()],
                ref_name: Some("best".into()),
                cache_capacity: 1024,
                adapt: true,
                dry_run: false,
            }
        );
        assert!(matches!(
            parse("registry verify --dir d").unwrap(),
            Invocation::Registry {
                action: RegistryAction::Verify,
                ..
            }
        ));
        assert!(matches!(
            parse("registry gc --dir d --dry-run").unwrap(),
            Invocation::Registry {
                action: RegistryAction::Gc,
                dry_run: true,
                ..
            }
        ));
    }

    #[test]
    fn parses_cluster_commands() {
        assert_eq!(
            parse(
                "cluster launch --model net.json --shards 4 --addr 127.0.0.1:0 --workers 3 \
                 --vnodes 96 --registry-dir /var/nrpm --debug-hooks --replication 2 \
                 --join-token s3cret --lease-ms 750 --standby"
            )
            .unwrap(),
            Invocation::Cluster {
                action: ClusterAction::Launch,
                model: Some("net.json".into()),
                shards: 4,
                addr: "127.0.0.1:0".into(),
                workers: 3,
                vnodes: 96,
                registry_dir: Some("/var/nrpm".into()),
                debug_hooks: true,
                shard: None,
                timeout_ms: None,
                replication: 2,
                join_token: Some("s3cret".into()),
                lease_ms: Some(750),
                standby: true,
            }
        );
        assert_eq!(
            parse("cluster launch --model net.json").unwrap(),
            Invocation::Cluster {
                action: ClusterAction::Launch,
                model: Some("net.json".into()),
                shards: 3,
                addr: DEFAULT_ADDR.into(),
                workers: 2,
                vnodes: nrpm_cluster::DEFAULT_VNODES,
                registry_dir: None,
                debug_hooks: false,
                shard: None,
                timeout_ms: None,
                replication: 1,
                join_token: None,
                lease_ms: None,
                standby: false,
            }
        );
        assert!(matches!(
            parse("cluster rollout --model next.json --addr 127.0.0.1:9000 --timeout-ms 500")
                .unwrap(),
            Invocation::Cluster {
                action: ClusterAction::Rollout,
                model: Some(_),
                timeout_ms: Some(500),
                ..
            }
        ));
        // A replication factor of zero would route every request nowhere.
        assert!(parse("cluster launch --model net.json --replication 0").is_err());
        assert!(parse("cluster rollout").is_err());
        assert!(matches!(
            parse("cluster status --addr 127.0.0.1:9000 --timeout-ms 500").unwrap(),
            Invocation::Cluster {
                action: ClusterAction::Status,
                shard: None,
                timeout_ms: Some(500),
                ..
            }
        ));
        assert!(matches!(
            parse("cluster drain 2").unwrap(),
            Invocation::Cluster {
                action: ClusterAction::Drain,
                shard: Some(2),
                ..
            }
        ));
        assert!(matches!(
            parse("cluster kill 0 --addr 127.0.0.1:9000").unwrap(),
            Invocation::Cluster {
                action: ClusterAction::Kill,
                shard: Some(0),
                ..
            }
        ));
    }

    /// End-to-end `registry` lifecycle: warm a cache directory from the
    /// CLI, inspect and verify it, gc an unreferenced checkpoint — then
    /// prove a server over the same checkpoint answers from the warmed
    /// journal without a single modeler run.
    #[test]
    fn registry_warm_feeds_a_server_cache() {
        use nrpm_core::preprocess::NUM_INPUTS;
        use nrpm_nn::NetworkConfig;

        let dir =
            std::env::temp_dir().join(format!("nrpm_cli_registry_test_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let cache_dir = dir.join("registry");
        std::fs::create_dir_all(&cache_dir).unwrap();

        let net_path = dir.join("net.json");
        let network = Network::new(
            &NetworkConfig::new(&[NUM_INPUTS, 16, nrpm_extrap::NUM_CLASSES]),
            7,
        );
        network.save(&net_path).unwrap();

        let data = dir.join("linear.txt");
        let mut text = String::from("PARAMS 1 processes\n");
        for x in [4, 8, 16, 32, 64] {
            text.push_str(&format!("POINT {x} DATA {} {}\n", 2 * x, 2 * x));
        }
        std::fs::write(&data, text).unwrap();

        let warm = |files: Vec<PathBuf>| {
            run(&Invocation::Registry {
                action: RegistryAction::Warm,
                dir: cache_dir.clone(),
                model: Some(net_path.clone()),
                files,
                ref_name: None,
                cache_capacity: 1024,
                adapt: false,
                dry_run: false,
            })
        };
        let maintain = |action| {
            run(&Invocation::Registry {
                action,
                dir: cache_dir.clone(),
                model: None,
                files: vec![],
                ref_name: None,
                cache_capacity: 1024,
                adapt: false,
                dry_run: false,
            })
        };

        let warmed = warm(vec![data.clone()]).unwrap();
        assert!(warmed.contains("warmed 1 outcome(s)"), "{warmed}");
        assert!(warmed.contains("(ref default)"), "{warmed}");

        // Idempotent: the outcome is already journaled.
        let again = warm(vec![data.clone()]).unwrap();
        assert!(
            again.contains("warmed 0 outcome(s), 1 already cached"),
            "{again}"
        );

        let stats = maintain(RegistryAction::Stats).unwrap();
        assert!(stats.contains("checkpoints:   1"), "{stats}");
        assert!(stats.contains("default ->"), "{stats}");
        assert!(stats.contains("cache journal: 1 records"), "{stats}");

        let verified = maintain(RegistryAction::Verify).unwrap();
        assert!(verified.contains("registry clean"), "{verified}");

        // An unreferenced checkpoint is swept by gc; the referenced one and
        // the journal survive.
        let registry = CheckpointRegistry::open(&cache_dir).unwrap();
        let stray = registry
            .put(&Network::new(
                &NetworkConfig::new(&[NUM_INPUTS, 16, nrpm_extrap::NUM_CLASSES]),
                8,
            ))
            .unwrap();
        let swept = maintain(RegistryAction::Gc).unwrap();
        assert!(swept.contains(&hex16(stray)), "{swept}");
        assert!(swept.contains("checkpoints removed: 1"), "{swept}");
        assert!(swept.contains("compacted: 1 -> 1 records"), "{swept}");

        // The warmed journal is a real serving cache: a server over the
        // same checkpoint answers the same request without modeling.
        let store = ModelStore::open(&net_path, AdaptiveOptions::default()).unwrap();
        let server = Server::start(
            "127.0.0.1:0",
            store,
            ServeOptions {
                workers: 1,
                cache_dir: Some(cache_dir.clone()),
                ..Default::default()
            },
        )
        .unwrap();
        let addr = server.addr().to_string();
        let modeled = run(&Invocation::Query {
            what: QueryKind::Model,
            addr: addr.clone(),
            files: vec![data.clone()],
            at: Some(vec![1024.0]),
            timeout_ms: Some(30_000),
            retries: 0,
        })
        .unwrap();
        assert!(modeled.contains("2048"), "{modeled}");
        let stats = run(&Invocation::Query {
            what: QueryKind::Stats,
            addr: addr.clone(),
            files: vec![],
            at: None,
            timeout_ms: Some(30_000),
            retries: 0,
        })
        .unwrap();
        assert!(stats.contains("\"kernels_modeled\": 0"), "{stats}");
        assert!(stats.contains("\"cache_hits\": 1"), "{stats}");
        run(&Invocation::Query {
            what: QueryKind::Shutdown,
            addr,
            files: vec![],
            at: None,
            timeout_ms: Some(30_000),
            retries: 0,
        })
        .unwrap();
        server.join().unwrap();
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn gc_pins_checkpoints_the_swap_journal_still_names() {
        use nrpm_core::preprocess::NUM_INPUTS;
        use nrpm_nn::NetworkConfig;

        let dir = std::env::temp_dir().join("nrpm_cli_gc_pins_test");
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();

        let net = |seed| {
            Network::new(
                &NetworkConfig::new(&[NUM_INPUTS, 16, nrpm_extrap::NUM_CLASSES]),
                seed,
            )
        };
        let registry = CheckpointRegistry::open(&dir).unwrap();
        let referenced = registry.put(&net(1)).unwrap();
        registry.set_ref("default", referenced).unwrap();
        // Serving + rollback-target checkpoints: named only by the swap
        // journal, no ref points at them.
        let serving = registry.put(&net(2)).unwrap();
        let previous = registry.put(&net(3)).unwrap();
        let stray = registry.put(&net(4)).unwrap();
        {
            let (mut journal, _) = SwapJournal::open(&dir).unwrap();
            let seq = journal.begin(serving, previous).unwrap();
            journal.mark_validated(seq).unwrap();
            journal.commit(seq).unwrap();
        }

        // A dry run names the doomed and pinned hashes but deletes nothing.
        let planned = registry_gc(&dir, 16, true).unwrap();
        assert!(
            planned.contains(&format!(
                "would remove unreferenced checkpoint {}",
                hex16(stray)
            )),
            "{planned}"
        );
        assert!(
            planned.contains(&format!(
                "pinned checkpoint {}",
                hex16(serving.min(previous))
            )),
            "{planned}"
        );
        assert!(planned.contains("dry run; nothing deleted"), "{planned}");
        assert!(registry.get(stray).is_ok(), "dry run must not delete");

        let swept = registry_gc(&dir, 16, false).unwrap();
        assert!(
            swept.contains("swap-journal pinned checkpoints: 2"),
            "{swept}"
        );
        assert!(swept.contains(&hex16(stray)), "{swept}");
        assert!(swept.contains("checkpoints removed: 1"), "{swept}");
        assert!(registry.get(referenced).is_ok());
        assert!(
            registry.get(serving).is_ok(),
            "serving checkpoint collected"
        );
        assert!(
            registry.get(previous).is_ok(),
            "rollback target collected — a post-gc rollback would have nothing to restore"
        );
        assert!(registry.get(stray).is_err());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn query_round_trips_against_a_live_server() {
        use nrpm_core::preprocess::NUM_INPUTS;
        use nrpm_nn::NetworkConfig;
        use nrpm_serve::store::ModelStore;

        let dir = std::env::temp_dir().join("nrpm_cli_query_test");
        std::fs::create_dir_all(&dir).unwrap();
        let data = dir.join("linear.txt");
        let mut text = String::from("PARAMS 1 processes\n");
        for x in [4, 8, 16, 32, 64] {
            text.push_str(&format!("POINT {x} DATA {} {}\n", 2 * x, 2 * x));
        }
        std::fs::write(&data, text).unwrap();

        let net = Network::new(
            &NetworkConfig::new(&[NUM_INPUTS, 16, nrpm_extrap::NUM_CLASSES]),
            7,
        );
        let store = ModelStore::from_network(net, AdaptiveOptions::default()).unwrap();
        let server = Server::start("127.0.0.1:0", store, ServeOptions::default()).unwrap();
        let addr = server.addr().to_string();
        let query = |what, files: &[&std::path::Path], at: Option<Vec<f64>>| {
            run(&Invocation::Query {
                what,
                addr: addr.clone(),
                files: files.iter().map(PathBuf::from).collect(),
                at,
                timeout_ms: Some(30_000),
                retries: 0,
            })
        };

        let health = query(QueryKind::Health, &[], None).unwrap();
        assert!(health.contains("\"status\": \"ok\""), "{health}");

        // The retrying path answers identically on a healthy server.
        let retried = run(&Invocation::Query {
            what: QueryKind::Health,
            addr: addr.clone(),
            files: vec![],
            at: None,
            timeout_ms: Some(30_000),
            retries: 2,
        })
        .unwrap();
        assert!(retried.contains("\"status\": \"ok\""), "{retried}");

        let modeled = query(QueryKind::Model, &[&data], Some(vec![1024.0])).unwrap();
        assert!(modeled.contains("\"choice\": \"regression\""), "{modeled}");
        assert!(modeled.contains("2048"), "{modeled}");
        // Provenance trailer: which checkpoint answered, at which epoch.
        assert!(modeled.contains("served by checkpoint"), "{modeled}");
        assert!(modeled.contains("(epoch 0)"), "{modeled}");

        let batched = query(QueryKind::Batch, &[&data, &data], None).unwrap();
        assert!(batched.contains("\"kernels\": 2"), "{batched}");

        let stats = query(QueryKind::Stats, &[], None).unwrap();
        assert!(stats.contains("\"requests_batch\": 1"), "{stats}");

        let drained = query(QueryKind::Shutdown, &[], None).unwrap();
        assert!(drained.contains("\"draining\": true"), "{drained}");
        server.join().unwrap();
        std::fs::remove_file(&data).ok();
    }

    /// `cluster status`/`drain`/`kill` and `query model` all work against
    /// a live router: status renders the per-shard table, a drained shard
    /// leaves rotation, kill needs the debug hook, and model replies name
    /// the answering shard.
    #[test]
    fn cluster_cli_round_trips_against_a_live_router() {
        use nrpm_core::preprocess::NUM_INPUTS;
        use nrpm_nn::NetworkConfig;

        let dir = std::env::temp_dir().join("nrpm_cli_cluster_test");
        std::fs::create_dir_all(&dir).unwrap();
        let data = dir.join("linear.txt");
        let mut text = String::from("PARAMS 1 processes\n");
        for x in [4, 8, 16, 32, 64] {
            text.push_str(&format!("POINT {x} DATA {} {}\n", 2 * x, 2 * x));
        }
        std::fs::write(&data, text).unwrap();

        let network = Network::new(
            &NetworkConfig::new(&[NUM_INPUTS, 16, nrpm_extrap::NUM_CLASSES]),
            7,
        );
        let cluster = Cluster::launch(
            network,
            ClusterOptions {
                shards: 2,
                workers_per_shard: 1,
                debug_hooks: true,
                probe_interval: Duration::from_millis(50),
                ..ClusterOptions::default()
            },
        )
        .unwrap();
        let addr = cluster.router_addr().to_string();
        let cluster_cmd = |action, shard| {
            run(&Invocation::Cluster {
                action,
                model: None,
                shards: 3,
                addr: addr.clone(),
                workers: 2,
                vnodes: nrpm_cluster::DEFAULT_VNODES,
                registry_dir: None,
                debug_hooks: false,
                shard,
                timeout_ms: Some(30_000),
                replication: 1,
                join_token: None,
                lease_ms: None,
                standby: false,
            })
        };

        let modeled = run(&Invocation::Query {
            what: QueryKind::Model,
            addr: addr.clone(),
            files: vec![data.clone()],
            at: Some(vec![1024.0]),
            timeout_ms: Some(30_000),
            retries: 0,
        })
        .unwrap();
        assert!(modeled.contains("2048"), "{modeled}");
        assert!(modeled.contains("served by shard"), "{modeled}");

        let status = cluster_cmd(ClusterAction::Status, None).unwrap();
        assert!(status.contains("shards:     2 (2 routable)"), "{status}");
        assert!(status.contains("requests:   1 routed"), "{status}");
        assert!(status.contains("serving:    (no registry)"), "{status}");
        assert!(status.contains("shard 0: healthy"), "{status}");
        assert!(status.contains("shard 1: healthy"), "{status}");

        // `status` against a plain backend refuses rather than rendering
        // nonsense.
        let shard_addr = cluster.shard_addr(0).unwrap().to_string();
        let not_router = run(&Invocation::Cluster {
            action: ClusterAction::Status,
            model: None,
            shards: 3,
            addr: shard_addr,
            workers: 2,
            vnodes: nrpm_cluster::DEFAULT_VNODES,
            registry_dir: None,
            debug_hooks: false,
            shard: None,
            timeout_ms: Some(30_000),
            replication: 1,
            join_token: None,
            lease_ms: None,
            standby: false,
        })
        .unwrap_err();
        assert!(not_router.message.contains("not an nrpm-cluster router"));

        let drained = cluster_cmd(ClusterAction::Drain, Some(1)).unwrap();
        assert!(drained.contains("\"draining\": true"), "{drained}");
        // Draining the same shard twice is a usage error (exit 2).
        let again = cluster_cmd(ClusterAction::Drain, Some(1)).unwrap_err();
        assert_eq!(again.code, 2, "{again:?}");

        let killed = cluster_cmd(ClusterAction::Kill, Some(0)).unwrap();
        assert!(killed.contains("\"killed\": true"), "{killed}");

        let status = cluster_cmd(ClusterAction::Status, None).unwrap();
        assert!(status.contains("(0 routable)"), "{status}");
        assert!(status.contains("shard 0: killed"), "{status}");
        assert!(status.contains("shard 1: draining"), "{status}");

        run(&Invocation::Query {
            what: QueryKind::Shutdown,
            addr,
            files: vec![],
            at: None,
            timeout_ms: Some(30_000),
            retries: 0,
        })
        .unwrap();
        cluster.join().unwrap();
        std::fs::remove_file(&data).ok();
    }

    #[test]
    fn fit_runs_on_a_text_file() {
        let dir = std::env::temp_dir().join("nrpm_cli_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("linear.txt");
        let mut text = String::from("PARAMS 1 processes\n");
        for x in [4, 8, 16, 32, 64] {
            text.push_str(&format!("POINT {x} DATA {} {} {}\n", 2 * x, 2 * x, 2 * x));
        }
        std::fs::write(&path, text).unwrap();

        let out = run(&Invocation::Fit {
            file: path.clone(),
            adaptive: false,
            network: None,
            at: Some(vec![1024.0]),
            policy: SanitizePolicy::Lenient,
            thresholds: None,
            regime: None,
        })
        .unwrap();
        assert!(out.contains("O(x1)"), "{out}");
        assert!(out.contains("2048"), "{out}"); // 2 * 1024
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn corrupt_input_is_repaired_leniently_and_refused_strictly() {
        let dir = std::env::temp_dir().join("nrpm_cli_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("corrupt.txt");
        let mut text = String::from("PARAMS 1 processes\n");
        for x in [4, 8, 16, 32, 64] {
            // One NaN repetition per point.
            text.push_str(&format!("POINT {x} DATA {} {} nan\n", 2 * x, 2 * x));
        }
        std::fs::write(&path, text).unwrap();

        let lenient = run(&Invocation::Fit {
            file: path.clone(),
            adaptive: false,
            network: None,
            at: None,
            policy: SanitizePolicy::Lenient,
            thresholds: None,
            regime: None,
        })
        .unwrap();
        assert!(lenient.contains("quality:"), "{lenient}");
        assert!(lenient.contains("5 repetitions dropped"), "{lenient}");

        let strict = run(&Invocation::Fit {
            file: path.clone(),
            adaptive: false,
            network: None,
            at: None,
            policy: SanitizePolicy::Strict,
            thresholds: None,
            regime: None,
        })
        .unwrap_err();
        assert_eq!(strict.code, 4, "CorruptData is recoverable: {strict:?}");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn parse_failures_carry_the_path_and_exit_code_3() {
        let dir = std::env::temp_dir().join("nrpm_cli_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("broken.txt");
        std::fs::write(&path, "PARAMS 1 p\nPOINT oops DATA 1\n").unwrap();
        let err = run(&Invocation::Noise { file: path.clone() }).unwrap_err();
        assert_eq!(err.code, 3);
        assert!(err.message.contains("broken.txt"), "{err:?}");
        assert!(err.message.contains("line 2"), "{err:?}");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn noise_runs_on_a_json_file() {
        let dir = std::env::temp_dir().join("nrpm_cli_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("noisy.json");
        let mut set = MeasurementSet::new(1);
        for &x in &[2.0, 4.0, 8.0] {
            set.add_repetitions(&[x], &[x * 0.95, x * 1.05]);
        }
        std::fs::write(&path, set.to_json()).unwrap();

        let out = run(&Invocation::Noise { file: path.clone() }).unwrap();
        assert!(out.contains("mean noise"), "{out}");
        assert!(out.contains("10.00%"), "{out}"); // rrd of (0.95, 1.05)
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn missing_files_produce_errors_not_panics() {
        assert!(run(&Invocation::Noise {
            file: "/nonexistent/x.txt".into()
        })
        .is_err());
        assert!(load_measurements(Path::new("/nonexistent/x.json")).is_err());
    }
}
