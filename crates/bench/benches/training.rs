//! Criterion bench of the neural-network substrate: one training epoch of
//! the classifier on synthetic data, per optimizer (the AdaMax-vs-Adam-vs-
//! SGD ablation), plus single-batch inference.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use nrpm_core::dnn::dataset_from_samples;
use nrpm_core::preprocess::NUM_INPUTS;
use nrpm_extrap::NUM_CLASSES;
use nrpm_nn::{Network, NetworkConfig, OptimizerKind, TrainerOptions};
use nrpm_synth::{generate_training_samples, TrainingSpec};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn bench_training_epoch(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(11);
    let spec = TrainingSpec {
        samples_per_class: 20,
        ..Default::default()
    };
    let data = dataset_from_samples(&generate_training_samples(&spec, &mut rng));

    let mut group = c.benchmark_group("train_epoch");
    group.sample_size(10);
    for (name, optimizer) in [
        ("adamax", OptimizerKind::adamax_default()),
        ("adam", OptimizerKind::adam_default()),
        ("sgd", OptimizerKind::sgd(0.01)),
    ] {
        group.bench_with_input(
            BenchmarkId::from_parameter(name),
            &optimizer,
            |bench, &opt| {
                bench.iter(|| {
                    let mut net = Network::new(&NetworkConfig::compact(), 3);
                    net.train(
                        &data,
                        &TrainerOptions {
                            epochs: 1,
                            batch_size: 128,
                            optimizer: opt,
                            shuffle_seed: 1,
                            ..Default::default()
                        },
                    )
                    .unwrap()
                })
            },
        );
    }
    group.finish();
}

fn bench_inference(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(13);
    let spec = TrainingSpec {
        samples_per_class: 5,
        ..Default::default()
    };
    let data = dataset_from_samples(&generate_training_samples(&spec, &mut rng));
    let net = Network::new(&NetworkConfig::compact(), 3);
    assert_eq!(net.input_dim(), NUM_INPUTS);
    assert_eq!(net.num_classes(), NUM_CLASSES);

    c.bench_function("inference_batch", |bench| {
        bench.iter(|| net.predict_proba(data.inputs()).unwrap())
    });
    let single = data.inputs().row(0).to_vec();
    c.bench_function("inference_single", |bench| {
        bench.iter(|| net.predict_proba_one(&single).unwrap())
    });
}

criterion_group!(benches, bench_training_epoch, bench_inference);
criterion_main!(benches);
