//! Register-blocked GEMM micro-kernels with one-time runtime ISA dispatch.
//!
//! This module is the compute core behind [`crate::matmul_into`] and
//! [`crate::matmul_at_into`]. It replaces the old autovectorized "ikj" loop
//! with an explicit micro-kernel design:
//!
//! * **Micro-tile** — a fixed `MR x NR` register accumulator block
//!   (8x16 doubles on AVX-512, 4x8 sub-tiles on AVX2+FMA) updated with FMA
//!   broadcasts of `A` against vector loads of `B`.
//! * **Two data paths** — a *direct* path that streams `B` rows straight
//!   from the caller's buffer with masked edge loads (wins when the `B`
//!   panel is cache-resident or `M` is small, e.g. the trainer's 16-row
//!   chunks and the first DNN layer where `K = 11`), and a *packed* path
//!   that copies `A`/`B` into contiguous zero-padded panels first (wins on
//!   large weight matrices such as the paper topology's 1500x1500 layers).
//! * **Blocking** — the shared `k` dimension is always walked in fixed
//!   [`KC`]-sized chunks; `M`/`N` are blocked by `MC`/`NC` in the packed
//!   path. `MC` and the direct/packed crossover are chosen by a small
//!   one-shot autotuner cached per process ([`kernel_tuning`]); `KC` is
//!   deliberately **not** tuned — see the determinism note below.
//!
//! # Determinism
//!
//! Every path — direct, packed, scalar fallback, any `MC`/`NC` choice, any
//! thread-stripe partition — accumulates each output element in the exact
//! same order: `KC`-sized k-chunks ascending, plain ascending `k` inside a
//! chunk, one fused multiply-add per term, chunk sums added to `C` in
//! ascending chunk order. SIMD lanes only ever span output *columns*, never
//! the reduction dimension. Consequently the autotuner, the path heuristic
//! and the thread count are pure performance knobs: flipping any of them
//! cannot change a single output bit. This is what lets the f64 training
//! path stay bitwise-identical at every thread count while the kernel
//! underneath is rewritten. (Results still differ across *machines* whose
//! selected ISA differs — a non-FMA scalar fallback rounds each
//! multiply-add in two steps — exactly as any FMA-using BLAS does.)
//!
//! # Environment overrides
//!
//! * `NRPM_MATMUL_ISA` — force `scalar` or `avx2` (downgrades only).
//! * `NRPM_MATMUL_AUTOTUNE=0` — skip probing, use static defaults.
//! * `NRPM_MATMUL_MC`, `NRPM_MATMUL_NC`, `NRPM_MATMUL_DIRECT_LIMIT`,
//!   `NRPM_MATMUL_DIRECT_MIN_M` — pin individual tuning values.

// The micro-kernels index fixed-size register-tile arrays by row/column on
// purpose: the loop indices mirror the MR x NR blocking and the offsets into
// the strided C buffer, which iterator adapters would obscure.
#![allow(clippy::needless_range_loop, clippy::manual_memcpy)]

use std::sync::OnceLock;

/// Fixed block size along the shared `k` dimension.
///
/// Not autotuned on purpose: the k-chunk size fixes the floating-point
/// association of every dot product, so tuning it would make results depend
/// on probe timings. 256 doubles (2 KiB per packed column) keeps the active
/// `B` panel rows in L1 on every x86-64 of the last decade.
pub const KC: usize = 256;

/// Micro-tile rows: the packing geometry groups `A` rows in blocks of 8.
pub const MR: usize = 8;

/// Micro-tile columns: `B` is packed in 16-column panels.
pub const NR: usize = 16;

/// `B` panels at or below this many elements always take the direct path
/// without consulting (or triggering) the autotuner.
const SMALL_B_ELEMS: usize = 1 << 16;

/// Instruction set selected once per process for the f64 and int8 kernels.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KernelIsa {
    /// AVX-512F (+BW for the int8 kernel): 8x16 f64 micro-tile.
    Avx512,
    /// AVX2 + FMA: 4x8 f64 sub-tiles over the same packed geometry.
    Avx2,
    /// Portable fallback: blocked scalar loops, no FMA.
    Scalar,
}

impl KernelIsa {
    /// Whether this ISA contracts each multiply-add into a single rounding.
    pub fn uses_fma(self) -> bool {
        !matches!(self, KernelIsa::Scalar)
    }
}

static ISA: OnceLock<KernelIsa> = OnceLock::new();

/// The ISA the kernels will use, detected once per process.
pub fn kernel_isa() -> KernelIsa {
    *ISA.get_or_init(detect_isa)
}

fn detect_isa() -> KernelIsa {
    let forced = std::env::var("NRPM_MATMUL_ISA").ok();
    #[cfg(target_arch = "x86_64")]
    {
        let avx512 = is_x86_feature_detected!("avx512f") && is_x86_feature_detected!("avx512bw");
        let avx2 = is_x86_feature_detected!("avx2") && is_x86_feature_detected!("fma");
        match forced.as_deref() {
            Some("scalar") => KernelIsa::Scalar,
            Some("avx2") if avx2 => KernelIsa::Avx2,
            _ if avx512 => KernelIsa::Avx512,
            _ if avx2 => KernelIsa::Avx2,
            _ => KernelIsa::Scalar,
        }
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        let _ = forced;
        KernelIsa::Scalar
    }
}

/// Cache-blocking parameters chosen once per process.
#[derive(Debug, Clone, Copy)]
pub struct KernelTuning {
    /// Row-block size for the packed path's `A` panels.
    pub mc: usize,
    /// Column-block size (multiple of [`NR`]) for the packed path.
    pub nc: usize,
    /// `B` panels larger than this many f64 elements leave the direct path.
    pub direct_limit: usize,
    /// Below this many output rows the packed path cannot amortize packing.
    pub direct_min_m: usize,
}

impl Default for KernelTuning {
    fn default() -> Self {
        KernelTuning {
            mc: 64,
            nc: 4096,
            direct_limit: 512 * 1024,
            direct_min_m: 64,
        }
    }
}

static TUNING: OnceLock<KernelTuning> = OnceLock::new();

/// Block sizes in effect, running the one-shot autotuner on first use.
pub fn kernel_tuning() -> KernelTuning {
    *TUNING.get_or_init(|| autotune(kernel_isa()))
}

fn env_usize(name: &str) -> Option<usize> {
    std::env::var(name).ok()?.parse().ok()
}

fn autotune(isa: KernelIsa) -> KernelTuning {
    let mut t = KernelTuning::default();
    let probe = !matches!(std::env::var("NRPM_MATMUL_AUTOTUNE").as_deref(), Ok("0"))
        && isa != KernelIsa::Scalar;
    if probe {
        // Probe the direct/packed crossover at two B footprints (2 MiB and
        // 8 MiB) and MC on a packed mid-size case. Both paths are bitwise
        // identical, so whatever the stopwatch says is safe to act on.
        let d1 = probe_direct_wins(isa, &t, 64, 512, 512);
        let d2 = probe_direct_wins(isa, &t, 64, 1024, 1024);
        t.direct_limit = if d2 {
            2 * 1024 * 1024
        } else if d1 {
            512 * 1024
        } else {
            128 * 1024
        };
        let mut best = (f64::INFINITY, t.mc);
        for mc in [32, 64, 128] {
            let cand = KernelTuning { mc, ..t };
            let dt = probe_time(isa, &cand, 192, 512, 512, GemmPath::Packed);
            if dt < best.0 {
                best = (dt, mc);
            }
        }
        t.mc = best.1;
    }
    if let Some(v) = env_usize("NRPM_MATMUL_MC") {
        t.mc = v.clamp(MR, 4096);
    }
    if let Some(v) = env_usize("NRPM_MATMUL_NC") {
        t.nc = v.max(NR) / NR * NR;
    }
    if let Some(v) = env_usize("NRPM_MATMUL_DIRECT_LIMIT") {
        t.direct_limit = v;
    }
    if let Some(v) = env_usize("NRPM_MATMUL_DIRECT_MIN_M") {
        t.direct_min_m = v;
    }
    t
}

fn probe_time(
    isa: KernelIsa,
    tun: &KernelTuning,
    m: usize,
    k: usize,
    n: usize,
    path: GemmPath,
) -> f64 {
    let a: Vec<f64> = (0..m * k)
        .map(|i| (i.wrapping_mul(2654435761) % 1000) as f64 / 500.0 - 1.0)
        .collect();
    let b: Vec<f64> = (0..k * n)
        .map(|i| (i.wrapping_mul(1099087573) % 1000) as f64 / 500.0 - 1.0)
        .collect();
    let mut c = vec![0.0; m * n];
    let mut best = f64::INFINITY;
    for rep in 0..3 {
        let t0 = std::time::Instant::now();
        gemm_serial(
            isa,
            tun,
            AView {
                data: &a,
                rs: k,
                ks: 1,
            },
            &b,
            &mut c,
            0,
            m,
            k,
            n,
            path,
        );
        let dt = t0.elapsed().as_secs_f64();
        // First rep is warmup (page faults, frequency ramp).
        if rep > 0 && dt < best {
            best = dt;
        }
    }
    best
}

fn probe_direct_wins(isa: KernelIsa, tun: &KernelTuning, m: usize, k: usize, n: usize) -> bool {
    probe_time(isa, tun, m, k, n, GemmPath::Direct)
        < probe_time(isa, tun, m, k, n, GemmPath::Packed)
}

/// Which compute path a product takes. Both paths are bitwise identical;
/// the choice is purely about cache behavior.
#[doc(hidden)]
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GemmPath {
    /// Stream `B` in place with masked edge loads; no packing.
    Direct,
    /// Copy `A`/`B` into contiguous zero-padded panels first.
    Packed,
}

/// Picks direct vs packed for an `m x k * k x n` product.
///
/// Depends only on the shape (never on the data or the thread stripe), so
/// every stripe of one product — and the sequential run of the same shape —
/// agrees on the path.
pub(crate) fn choose_path(isa: KernelIsa, m: usize, k: usize, n: usize) -> GemmPath {
    if isa == KernelIsa::Scalar {
        return GemmPath::Direct; // scalar has a single code path
    }
    let b_elems = k * n;
    if b_elems <= SMALL_B_ELEMS {
        return GemmPath::Direct;
    }
    let t = kernel_tuning();
    if m < t.direct_min_m || b_elems <= t.direct_limit {
        GemmPath::Direct
    } else {
        GemmPath::Packed
    }
}

/// A strided view of the left operand: element `(row, kk)` lives at
/// `data[row * rs + kk * ks]`. `(rs, ks) = (k, 1)` for `A` itself and
/// `(1, m)` for `Aᵀ`, which is how `matmul_at_into` reuses every kernel
/// here without materializing the transpose.
#[derive(Clone, Copy)]
pub(crate) struct AView<'a> {
    pub data: &'a [f64],
    pub rs: usize,
    pub ks: usize,
}

/// Packs all of `B` (`k x n` row-major) into 16-column zero-padded panels,
/// k-major inside each panel, `KC`-chunked along `k`. Panel `(jp, k0)`
/// starts at `NR * (jp * k + k0)`.
pub(crate) fn pack_b_full(b: &[f64], k: usize, n: usize, out: &mut Vec<f64>) {
    let np = n.div_ceil(NR);
    out.clear();
    out.resize(np * k * NR, 0.0);
    for jp in 0..np {
        let col0 = jp * NR;
        let ncols = NR.min(n - col0);
        let mut k0 = 0;
        while k0 < k {
            let kc = KC.min(k - k0);
            let base = NR * (jp * k + k0);
            for kk in 0..kc {
                let src = &b[(k0 + kk) * n + col0..(k0 + kk) * n + col0 + ncols];
                let dst = &mut out[base + kk * NR..base + kk * NR + ncols];
                dst.copy_from_slice(src);
            }
            k0 += KC;
        }
    }
}

/// Packs `mc` rows of the (possibly strided) left operand starting at
/// global row `row0`, depth window `[k0, k0+kc)`, into `MR`-row groups
/// (group `g` at `g * kc * MR`, element `(kk, i)` at `kk * MR + i`),
/// zero-padding the last group.
fn pack_a(a: AView<'_>, row0: usize, mc: usize, k0: usize, kc: usize, out: &mut [f64]) {
    let groups = mc.div_ceil(MR);
    for g in 0..groups {
        let base = g * kc * MR;
        let rows_here = MR.min(mc - g * MR);
        for kk in 0..kc {
            let dst = &mut out[base + kk * MR..base + (kk + 1) * MR];
            for (i, slot) in dst.iter_mut().enumerate() {
                *slot = if i < rows_here {
                    a.data[(row0 + g * MR + i) * a.rs + (k0 + kk) * a.ks]
                } else {
                    0.0
                };
            }
        }
    }
}

/// Computes one thread-stripe of `C += A*B` serially. `c` is the stripe's
/// `rows x n` row-major slice; `row0` is its first global row. `C` must be
/// zeroed by the caller. For `GemmPath::Packed` the caller may supply a
/// pre-packed `B` (shared across stripes); otherwise it is packed here.
#[allow(clippy::too_many_arguments)]
pub(crate) fn gemm_stripe(
    isa: KernelIsa,
    tun: &KernelTuning,
    a: AView<'_>,
    b: &[f64],
    packed_b: Option<&[f64]>,
    c: &mut [f64],
    row0: usize,
    rows: usize,
    k: usize,
    n: usize,
    path: GemmPath,
) {
    if rows == 0 || n == 0 || k == 0 {
        return;
    }
    match (isa, path) {
        (KernelIsa::Scalar, _) => scalar_stripe(a, b, c, row0, rows, k, n, false),
        #[cfg(target_arch = "x86_64")]
        (_, GemmPath::Direct) => x86::direct_stripe(isa, a, b, c, row0, rows, k, n),
        #[cfg(target_arch = "x86_64")]
        (_, GemmPath::Packed) => {
            let mut local;
            let pb = match packed_b {
                Some(pb) => pb,
                None => {
                    local = Vec::new();
                    pack_b_full(b, k, n, &mut local);
                    &local[..]
                }
            };
            x86::packed_stripe(isa, tun, a, pb, c, row0, rows, k, n);
        }
        #[cfg(not(target_arch = "x86_64"))]
        _ => scalar_stripe(a, b, c, row0, rows, k, n, false),
    }
}

/// Serial full-matrix GEMM on an explicit path (autotuner + tests).
#[allow(clippy::too_many_arguments)]
fn gemm_serial(
    isa: KernelIsa,
    tun: &KernelTuning,
    a: AView<'_>,
    b: &[f64],
    c: &mut [f64],
    row0: usize,
    rows: usize,
    k: usize,
    n: usize,
    path: GemmPath,
) {
    c.fill(0.0);
    gemm_stripe(isa, tun, a, b, None, c, row0, rows, k, n, path);
}

/// Blocked scalar kernel; also the *reference semantics* for every SIMD
/// path when `fma` is true: per element, `KC`-chunk sums accumulated with
/// `mul_add` in ascending `k`; the first chunk's sum is *stored* to `C`
/// (the caller zeroed it, so a load-add would only waste bandwidth — this
/// matters for small `k`, where the epilogue rivals the FMA work), later
/// chunks added in ascending order.
#[allow(clippy::too_many_arguments)]
pub(crate) fn scalar_stripe(
    a: AView<'_>,
    b: &[f64],
    c: &mut [f64],
    row0: usize,
    rows: usize,
    k: usize,
    n: usize,
    fma: bool,
) {
    const JT: usize = 8;
    let mut k0 = 0;
    while k0 < k {
        let kc = KC.min(k - k0);
        for r in 0..rows {
            let cr = &mut c[r * n..(r + 1) * n];
            let mut jr = 0;
            while jr < n {
                let w = JT.min(n - jr);
                let mut acc = [0.0f64; JT];
                for kk in 0..kc {
                    let av = a.data[(row0 + r) * a.rs + (k0 + kk) * a.ks];
                    let br = &b[(k0 + kk) * n + jr..(k0 + kk) * n + jr + w];
                    if fma {
                        for j in 0..w {
                            acc[j] = av.mul_add(br[j], acc[j]);
                        }
                    } else {
                        for j in 0..w {
                            acc[j] += av * br[j];
                        }
                    }
                }
                if k0 == 0 {
                    for j in 0..w {
                        cr[jr + j] = acc[j];
                    }
                } else {
                    for j in 0..w {
                        cr[jr + j] += acc[j];
                    }
                }
                jr += JT;
            }
        }
        k0 += KC;
    }
}

#[cfg(target_arch = "x86_64")]
mod x86 {
    use super::{AView, KernelIsa, KernelTuning, KC, MR, NR};
    use std::arch::x86_64::*;

    /// Direct path: stream `B` rows in place, masked loads at the column
    /// edge, one `C` write per `KC` chunk (the first chunk stores, later
    /// chunks load-add).
    #[allow(clippy::too_many_arguments)]
    pub(super) fn direct_stripe(
        isa: KernelIsa,
        a: AView<'_>,
        b: &[f64],
        c: &mut [f64],
        row0: usize,
        rows: usize,
        k: usize,
        n: usize,
    ) {
        // Per-row-tile A staging: element `(kk, i)` of the current tile at
        // `kk * MRK + i`. One base pointer with constant displacements in
        // the micro-kernel, instead of `MRK` live row pointers that would
        // spill out of the integer register file.
        let mut apk = [0.0f64; MR * KC];
        let mut k0 = 0;
        while k0 < k {
            let kc = KC.min(k - k0);
            let mut ir = 0;
            while ir < rows {
                let rem = rows - ir;
                match isa {
                    // SAFETY: `isa` is only Avx512/Avx2 when the CPU
                    // reported the matching features at dispatch time.
                    KernelIsa::Avx512 => unsafe {
                        let take = if rem >= 8 {
                            direct_cols_512::<8>(a, b, c, &mut apk, row0, ir, k0, kc, n);
                            8
                        } else if rem >= 4 {
                            direct_cols_512::<4>(a, b, c, &mut apk, row0, ir, k0, kc, n);
                            4
                        } else if rem >= 2 {
                            direct_cols_512::<2>(a, b, c, &mut apk, row0, ir, k0, kc, n);
                            2
                        } else {
                            direct_cols_512::<1>(a, b, c, &mut apk, row0, ir, k0, kc, n);
                            1
                        };
                        ir += take;
                    },
                    KernelIsa::Avx2 => unsafe {
                        let take = if rem >= 4 {
                            direct_cols_256::<4>(a, b, c, &mut apk, row0, ir, k0, kc, n);
                            4
                        } else if rem >= 2 {
                            direct_cols_256::<2>(a, b, c, &mut apk, row0, ir, k0, kc, n);
                            2
                        } else {
                            direct_cols_256::<1>(a, b, c, &mut apk, row0, ir, k0, kc, n);
                            1
                        };
                        ir += take;
                    },
                    KernelIsa::Scalar => unreachable!("scalar has its own stripe"),
                }
            }
            k0 += KC;
        }
    }

    /// Shares `kd512`'s target features so the micro-kernel inlines into
    /// the `jr` loop (a plain caller would pay a full call — argument
    /// arrays spilled through the stack — per 16-column group).
    #[target_feature(enable = "avx512f")]
    #[allow(clippy::too_many_arguments)]
    unsafe fn direct_cols_512<const MRK: usize>(
        a: AView<'_>,
        b: &[f64],
        c: &mut [f64],
        apk: &mut [f64; super::MR * KC],
        row0: usize,
        ir: usize,
        k0: usize,
        kc: usize,
        n: usize,
    ) {
        let ad = a.data.as_ptr();
        // First C row of this tile; the micro-kernel walks rows by `n`.
        let ctile = unsafe { c.as_mut_ptr().add(ir * n) };
        // Pack kk-outer so the writes are contiguous (i-outer strided
        // writes tempt the autovectorizer into scatter stores).
        let mut rp = [std::ptr::null::<f64>(); MRK];
        for (i, p) in rp.iter_mut().enumerate() {
            // In bounds: row0+ir+i < m and k0 < k.
            *p = unsafe { ad.add((row0 + ir + i) * a.rs + k0 * a.ks) };
        }
        for kk in 0..kc {
            for i in 0..MRK {
                apk[kk * MRK + i] = unsafe { *rp[i].add(kk * a.ks) };
            }
        }
        let bbase = unsafe { b.as_ptr().add(k0 * n) };
        let full = n - n % NR;
        let mut jr = 0;
        while jr < full {
            unsafe {
                kd512::<MRK, true>(
                    apk.as_ptr(),
                    bbase.add(jr),
                    n,
                    kc,
                    ctile.add(jr),
                    0xff,
                    0xff,
                    k0 == 0,
                )
            };
            jr += NR;
        }
        if jr < n {
            let nr = n - jr;
            let m0: u8 = if nr >= 8 {
                0xff
            } else {
                (1u8 << nr).wrapping_sub(1)
            };
            let m1: u8 = if nr <= 8 {
                0
            } else {
                (1u8 << (nr - 8)).wrapping_sub(1)
            };
            unsafe {
                kd512::<MRK, false>(
                    apk.as_ptr(),
                    bbase.wrapping_add(jr),
                    n,
                    kc,
                    ctile.wrapping_add(jr),
                    m0,
                    m1,
                    k0 == 0,
                )
            };
        }
    }

    /// 8-wide masks for AVX2 `maskload`/`maskstore` (row `w` enables the
    /// first `w` lanes).
    const LANE_MASKS: [[i64; 4]; 5] = [
        [0, 0, 0, 0],
        [-1, 0, 0, 0],
        [-1, -1, 0, 0],
        [-1, -1, -1, 0],
        [-1, -1, -1, -1],
    ];

    #[target_feature(enable = "avx2", enable = "fma")]
    #[allow(clippy::too_many_arguments)]
    unsafe fn direct_cols_256<const MRK: usize>(
        a: AView<'_>,
        b: &[f64],
        c: &mut [f64],
        apk: &mut [f64; super::MR * KC],
        row0: usize,
        ir: usize,
        k0: usize,
        kc: usize,
        n: usize,
    ) {
        let ad = a.data.as_ptr();
        let ctile = unsafe { c.as_mut_ptr().add(ir * n) };
        for i in 0..MRK {
            let ap = unsafe { ad.add((row0 + ir + i) * a.rs + k0 * a.ks) };
            for kk in 0..kc {
                apk[kk * MRK + i] = unsafe { *ap.add(kk * a.ks) };
            }
        }
        let bbase = unsafe { b.as_ptr().add(k0 * n) };
        let fullm = unsafe { _mm256_loadu_si256(LANE_MASKS[4].as_ptr() as *const __m256i) };
        let full = n - n % 8;
        let mut jr = 0;
        while jr < full {
            unsafe {
                kd256::<MRK>(
                    apk.as_ptr(),
                    bbase.add(jr),
                    n,
                    kc,
                    ctile.add(jr),
                    fullm,
                    fullm,
                    k0 == 0,
                )
            };
            jr += 8;
        }
        if jr < n {
            let nr = n - jr;
            let w0 = nr.min(4);
            let w1 = nr.saturating_sub(4);
            let m0 = unsafe { _mm256_loadu_si256(LANE_MASKS[w0].as_ptr() as *const __m256i) };
            let m1 = unsafe { _mm256_loadu_si256(LANE_MASKS[w1].as_ptr() as *const __m256i) };
            unsafe {
                kd256::<MRK>(
                    apk.as_ptr(),
                    bbase.wrapping_add(jr),
                    n,
                    kc,
                    ctile.wrapping_add(jr),
                    m0,
                    m1,
                    k0 == 0,
                )
            };
        }
    }

    /// AVX-512 direct micro-kernel: `MRK` rows x 16 columns, `C += A*B`
    /// over one `KC` chunk. Column edges are masked; masked-off lanes of a
    /// `maskz` load never fault, so `b`/`c` pointers may dangle past the
    /// row end (they are built with `wrapping_add` and only dereferenced
    /// under the mask). `store` marks the first `KC` chunk: its sums are
    /// written straight to `C` without the load-add round trip (mirrors
    /// the `scalar_stripe` reference semantics bit for bit). `FULL` means
    /// all 16 columns are in bounds, so plain loads/stores replace the
    /// masked forms (identical lanes, cheaper encodings). The k-loop is
    /// manually unrolled 4x (the FMA order per accumulator is unchanged —
    /// still one sequential chain — so results stay bitwise identical);
    /// LLVM's unroller gives up on the 30-instruction body, and at small
    /// `kc` the loop control is a measurable slice of each group.
    #[inline]
    #[target_feature(enable = "avx512f")]
    #[allow(clippy::too_many_arguments)]
    unsafe fn kd512<const MRK: usize, const FULL: bool>(
        apk: *const f64,
        b: *const f64,
        ldb: usize,
        kc: usize,
        cp: *mut f64,
        m0: u8,
        m1: u8,
        store: bool,
    ) {
        let mut acc = [[_mm512_setzero_pd(); 2]; MRK];
        let mut aoff = 0usize;
        let mut boff = 0usize;
        macro_rules! step {
            () => {{
                let (b0, b1) = if FULL {
                    // Warm the next column group's slice of this B row
                    // while we compute on the current one: the 16-column
                    // stride down B defeats the hardware streamer, so
                    // without this every group re-pulls B from L2.
                    // Prefetches never fault, so running past the row end
                    // on the last group is fine.
                    _mm_prefetch::<_MM_HINT_T0>(b.wrapping_add(boff + NR) as *const i8);
                    (
                        _mm512_loadu_pd(b.wrapping_add(boff)),
                        _mm512_loadu_pd(b.wrapping_add(boff + 8)),
                    )
                } else {
                    (
                        _mm512_maskz_loadu_pd(m0, b.wrapping_add(boff)),
                        _mm512_maskz_loadu_pd(m1, b.wrapping_add(boff + 8)),
                    )
                };
                for i in 0..MRK {
                    let av = _mm512_set1_pd(*apk.add(aoff + i));
                    acc[i][0] = _mm512_fmadd_pd(av, b0, acc[i][0]);
                    acc[i][1] = _mm512_fmadd_pd(av, b1, acc[i][1]);
                }
                aoff += MRK;
                boff += ldb;
            }};
        }
        let mut kk = 0;
        while kk + 4 <= kc {
            step!();
            step!();
            step!();
            step!();
            kk += 4;
        }
        while kk < kc {
            step!();
            kk += 1;
        }
        // C rows share B's stride (`ldb` is the common row length `n`).
        match (FULL, store) {
            (true, true) => {
                for i in 0..MRK {
                    let p = cp.add(i * ldb);
                    _mm512_storeu_pd(p, acc[i][0]);
                    _mm512_storeu_pd(p.add(8), acc[i][1]);
                }
            }
            (true, false) => {
                for i in 0..MRK {
                    let p = cp.add(i * ldb);
                    let o0 = _mm512_loadu_pd(p);
                    let o1 = _mm512_loadu_pd(p.add(8));
                    _mm512_storeu_pd(p, _mm512_add_pd(o0, acc[i][0]));
                    _mm512_storeu_pd(p.add(8), _mm512_add_pd(o1, acc[i][1]));
                }
            }
            (false, true) => {
                for i in 0..MRK {
                    let p = cp.wrapping_add(i * ldb);
                    _mm512_mask_storeu_pd(p, m0, acc[i][0]);
                    _mm512_mask_storeu_pd(p.wrapping_add(8), m1, acc[i][1]);
                }
            }
            (false, false) => {
                for i in 0..MRK {
                    let p = cp.wrapping_add(i * ldb);
                    let o0 = _mm512_maskz_loadu_pd(m0, p);
                    let o1 = _mm512_maskz_loadu_pd(m1, p.wrapping_add(8));
                    _mm512_mask_storeu_pd(p, m0, _mm512_add_pd(o0, acc[i][0]));
                    _mm512_mask_storeu_pd(p.wrapping_add(8), m1, _mm512_add_pd(o1, acc[i][1]));
                }
            }
        }
    }

    /// AVX2+FMA direct micro-kernel: `MRK` rows x 8 columns.
    #[inline]
    #[target_feature(enable = "avx2", enable = "fma")]
    #[allow(clippy::too_many_arguments)]
    unsafe fn kd256<const MRK: usize>(
        apk: *const f64,
        b: *const f64,
        ldb: usize,
        kc: usize,
        cp: *mut f64,
        m0: __m256i,
        m1: __m256i,
        store: bool,
    ) {
        let mut acc = [[_mm256_setzero_pd(); 2]; MRK];
        let mut aoff = 0usize;
        let mut boff = 0usize;
        // Manual 4x k-unroll, same sequential FMA chain per accumulator as
        // the rolled loop (bitwise identical) — see `kd512`.
        macro_rules! step {
            () => {{
                let b0 = _mm256_maskload_pd(b.wrapping_add(boff), m0);
                let b1 = _mm256_maskload_pd(b.wrapping_add(boff + 4), m1);
                for i in 0..MRK {
                    let av = _mm256_set1_pd(*apk.add(aoff + i));
                    acc[i][0] = _mm256_fmadd_pd(av, b0, acc[i][0]);
                    acc[i][1] = _mm256_fmadd_pd(av, b1, acc[i][1]);
                }
                aoff += MRK;
                boff += ldb;
            }};
        }
        let mut kk = 0;
        while kk + 4 <= kc {
            step!();
            step!();
            step!();
            step!();
            kk += 4;
        }
        while kk < kc {
            step!();
            kk += 1;
        }
        if store {
            for i in 0..MRK {
                let p = cp.wrapping_add(i * ldb);
                _mm256_maskstore_pd(p, m0, acc[i][0]);
                _mm256_maskstore_pd(p.wrapping_add(4), m1, acc[i][1]);
            }
        } else {
            for i in 0..MRK {
                let p = cp.wrapping_add(i * ldb);
                let o0 = _mm256_maskload_pd(p, m0);
                let o1 = _mm256_maskload_pd(p.wrapping_add(4), m1);
                _mm256_maskstore_pd(p, m0, _mm256_add_pd(o0, acc[i][0]));
                _mm256_maskstore_pd(p.wrapping_add(4), m1, _mm256_add_pd(o1, acc[i][1]));
            }
        }
    }

    /// Packed path: GEBP loop nest over pre-packed `B` panels and locally
    /// packed `A` blocks; micro-kernel writes a full `MR x NR` accumulator
    /// tile which is then edge-trimmed into `C`.
    #[allow(clippy::too_many_arguments)]
    pub(super) fn packed_stripe(
        isa: KernelIsa,
        tun: &KernelTuning,
        a: AView<'_>,
        pb: &[f64],
        c: &mut [f64],
        row0: usize,
        rows: usize,
        k: usize,
        n: usize,
    ) {
        let mc_b = tun.mc.max(MR);
        let nc_b = (tun.nc.max(NR) / NR) * NR;
        let mut apbuf = vec![0.0f64; mc_b.div_ceil(MR) * MR * KC];
        let mut acc = [0.0f64; MR * NR];
        let mut jc = 0;
        while jc < n {
            let ncb = nc_b.min(n - jc);
            let mut ic = 0;
            while ic < rows {
                let mc = mc_b.min(rows - ic);
                let mut k0 = 0;
                while k0 < k {
                    let kc = KC.min(k - k0);
                    super::pack_a(a, row0 + ic, mc, k0, kc, &mut apbuf);
                    let jp_end = (jc + ncb).div_ceil(NR);
                    for jp in jc / NR..jp_end {
                        let bp = &pb[NR * (jp * k + k0)..];
                        let jcol = jp * NR;
                        let nr = NR.min(n - jcol);
                        let mut ir = 0;
                        while ir < mc {
                            let mr = MR.min(mc - ir);
                            let apan = &apbuf[(ir / MR) * kc * MR..];
                            match isa {
                                KernelIsa::Avx512 => unsafe {
                                    kp512(apan.as_ptr(), bp.as_ptr(), kc, acc.as_mut_ptr());
                                },
                                KernelIsa::Avx2 => unsafe {
                                    for rsub in 0..2 {
                                        for chalf in 0..2 {
                                            kp256(
                                                apan.as_ptr().add(rsub * 4),
                                                bp.as_ptr().add(chalf * 8),
                                                kc,
                                                acc.as_mut_ptr().add(rsub * 4 * NR + chalf * 8),
                                            );
                                        }
                                    }
                                },
                                KernelIsa::Scalar => unreachable!("scalar has its own stripe"),
                            }
                            for i in 0..mr {
                                let co = (ic + ir + i) * n + jcol;
                                let crow = &mut c[co..co + nr];
                                if k0 == 0 {
                                    // First KC chunk stores (C is zeroed);
                                    // matches the reference semantics.
                                    for (j, slot) in crow.iter_mut().enumerate() {
                                        *slot = acc[i * NR + j];
                                    }
                                } else {
                                    for (j, slot) in crow.iter_mut().enumerate() {
                                        *slot += acc[i * NR + j];
                                    }
                                }
                            }
                            ir += MR;
                        }
                    }
                    k0 += KC;
                }
                ic += mc_b;
            }
            jc += nc_b;
        }
    }

    /// AVX-512 packed micro-kernel: 8x16 tile from `MR`-strided `A` panel
    /// and `NR`-strided `B` panel, result written to `acc` (row-major 8x16).
    #[target_feature(enable = "avx512f")]
    unsafe fn kp512(ap: *const f64, bp: *const f64, kc: usize, acc: *mut f64) {
        let mut r = [[_mm512_setzero_pd(); 2]; 8];
        for kk in 0..kc {
            let b0 = _mm512_loadu_pd(bp.add(kk * NR));
            let b1 = _mm512_loadu_pd(bp.add(kk * NR + 8));
            let abase = ap.add(kk * MR);
            for i in 0..8 {
                let av = _mm512_set1_pd(*abase.add(i));
                r[i][0] = _mm512_fmadd_pd(av, b0, r[i][0]);
                r[i][1] = _mm512_fmadd_pd(av, b1, r[i][1]);
            }
        }
        for i in 0..8 {
            _mm512_storeu_pd(acc.add(i * NR), r[i][0]);
            _mm512_storeu_pd(acc.add(i * NR + 8), r[i][1]);
        }
    }

    /// AVX2+FMA packed micro-kernel: a 4x8 quadrant of the 8x16 tile
    /// (`ap`/`bp`/`acc` pre-offset by the caller; strides stay `MR`/`NR`).
    #[target_feature(enable = "avx2", enable = "fma")]
    unsafe fn kp256(ap: *const f64, bp: *const f64, kc: usize, acc: *mut f64) {
        let mut r = [[_mm256_setzero_pd(); 2]; 4];
        for kk in 0..kc {
            let b0 = _mm256_loadu_pd(bp.add(kk * NR));
            let b1 = _mm256_loadu_pd(bp.add(kk * NR + 4));
            let abase = ap.add(kk * MR);
            for i in 0..4 {
                let av = _mm256_set1_pd(*abase.add(i));
                r[i][0] = _mm256_fmadd_pd(av, b0, r[i][0]);
                r[i][1] = _mm256_fmadd_pd(av, b1, r[i][1]);
            }
        }
        for i in 0..4 {
            _mm256_storeu_pd(acc.add(i * NR), r[i][0]);
            _mm256_storeu_pd(acc.add(i * NR + 4), r[i][1]);
        }
    }
}

/// Test/bench hooks: run the GEMM on an explicit path or with reference
/// semantics, independent of the process-wide tuning.
#[doc(hidden)]
pub mod testing {
    use super::*;

    /// Full product on the active ISA over a forced path.
    pub fn gemm_forced(
        a: &[f64],
        b: &[f64],
        m: usize,
        k: usize,
        n: usize,
        path: GemmPath,
    ) -> Vec<f64> {
        let mut c = vec![0.0; m * n];
        let tun = KernelTuning::default();
        gemm_serial(
            kernel_isa(),
            &tun,
            AView {
                data: a,
                rs: k,
                ks: 1,
            },
            b,
            &mut c,
            0,
            m,
            k,
            n,
            path,
        );
        c
    }

    /// Scalar KC-chunked reference with the same association as the SIMD
    /// kernels (`fma: true` mirrors the FMA contraction).
    pub fn gemm_reference(
        a: &[f64],
        b: &[f64],
        m: usize,
        k: usize,
        n: usize,
        fma: bool,
    ) -> Vec<f64> {
        let mut c = vec![0.0; m * n];
        scalar_stripe(
            AView {
                data: a,
                rs: k,
                ks: 1,
            },
            b,
            &mut c,
            0,
            m,
            k,
            n,
            fma,
        );
        c
    }

    /// Transposed-A product (`C = AᵀB`, `a` is `k x m`) over a forced path.
    pub fn gemm_at_forced(
        a: &[f64],
        b: &[f64],
        k: usize,
        m: usize,
        n: usize,
        path: GemmPath,
    ) -> Vec<f64> {
        let mut c = vec![0.0; m * n];
        let tun = KernelTuning::default();
        gemm_serial(
            kernel_isa(),
            &tun,
            AView {
                data: a,
                rs: 1,
                ks: m,
            },
            b,
            &mut c,
            0,
            m,
            k,
            n,
            path,
        );
        c
    }

    /// Transposed-A scalar reference.
    pub fn gemm_at_reference(
        a: &[f64],
        b: &[f64],
        k: usize,
        m: usize,
        n: usize,
        fma: bool,
    ) -> Vec<f64> {
        let mut c = vec![0.0; m * n];
        scalar_stripe(
            AView {
                data: a,
                rs: 1,
                ks: m,
            },
            b,
            &mut c,
            0,
            m,
            k,
            n,
            fma,
        );
        c
    }
}

#[cfg(test)]
mod tests {
    use super::testing::*;
    use super::*;

    fn fill(len: usize, seed: u64) -> Vec<f64> {
        let mut s = seed | 1;
        (0..len)
            .map(|_| {
                s ^= s << 13;
                s ^= s >> 7;
                s ^= s << 17;
                (s % 1000) as f64 / 500.0 - 1.0
            })
            .collect()
    }

    fn naive(a: &[f64], b: &[f64], m: usize, k: usize, n: usize) -> Vec<f64> {
        let mut c = vec![0.0; m * n];
        for i in 0..m {
            for j in 0..n {
                let mut s = 0.0;
                for kk in 0..k {
                    s += a[i * k + kk] * b[kk * n + j];
                }
                c[i * n + j] = s;
            }
        }
        c
    }

    const SHAPES: &[(usize, usize, usize)] = &[
        (1, 1, 1),
        (1, 11, 43),
        (3, 7, 2),
        (8, 8, 8),
        (16, 11, 256),
        (17, 300, 13),
        (9, 257, 33),
        (128, 11, 64),
        (65, 64, 65),
        (2, 1000, 3),
    ];

    #[test]
    fn direct_and_packed_match_naive() {
        for &(m, k, n) in SHAPES {
            let a = fill(m * k, 7);
            let b = fill(k * n, 11);
            let want = naive(&a, &b, m, k, n);
            for path in [GemmPath::Direct, GemmPath::Packed] {
                let got = gemm_forced(&a, &b, m, k, n, path);
                for (x, y) in got.iter().zip(&want) {
                    assert!(
                        (x - y).abs() < 1e-9 * (1.0 + y.abs()),
                        "{m}x{k}x{n} {path:?}: {x} vs {y}"
                    );
                }
            }
        }
    }

    #[test]
    fn direct_packed_and_reference_are_bitwise_identical() {
        let fma = kernel_isa().uses_fma();
        for &(m, k, n) in SHAPES {
            let a = fill(m * k, 3);
            let b = fill(k * n, 5);
            let d = gemm_forced(&a, &b, m, k, n, GemmPath::Direct);
            let p = gemm_forced(&a, &b, m, k, n, GemmPath::Packed);
            let r = gemm_reference(&a, &b, m, k, n, fma);
            assert_eq!(d, p, "direct vs packed at {m}x{k}x{n}");
            assert_eq!(d, r, "kernel vs reference at {m}x{k}x{n}");
        }
    }

    #[test]
    fn transposed_paths_are_bitwise_identical() {
        let fma = kernel_isa().uses_fma();
        for &(k, m, n) in &[
            (1usize, 1usize, 1usize),
            (16, 300, 43),
            (53, 96, 71),
            (300, 11, 8),
        ] {
            let a = fill(k * m, 13);
            let b = fill(k * n, 17);
            let d = gemm_at_forced(&a, &b, k, m, n, GemmPath::Direct);
            let p = gemm_at_forced(&a, &b, k, m, n, GemmPath::Packed);
            let r = gemm_at_reference(&a, &b, k, m, n, fma);
            assert_eq!(d, p, "direct vs packed at k={k} m={m} n={n}");
            assert_eq!(d, r, "kernel vs reference at k={k} m={m} n={n}");
        }
    }

    #[test]
    fn empty_dims_are_noops() {
        for path in [GemmPath::Direct, GemmPath::Packed] {
            assert!(gemm_forced(&[], &[], 0, 3, 4, path).is_empty());
            assert_eq!(gemm_forced(&[], &[], 2, 0, 2, path), vec![0.0; 4]);
            assert!(gemm_forced(&[1.0, 2.0], &[], 2, 1, 0, path).is_empty());
        }
    }

    #[test]
    fn tuning_is_sane() {
        let t = kernel_tuning();
        assert!(t.mc >= MR);
        assert!(t.nc >= NR && t.nc % NR == 0);
        assert!(t.direct_limit > SMALL_B_ELEMS);
        assert!(t.direct_min_m >= 1);
    }

    #[test]
    fn path_choice_depends_only_on_shape() {
        let isa = kernel_isa();
        // Small B is always direct, and a given shape always maps to one path.
        assert_eq!(choose_path(isa, 1, 11, 43), GemmPath::Direct);
        assert_eq!(choose_path(isa, 4096, 11, 43), GemmPath::Direct);
        let p1 = choose_path(isa, 128, 1500, 1500);
        let p2 = choose_path(isa, 128, 1500, 1500);
        assert_eq!(p1, p2);
    }
}
