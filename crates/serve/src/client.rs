//! A small blocking client for the serving protocol — used by the `nrpm
//! query` subcommand, the integration tests, and the throughput benchmark.

use crate::protocol::Request;
use nrpm_extrap::MeasurementSet;
use serde::Value;
use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

/// A blocking connection to a running server.
pub struct Client {
    stream: TcpStream,
    reader: BufReader<TcpStream>,
}

fn io_other(message: String) -> std::io::Error {
    std::io::Error::new(std::io::ErrorKind::InvalidData, message)
}

impl Client {
    /// Connects to `addr`, applying `timeout` to the connect and to every
    /// subsequent read.
    pub fn connect(addr: SocketAddr, timeout: Duration) -> std::io::Result<Client> {
        let stream = TcpStream::connect_timeout(&addr, timeout)?;
        stream.set_nodelay(true).ok();
        stream.set_read_timeout(Some(timeout))?;
        let reader = BufReader::new(stream.try_clone()?);
        Ok(Client { stream, reader })
    }

    /// Sends one raw line and reads one response line, parsed as JSON.
    pub fn roundtrip_line(&mut self, line: &str) -> std::io::Result<Value> {
        self.stream.write_all(line.as_bytes())?;
        self.stream.write_all(b"\n")?;
        self.stream.flush()?;
        let mut response = String::new();
        let n = self.reader.read_line(&mut response)?;
        if n == 0 {
            return Err(std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                "server closed the connection",
            ));
        }
        serde_json::from_str(response.trim())
            .map_err(|e| io_other(format!("unparseable response: {e}")))
    }

    /// Sends a typed request and returns the parsed response object.
    pub fn roundtrip(&mut self, request: &Request) -> std::io::Result<Value> {
        self.roundtrip_line(&request.to_line())
    }

    /// Probes liveness.
    pub fn health(&mut self) -> std::io::Result<Value> {
        self.roundtrip(&Request::Health)
    }

    /// Fetches the metrics snapshot (the `stats` field of the response).
    pub fn stats(&mut self) -> std::io::Result<Value> {
        let response = self.roundtrip(&Request::Stats)?;
        response
            .get("stats")
            .cloned()
            .ok_or_else(|| io_other("stats response lacks a `stats` field".into()))
    }

    /// Requests a graceful drain.
    pub fn shutdown(&mut self) -> std::io::Result<Value> {
        self.roundtrip(&Request::Shutdown)
    }

    /// Models one kernel.
    pub fn model(
        &mut self,
        set: MeasurementSet,
        at: Option<Vec<f64>>,
        timeout_ms: Option<u64>,
    ) -> std::io::Result<Value> {
        self.roundtrip(&Request::Model {
            set,
            at,
            timeout_ms,
            id: None,
        })
    }

    /// Models several kernels in one coalesced request.
    pub fn batch(
        &mut self,
        sets: Vec<MeasurementSet>,
        timeout_ms: Option<u64>,
    ) -> std::io::Result<Value> {
        self.roundtrip(&Request::Batch {
            sets,
            timeout_ms,
            id: None,
        })
    }
}

/// `true` when a parsed response has `"status":"ok"`.
pub fn is_ok(response: &Value) -> bool {
    response.get("status").and_then(Value::as_str) == Some("ok")
}
