//! Dense linear-algebra and statistics substrate for the nrpm workspace.
//!
//! The crate deliberately avoids external BLAS/LAPACK bindings: every kernel
//! the performance modelers rely on — matrix multiplication, Householder QR,
//! least-squares solves, descriptive statistics — is implemented here in
//! portable Rust. Matrix multiplication is cache-blocked and optionally
//! parallelized across row panels with crossbeam scoped threads, which is all
//! the throughput the modeling pipeline (small design matrices, mid-sized
//! neural-network layers) needs.
//!
//! # Quick example
//!
//! ```
//! use nrpm_linalg::{Matrix, lstsq};
//!
//! // Fit y = 2x + 1 through three points.
//! let a = Matrix::from_rows(&[&[1.0, 1.0], &[1.0, 2.0], &[1.0, 3.0]]);
//! let y = [3.0, 5.0, 7.0];
//! let c = lstsq(&a, &y).unwrap();
//! assert!((c[0] - 1.0).abs() < 1e-10);
//! assert!((c[1] - 2.0).abs() < 1e-10);
//! ```

#![warn(missing_docs)]

mod error;
mod matmul;
mod matrix;
mod qr;
pub mod stats;
mod thread_budget;
mod vector;

pub use error::LinalgError;
pub use matmul::{
    default_threads, matmul, matmul_at_into, matmul_into, matmul_threaded, matvec, MatmulOptions,
};
pub use matrix::Matrix;
pub use qr::{lstsq, solve_upper_triangular, QrDecomposition};
pub use thread_budget::ThreadBudget;
pub use vector::{axpy, dot, norm2, norm_inf, scale};

/// Convenience alias used across the workspace for result types.
pub type Result<T> = std::result::Result<T, LinalgError>;
