//! Synthetic evaluation tasks (Sec. V of the paper).
//!
//! Each task is one random ground-truth function together with a noisy
//! measured grid of `points_per_param^m` points (five repetitions, median)
//! and four extrapolation points `P⁺` that continue every parameter's
//! sequence beyond the measured range (Fig. 2).

use crate::function::{random_function, SyntheticFunction};
use crate::regime::NoiseFamily;
use crate::sequences::{extend_sequence, random_sequence, SequenceKind};
use nrpm_extrap::MeasurementSet;
use rand::Rng;

/// Parameters of a synthetic evaluation task.
#[derive(Debug, Clone, Copy)]
pub struct EvalTaskSpec {
    /// Number of model parameters `m` (the paper evaluates 1, 2, 3).
    pub num_params: usize,
    /// Injected noise level (fraction; `0.1` = ±5 %).
    pub noise_level: f64,
    /// Repetitions per measurement point (paper: 5).
    pub repetitions: usize,
    /// Values per parameter (paper: 5 → `5^m` grid points).
    pub points_per_param: usize,
    /// Extrapolation points `P⁺` (paper: 4).
    pub num_eval_points: usize,
    /// Shape of the injected measurement noise (paper: uniform).
    pub family: NoiseFamily,
}

impl EvalTaskSpec {
    /// The paper's configuration for `m` parameters at a noise level.
    pub fn paper(num_params: usize, noise_level: f64) -> Self {
        EvalTaskSpec {
            num_params,
            noise_level,
            repetitions: 5,
            points_per_param: 5,
            num_eval_points: 4,
            family: NoiseFamily::Uniform,
        }
    }
}

/// One generated evaluation task.
#[derive(Debug, Clone)]
pub struct EvalTask {
    /// The ground truth.
    pub truth: SyntheticFunction,
    /// The noisy measured grid handed to the modelers.
    pub set: MeasurementSet,
    /// Per-parameter value sequences of the grid.
    pub sequences: Vec<Vec<f64>>,
    /// The extrapolation points `P⁺₁ … P⁺ₖ` with their *noise-free* true
    /// values — predictions are graded against the synthetic baseline.
    pub eval_points: Vec<(Vec<f64>, f64)>,
}

/// Generates one evaluation task.
pub fn generate_eval_task(spec: &EvalTaskSpec, rng: &mut impl Rng) -> EvalTask {
    assert!(spec.num_params >= 1, "need at least one parameter");
    assert!(
        spec.points_per_param >= 2,
        "need at least two points per parameter"
    );

    let truth = random_function(spec.num_params, rng);
    let sequences: Vec<Vec<f64>> = (0..spec.num_params)
        .map(|_| random_sequence(SequenceKind::random(rng), spec.points_per_param, rng))
        .collect();

    // Full grid of measurement points with noisy repetitions.
    let mut set = MeasurementSet::new(spec.num_params);
    let mut index = vec![0usize; spec.num_params];
    loop {
        let point: Vec<f64> = (0..spec.num_params)
            .map(|l| sequences[l][index[l]])
            .collect();
        let value = truth.evaluate(&point);
        // Line position for scale-dependent families: the mean fraction of
        // every coordinate's index along its sequence (i/(n−1) for m = 1).
        let denom = (spec.points_per_param - 1).max(1) as f64;
        let pos = index.iter().map(|&i| i as f64).sum::<f64>() / (spec.num_params as f64 * denom);
        let reps =
            spec.family
                .repetitions(value, spec.noise_level, pos, spec.repetitions.max(1), rng);
        set.add_repetitions(&point, &reps);

        let mut l = 0;
        loop {
            if l == spec.num_params {
                // Extrapolation points: the diagonal continuation of every
                // sequence (P⁺ₖ scales all parameters simultaneously,
                // Fig. 2 of the paper).
                let extensions: Vec<Vec<f64>> = sequences
                    .iter()
                    .map(|s| extend_sequence(s, spec.num_eval_points))
                    .collect();
                let eval_points: Vec<(Vec<f64>, f64)> = (0..spec.num_eval_points)
                    .map(|k| {
                        let p: Vec<f64> = (0..spec.num_params).map(|l| extensions[l][k]).collect();
                        let v = truth.evaluate(&p);
                        (p, v)
                    })
                    .collect();
                return EvalTask {
                    truth,
                    set,
                    sequences,
                    eval_points,
                };
            }
            index[l] += 1;
            if index[l] < spec.points_per_param {
                break;
            }
            index[l] = 0;
            l += 1;
        }
    }
}

/// Generates `count` independent evaluation tasks.
pub fn generate_eval_tasks(spec: &EvalTaskSpec, count: usize, rng: &mut impl Rng) -> Vec<EvalTask> {
    (0..count).map(|_| generate_eval_task(spec, rng)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(777)
    }

    #[test]
    fn grid_has_points_per_param_to_the_m_points() {
        let mut r = rng();
        for m in 1..=3 {
            let task = generate_eval_task(&EvalTaskSpec::paper(m, 0.1), &mut r);
            assert_eq!(task.set.len(), 5usize.pow(m as u32));
            assert_eq!(task.set.num_params(), m);
            assert_eq!(task.sequences.len(), m);
            assert_eq!(task.eval_points.len(), 4);
        }
    }

    #[test]
    fn repetition_count_matches_spec() {
        let task = generate_eval_task(&EvalTaskSpec::paper(1, 0.2), &mut rng());
        for m in task.set.measurements() {
            assert_eq!(m.values.len(), 5);
        }
    }

    #[test]
    fn eval_points_lie_outside_the_measured_range() {
        let mut r = rng();
        for _ in 0..20 {
            let task = generate_eval_task(&EvalTaskSpec::paper(2, 0.1), &mut r);
            for (p, _) in &task.eval_points {
                for (l, &coord) in p.iter().enumerate() {
                    let max_measured = *task.sequences[l].last().unwrap();
                    assert!(coord > max_measured, "param {l}: {coord} <= {max_measured}");
                }
            }
        }
    }

    #[test]
    fn eval_values_are_noise_free_ground_truth() {
        let task = generate_eval_task(&EvalTaskSpec::paper(2, 1.0), &mut rng());
        for (p, v) in &task.eval_points {
            assert!((task.truth.evaluate(p) - v).abs() < 1e-12);
        }
    }

    #[test]
    fn zero_noise_measurements_match_truth() {
        let task = generate_eval_task(&EvalTaskSpec::paper(1, 0.0), &mut rng());
        for m in task.set.measurements() {
            let truth = task.truth.evaluate(&m.point);
            for v in &m.values {
                assert!((v - truth).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn noisy_measurements_stay_within_band() {
        let task = generate_eval_task(&EvalTaskSpec::paper(1, 0.5), &mut rng());
        for m in task.set.measurements() {
            let truth = task.truth.evaluate(&m.point);
            for v in &m.values {
                assert!(
                    *v >= truth * 0.75 - 1e-9 && *v <= truth * 1.25 + 1e-9,
                    "{v} outside ±25% of {truth}"
                );
            }
        }
    }

    #[test]
    fn batch_generation_produces_independent_tasks() {
        let tasks = generate_eval_tasks(&EvalTaskSpec::paper(1, 0.1), 5, &mut rng());
        assert_eq!(tasks.len(), 5);
        // At least two tasks should differ in their ground truth.
        let first = format!("{}", tasks[0].truth.model);
        assert!(tasks.iter().any(|t| format!("{}", t.truth.model) != first));
    }
}
