//! Labelled training-sample generation for the DNN classifier.

use crate::function::random_single_parameter_function_of_class;
use crate::noise::noisy_repetitions;
use crate::sequences::{random_sequence, SequenceKind};
use nrpm_extrap::{Aggregation, NUM_CLASSES};
use rand::Rng;

/// One labelled training sample: a noisy single-parameter measurement line
/// plus the class (exponent-pair id) of the function that produced it.
///
/// The conversion to the network's 11-neuron input vector happens in the
/// preprocessing module of `nrpm-core`; keeping raw `(x, y)` lines here
/// keeps the generator reusable for the regression modeler's evaluation too.
#[derive(Debug, Clone)]
pub struct TrainingSample {
    /// Parameter values, strictly increasing.
    pub xs: Vec<f64>,
    /// Aggregated (median of repetitions) noisy measured values.
    pub ys: Vec<f64>,
    /// Ground-truth class id in `0..NUM_CLASSES`.
    pub class: usize,
    /// The noise level this sample was generated with.
    pub noise_level: f64,
}

/// Controls synthetic training-set generation.
///
/// For **pretraining** use the defaults: random sequences, the full noise
/// range `[0, 100 %]`, five repetitions. For **domain adaptation** set
/// `sequence` to the real measurement positions and `noise_range` to the
/// range estimated from the real measurements (Sec. IV-E/VI-A: for Kripke,
/// `[3.66, 53.67] %`).
#[derive(Debug, Clone)]
pub struct TrainingSpec {
    /// Samples generated per class (paper's domain adaptation: 2000).
    pub samples_per_class: usize,
    /// Range of measurement-point counts per sample, inclusive; the paper
    /// bounds the network input to `[5, 11]` points.
    pub points_range: (usize, usize),
    /// Fixed measurement positions (domain adaptation) or `None` for random
    /// sequences (pretraining).
    pub sequence: Option<Vec<f64>>,
    /// Noise levels are drawn uniformly from this range (fractions).
    pub noise_range: (f64, f64),
    /// Repetitions simulated per measurement point (paper: up to five).
    pub repetitions: usize,
    /// Aggregation of the repetitions.
    pub aggregation: Aggregation,
}

impl Default for TrainingSpec {
    fn default() -> Self {
        TrainingSpec {
            samples_per_class: 200,
            points_range: (5, 11),
            sequence: None,
            noise_range: (0.0, 1.0),
            repetitions: 5,
            aggregation: Aggregation::Median,
        }
    }
}

impl TrainingSpec {
    /// A spec for domain adaptation: fixed positions and a measured noise
    /// range (both taken from the modeling task at hand).
    pub fn adaptation(sequence: Vec<f64>, noise_range: (f64, f64), repetitions: usize) -> Self {
        TrainingSpec {
            sequence: Some(sequence),
            noise_range,
            repetitions: repetitions.max(1),
            ..Default::default()
        }
    }
}

/// Generates `samples_per_class` samples for every one of the 43 classes.
///
/// The returned vector is class-ordered (all samples of class 0, then class
/// 1, …); shuffle happens inside the trainer.
pub fn generate_training_samples(spec: &TrainingSpec, rng: &mut impl Rng) -> Vec<TrainingSample> {
    assert!(
        spec.points_range.0 >= 2,
        "need at least two points per sample"
    );
    assert!(
        spec.points_range.0 <= spec.points_range.1,
        "points_range must be ordered"
    );
    assert!(
        spec.noise_range.0 <= spec.noise_range.1 && spec.noise_range.0 >= 0.0,
        "noise_range must be ordered and non-negative"
    );

    let mut samples = Vec::with_capacity(NUM_CLASSES * spec.samples_per_class);
    for class in 0..NUM_CLASSES {
        for _ in 0..spec.samples_per_class {
            samples.push(generate_one(spec, class, rng));
        }
    }
    samples
}

fn generate_one(spec: &TrainingSpec, class: usize, rng: &mut impl Rng) -> TrainingSample {
    let f = random_single_parameter_function_of_class(class, rng);
    let xs: Vec<f64> = match &spec.sequence {
        Some(seq) => seq.clone(),
        None => {
            let len = rng.gen_range(spec.points_range.0..=spec.points_range.1);
            random_sequence(SequenceKind::random(rng), len, rng)
        }
    };
    let noise_level = if spec.noise_range.1 > spec.noise_range.0 {
        rng.gen_range(spec.noise_range.0..=spec.noise_range.1)
    } else {
        spec.noise_range.0
    };
    let ys: Vec<f64> = xs
        .iter()
        .map(|&x| {
            let truth = f.evaluate(&[x]);
            let reps = noisy_repetitions(truth, noise_level, spec.repetitions, rng);
            spec.aggregation.apply(&reps)
        })
        .collect();
    TrainingSample {
        xs,
        ys,
        class,
        noise_level,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(321)
    }

    #[test]
    fn generates_balanced_classes() {
        let spec = TrainingSpec {
            samples_per_class: 3,
            ..Default::default()
        };
        let samples = generate_training_samples(&spec, &mut rng());
        assert_eq!(samples.len(), 3 * NUM_CLASSES);
        let mut counts = vec![0usize; NUM_CLASSES];
        for s in &samples {
            counts[s.class] += 1;
        }
        assert!(counts.iter().all(|&c| c == 3));
    }

    #[test]
    fn sample_shapes_are_consistent() {
        let spec = TrainingSpec {
            samples_per_class: 2,
            ..Default::default()
        };
        for s in generate_training_samples(&spec, &mut rng()) {
            assert_eq!(s.xs.len(), s.ys.len());
            assert!((5..=11).contains(&s.xs.len()));
            assert!(s.xs.windows(2).all(|w| w[1] > w[0]));
            assert!(s.ys.iter().all(|v| v.is_finite()));
            assert!((0.0..=1.0).contains(&s.noise_level));
        }
    }

    #[test]
    fn fixed_sequence_is_respected() {
        let seq = vec![8.0, 64.0, 512.0, 4096.0, 32768.0];
        let spec = TrainingSpec {
            samples_per_class: 1,
            sequence: Some(seq.clone()),
            ..Default::default()
        };
        for s in generate_training_samples(&spec, &mut rng()) {
            assert_eq!(s.xs, seq);
        }
    }

    #[test]
    fn noise_range_bounds_the_sampled_levels() {
        let spec = TrainingSpec {
            samples_per_class: 5,
            noise_range: (0.0366, 0.5367), // Kripke's measured range
            ..Default::default()
        };
        for s in generate_training_samples(&spec, &mut rng()) {
            assert!((0.0366..=0.5367).contains(&s.noise_level));
        }
    }

    #[test]
    fn zero_noise_yields_exact_function_values() {
        let spec = TrainingSpec {
            samples_per_class: 2,
            noise_range: (0.0, 0.0),
            repetitions: 3,
            ..Default::default()
        };
        for s in generate_training_samples(&spec, &mut rng()) {
            // With zero noise every repetition equals the truth, so the
            // median is exact; the values must be strictly positive and
            // non-decreasing (PMNF with positive coefficients).
            for w in s.ys.windows(2) {
                assert!(w[1] >= w[0] * 0.999, "class {}: {:?}", s.class, s.ys);
            }
        }
    }

    #[test]
    fn adaptation_spec_uses_task_properties() {
        let spec = TrainingSpec::adaptation(vec![1.0, 2.0, 4.0], (0.1, 0.3), 5);
        assert_eq!(spec.sequence.as_deref(), Some(&[1.0, 2.0, 4.0][..]));
        assert_eq!(spec.noise_range, (0.1, 0.3));
        assert_eq!(spec.repetitions, 5);
    }

    #[test]
    #[should_panic(expected = "ordered")]
    fn inverted_noise_range_panics() {
        let spec = TrainingSpec {
            noise_range: (0.5, 0.1),
            ..Default::default()
        };
        let _ = generate_training_samples(&spec, &mut rng());
    }
}
