//! # nrpm — Noise-Resilient Performance Modeling
//!
//! Facade crate re-exporting the whole workspace: a Rust reproduction of
//! *"Noise-Resilient Empirical Performance Modeling with Deep Neural
//! Networks"* (Ritter et al., IPDPS 2021).
//!
//! Start with [`prelude`] for the common types, [`adaptive`] for the
//! paper's contribution, or [`extrap`] for the Extra-P baseline.

pub use nrpm_apps as apps;
pub use nrpm_extrap as extrap;
pub use nrpm_linalg as linalg;
pub use nrpm_nn as nn;
pub use nrpm_synth as synth;

// The adaptive modeler's modules (from `nrpm-core`).
pub use nrpm_core::{adaptive, dnn, metrics, noise, preprocess, sanitize, threshold};

/// The types most programs need.
pub mod prelude {
    pub use nrpm_core::adaptive::{
        AdaptiveModeler, AdaptiveOptions, AdaptiveOutcome, ModelerChoice,
    };
    pub use nrpm_core::dnn::{DnnModeler, DnnOptions};
    pub use nrpm_core::noise::NoiseEstimate;
    pub use nrpm_core::sanitize::{sanitize, DataQualityReport, SanitizeOptions, SanitizePolicy};
    pub use nrpm_extrap::{
        Aggregation, ExponentPair, MeasurementSet, Model, ModelingResult, RegressionModeler,
        Severity,
    };
    pub use nrpm_nn::{Network, NetworkConfig};
    pub use nrpm_synth::{FaultInjector, FaultKind};
}
