//! Measurement-point sequence generators.
//!
//! The paper trains with parameter-value sequences that are "either linear,
//! small linear, small exponential, or uniformly distributed", e.g.
//! `(4, 8, 16, 32, 64)`, `(10, 20, 30, 40, 50)`, or
//! `(8, 64, 512, 4096, 32768)` (Kripke's cubic process counts).

use rand::Rng;
use serde::{Deserialize, Serialize};

/// The shape of a parameter-value sequence.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SequenceKind {
    /// Arithmetic progression with a sizable step, e.g. `32, 64, 96, 128`.
    Linear,
    /// Arithmetic progression with a small start and step, e.g.
    /// `2, 4, 6, 8, 10`.
    SmallLinear,
    /// Geometric progression with a small ratio, e.g. `4, 8, 16, 32, 64`.
    SmallExponential,
    /// Strictly increasing values drawn uniformly at random.
    UniformRandom,
}

impl SequenceKind {
    /// All kinds, for exhaustive sweeps.
    pub const ALL: [SequenceKind; 4] = [
        SequenceKind::Linear,
        SequenceKind::SmallLinear,
        SequenceKind::SmallExponential,
        SequenceKind::UniformRandom,
    ];

    /// Picks a kind uniformly at random.
    pub fn random(rng: &mut impl Rng) -> Self {
        Self::ALL[rng.gen_range(0..Self::ALL.len())]
    }
}

/// Generates a strictly increasing sequence of `len` positive parameter
/// values of the given kind.
pub fn random_sequence(kind: SequenceKind, len: usize, rng: &mut impl Rng) -> Vec<f64> {
    assert!(len >= 2, "a sequence needs at least two values");
    // Every kind guarantees an overall spread (largest / smallest) of at
    // least ~3x: real application parameters are scaled over meaningful
    // ranges (the paper's examples span 5-4096x), and below ~2x spread the
    // growth classes become mathematically indistinguishable for *any*
    // modeler.
    match kind {
        SequenceKind::Linear => {
            let start = rng.gen_range(8..=128) as f64;
            // step between start/2 and 2*start -> spread 3x .. 9x
            let step = (start * rng.gen_range(0.5..=2.0)).round().max(1.0);
            (0..len).map(|i| start + i as f64 * step).collect()
        }
        SequenceKind::SmallLinear => {
            let start = rng.gen_range(1..=10) as f64;
            // step between start and 3*start -> spread 5x .. 13x
            let step = (start * rng.gen_range(1.0..=3.0)).round().max(1.0);
            (0..len).map(|i| start + i as f64 * step).collect()
        }
        SequenceKind::SmallExponential => {
            let start = rng.gen_range(2..=16) as f64;
            let ratio: f64 = [2.0, 4.0, 8.0][rng.gen_range(0..3)];
            (0..len).map(|i| start * ratio.powi(i as i32)).collect()
        }
        SequenceKind::UniformRandom => {
            // Anchor the range first (low in [2, 64], spread in [8x, 512x])
            // so the drawn values cannot all cluster in a narrow band.
            let lo: f64 = rng.gen_range(2.0..=64.0);
            let hi: f64 = lo * rng.gen_range(8.0..=512.0);
            // Round to integers only when the range has comfortably more
            // integers than requested values — otherwise (long sequences
            // over a narrow range) rounding could not yield `len` distinct
            // values and the rejection loop would never terminate.
            let round_ok = hi - lo > 3.0 * len as f64;
            let quantize = |v: f64| if round_ok { v.round() } else { v };
            let tolerance = if round_ok {
                0.5
            } else {
                (hi - lo) / (8.0 * len as f64)
            };
            let mut vals: Vec<f64> = vec![quantize(lo), quantize(hi)];
            while vals.len() < len {
                let v = quantize(rng.gen_range(lo + 1.0..hi - 1.0));
                if !vals.iter().any(|&x| (x - v).abs() < tolerance) {
                    vals.push(v);
                }
            }
            vals.sort_by(|a, b| a.partial_cmp(b).expect("finite values"));
            vals
        }
    }
}

/// Continues a sequence by `count` further values, preserving its shape:
/// the last ratio for geometric-looking sequences, the last difference for
/// arithmetic ones. This produces the extrapolation points `P⁺` of the
/// synthetic evaluation (e.g. `(4…64)` continues as `(128, 256, 512, 1024)`).
pub fn extend_sequence(seq: &[f64], count: usize) -> Vec<f64> {
    assert!(seq.len() >= 2, "need at least two values to extend");
    let n = seq.len();
    let last = seq[n - 1];
    let prev = seq[n - 2];
    let diff = last - prev;
    let ratio = last / prev;

    // Decide whether the sequence looks geometric: constant ratio across
    // the last three values (within tolerance) and ratio meaningfully > 1.
    let geometric = if n >= 3 {
        let r1 = seq[n - 2] / seq[n - 3];
        ratio > 1.2 && (ratio - r1).abs() / ratio < 0.05
    } else {
        ratio > 1.5
    };

    let mut out = Vec::with_capacity(count);
    let mut current = last;
    for _ in 0..count {
        current = if geometric {
            current * ratio
        } else {
            current + diff
        };
        out.push(current);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(1234)
    }

    #[test]
    fn sequences_are_strictly_increasing_and_positive() {
        let mut r = rng();
        for kind in SequenceKind::ALL {
            for _ in 0..20 {
                let s = random_sequence(kind, 5, &mut r);
                assert_eq!(s.len(), 5);
                assert!(s[0] > 0.0, "{kind:?}: {s:?}");
                for w in s.windows(2) {
                    assert!(w[1] > w[0], "{kind:?}: {s:?}");
                }
            }
        }
    }

    #[test]
    fn exponential_sequences_have_constant_ratio() {
        let mut r = rng();
        for _ in 0..10 {
            let s = random_sequence(SequenceKind::SmallExponential, 5, &mut r);
            let ratio = s[1] / s[0];
            for w in s.windows(2) {
                assert!((w[1] / w[0] - ratio).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn linear_sequences_have_constant_difference() {
        let mut r = rng();
        for kind in [SequenceKind::Linear, SequenceKind::SmallLinear] {
            let s = random_sequence(kind, 6, &mut r);
            let d = s[1] - s[0];
            for w in s.windows(2) {
                assert!((w[1] - w[0] - d).abs() < 1e-9, "{kind:?}: {s:?}");
            }
        }
    }

    #[test]
    fn extend_continues_geometric_sequences_geometrically() {
        let s = [4.0, 8.0, 16.0, 32.0, 64.0];
        let ext = extend_sequence(&s, 4);
        assert_eq!(ext, vec![128.0, 256.0, 512.0, 1024.0]);

        let kripke = [8.0, 64.0, 512.0, 4096.0, 32768.0];
        let ext = extend_sequence(&kripke, 2);
        assert_eq!(ext, vec![262144.0, 2097152.0]);
    }

    #[test]
    fn extend_continues_linear_sequences_linearly() {
        let s = [10.0, 20.0, 30.0, 40.0, 50.0];
        let ext = extend_sequence(&s, 4);
        assert_eq!(ext, vec![60.0, 70.0, 80.0, 90.0]);
    }

    #[test]
    fn extended_points_exceed_the_original_range() {
        let mut r = rng();
        for kind in SequenceKind::ALL {
            let s = random_sequence(kind, 5, &mut r);
            let ext = extend_sequence(&s, 4);
            assert!(ext[0] > s[4]);
            for w in ext.windows(2) {
                assert!(w[1] > w[0]);
            }
        }
    }

    #[test]
    fn random_kind_covers_all_variants_eventually() {
        let mut r = rng();
        let mut seen = std::collections::HashSet::new();
        for _ in 0..200 {
            seen.insert(format!("{:?}", SequenceKind::random(&mut r)));
        }
        assert_eq!(seen.len(), 4);
    }
}
