//! Multi-threaded matrix multiplication over the register-blocked
//! micro-kernels in [`crate::kernel`].
//!
//! This layer owns shape validation, the thread-stripe partition and the
//! minimum-work-per-thread floor; the actual arithmetic lives in the
//! kernel module. Output rows are split into contiguous stripes, one per
//! worker, and every stripe accumulates each element in the same fixed
//! order (see the kernel module's determinism notes) — so results are
//! bitwise identical at any thread count, on either compute path.

use crate::kernel::{self, choose_path, AView, GemmPath};
use crate::{dot, LinalgError, Matrix, Result, ThreadBudget};
use std::cell::RefCell;

/// Minimum floating-point operations (`2*m*k*n` scale) a worker thread
/// must have before the parallel path will fan out to it. Spawning and
/// joining a scoped thread costs tens of microseconds; at current kernel
/// throughput this floor keeps that overhead under a few percent.
///
/// This is what fixed the 4–8 thread training *regression* in
/// BENCH_train.json: the trainer's per-layer products are small enough
/// that fanning them across the whole thread budget cost more than the
/// compute itself.
pub const MIN_FLOPS_PER_THREAD: usize = 4_000_000;

/// Tuning knobs for [`matmul`].
#[derive(Debug, Clone, Copy)]
pub struct MatmulOptions {
    /// Legacy k-blocking knob. The micro-kernel fixes its k-chunk size at
    /// [`kernel::KC`] (tuning it would change floating-point association),
    /// so this field is accepted for compatibility but no longer read.
    pub k_block: usize,
    /// Number of worker threads. `1` means fully sequential.
    pub threads: usize,
    /// Minimum number of output elements per thread before the parallel path
    /// is taken; tiny products stay sequential to avoid spawn overhead.
    pub parallel_threshold: usize,
    /// Work floor per worker thread (see [`MIN_FLOPS_PER_THREAD`]). The
    /// effective thread count is capped at `total_flops / this`. Tests pin
    /// it to `1` to force the parallel path on small inputs.
    pub min_flops_per_thread: usize,
}

impl Default for MatmulOptions {
    fn default() -> Self {
        MatmulOptions {
            k_block: kernel::KC,
            threads: default_threads(),
            parallel_threshold: 64 * 64,
            min_flops_per_thread: MIN_FLOPS_PER_THREAD,
        }
    }
}

/// Default worker count for matmul: the process-wide [`ThreadBudget`].
///
/// Components that share cores with other parallel layers (serve workers,
/// the data-parallel trainer) size themselves from the same budget, so the
/// pieces compose without oversubscribing the machine.
pub fn default_threads() -> usize {
    ThreadBudget::get()
}

/// Caps the requested thread count by the available work: each worker must
/// have at least `min_flops` worth of multiply-adds, and at least one
/// output row.
pub(crate) fn effective_threads(
    threads: usize,
    m: usize,
    k: usize,
    n: usize,
    min_flops: usize,
) -> usize {
    let t = threads.max(1);
    if t == 1 {
        return 1;
    }
    let flops = 2u128 * m as u128 * k as u128 * n as u128;
    let by_work = (flops / min_flops.max(1) as u128).max(1);
    let by_work = usize::try_from(by_work).unwrap_or(usize::MAX);
    t.min(by_work).min(m.max(1))
}

/// `C = A * B` with default options.
pub fn matmul(a: &Matrix, b: &Matrix) -> Result<Matrix> {
    matmul_threaded(a, b, MatmulOptions::default())
}

/// `C = A * B` with explicit tuning options.
pub fn matmul_threaded(a: &Matrix, b: &Matrix, opts: MatmulOptions) -> Result<Matrix> {
    let mut c = Matrix::zeros(a.rows(), b.cols());
    matmul_into(a, b, &mut c, opts)?;
    Ok(c)
}

/// `C = A * B`, writing into a preallocated output (contents are
/// overwritten). Reusing the output avoids reallocation in training loops.
pub fn matmul_into(a: &Matrix, b: &Matrix, c: &mut Matrix, opts: MatmulOptions) -> Result<()> {
    if a.cols() != b.rows() {
        return Err(LinalgError::ShapeMismatch {
            op: "matmul",
            lhs: a.shape(),
            rhs: b.shape(),
        });
    }
    if c.shape() != (a.rows(), b.cols()) {
        return Err(LinalgError::ShapeMismatch {
            op: "matmul (output)",
            lhs: c.shape(),
            rhs: (a.rows(), b.cols()),
        });
    }
    let (m, k) = a.shape();
    let n = b.cols();
    let view = AView {
        data: a.as_slice(),
        rs: k,
        ks: 1,
    };
    run_gemm(view, b.as_slice(), c.as_mut_slice(), m, k, n, opts);
    Ok(())
}

/// `C = Aᵀ * B`, writing into a preallocated output, without materializing
/// the transpose of `A`.
///
/// `A` is `k x m`, `B` is `k x n`, and `C` must be `m x n`. The kernels
/// read `A` through a strided view (output row `r` walks column `r` of
/// `A`), so no transpose copy is ever made. This is the backward-pass
/// shape `dW = Xᵀ · dZ`: the training loop calls it every step.
///
/// Each output element accumulates over the shared dimension in the same
/// fixed order regardless of how output rows are partitioned across
/// threads, so results are bitwise identical at any thread count.
pub fn matmul_at_into(a: &Matrix, b: &Matrix, c: &mut Matrix, opts: MatmulOptions) -> Result<()> {
    if a.rows() != b.rows() {
        return Err(LinalgError::ShapeMismatch {
            op: "matmul_at",
            lhs: a.shape(),
            rhs: b.shape(),
        });
    }
    if c.shape() != (a.cols(), b.cols()) {
        return Err(LinalgError::ShapeMismatch {
            op: "matmul_at (output)",
            lhs: c.shape(),
            rhs: (a.cols(), b.cols()),
        });
    }
    let k = a.rows();
    let m = a.cols();
    let n = b.cols();
    let view = AView {
        data: a.as_slice(),
        rs: 1,
        ks: m,
    };
    run_gemm(view, b.as_slice(), c.as_mut_slice(), m, k, n, opts);
    Ok(())
}

thread_local! {
    /// Reused buffer for the packed-path copy of `B`, so steady-state
    /// sequential callers (the trainer's per-chunk products, serve workers)
    /// stop allocating once warm.
    static PACKED_B_SCRATCH: RefCell<Vec<f64>> = const { RefCell::new(Vec::new()) };
}

fn run_gemm(
    a: AView<'_>,
    b: &[f64],
    c: &mut [f64],
    m: usize,
    k: usize,
    n: usize,
    opts: MatmulOptions,
) {
    c.fill(0.0);
    if m == 0 || n == 0 || k == 0 {
        return;
    }
    let isa = kernel::kernel_isa();
    let path = choose_path(isa, m, k, n);
    let threads = effective_threads(opts.threads, m, k, n, opts.min_flops_per_thread);
    let use_parallel = threads > 1 && m * n >= opts.parallel_threshold && m > 1;
    let tun = if path == GemmPath::Packed || use_parallel {
        kernel::kernel_tuning()
    } else {
        Default::default()
    };

    PACKED_B_SCRATCH.with(|scratch| {
        let mut scratch = scratch.borrow_mut();
        let packed_b: Option<&[f64]> = if path == GemmPath::Packed {
            kernel::pack_b_full(b, k, n, &mut scratch);
            Some(&scratch[..])
        } else {
            None
        };

        if !use_parallel {
            kernel::gemm_stripe(isa, &tun, a, b, packed_b, c, 0, m, k, n, path);
            return;
        }

        // Partition output rows into one contiguous stripe per thread,
        // rounded to the micro-tile height so tiles never straddle a
        // stripe boundary. Stripes are disjoint `&mut` slices, so no
        // synchronization is needed.
        let rows_per_thread = m.div_ceil(threads).div_ceil(kernel::MR) * kernel::MR;
        let stripes: Vec<&mut [f64]> = c.chunks_mut(rows_per_thread * n).collect();
        crossbeam::thread::scope(|scope| {
            for (t, stripe) in stripes.into_iter().enumerate() {
                let row0 = t * rows_per_thread;
                let rows_here = stripe.len() / n;
                let tun = &tun;
                scope.spawn(move |_| {
                    kernel::gemm_stripe(
                        isa, tun, a, b, packed_b, stripe, row0, rows_here, k, n, path,
                    );
                });
            }
        })
        .expect("matmul worker panicked");
    });
}

/// Matrix-vector product `y = A * x`.
pub fn matvec(a: &Matrix, x: &[f64]) -> Result<Vec<f64>> {
    if a.cols() != x.len() {
        return Err(LinalgError::ShapeMismatch {
            op: "matvec",
            lhs: a.shape(),
            rhs: (x.len(), 1),
        });
    }
    Ok((0..a.rows()).map(|r| dot(a.row(r), x)).collect())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn naive_matmul(a: &Matrix, b: &Matrix) -> Matrix {
        let mut c = Matrix::zeros(a.rows(), b.cols());
        for i in 0..a.rows() {
            for j in 0..b.cols() {
                let mut s = 0.0;
                for kk in 0..a.cols() {
                    s += a[(i, kk)] * b[(kk, j)];
                }
                c[(i, j)] = s;
            }
        }
        c
    }

    fn pseudo_random_matrix(rows: usize, cols: usize, seed: u64) -> Matrix {
        // xorshift so the test has no RNG dependency
        let mut state = seed | 1;
        Matrix::from_fn(rows, cols, |_, _| {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state % 1000) as f64 / 500.0 - 1.0
        })
    }

    #[test]
    fn identity_is_neutral() {
        let a = pseudo_random_matrix(5, 5, 42);
        let i = Matrix::identity(5);
        assert_eq!(matmul(&a, &i).unwrap(), a);
        assert_eq!(matmul(&i, &a).unwrap(), a);
    }

    #[test]
    fn matches_naive_for_odd_shapes() {
        for &(m, k, n) in &[(1, 1, 1), (3, 7, 2), (17, 5, 13), (8, 8, 8), (2, 100, 3)] {
            let a = pseudo_random_matrix(m, k, 7);
            let b = pseudo_random_matrix(k, n, 11);
            let expected = naive_matmul(&a, &b);
            let got = matmul(&a, &b).unwrap();
            for (x, y) in got.as_slice().iter().zip(expected.as_slice()) {
                assert!((x - y).abs() < 1e-9, "mismatch {x} vs {y}");
            }
        }
    }

    #[test]
    fn parallel_path_matches_sequential() {
        let a = pseudo_random_matrix(97, 64, 3);
        let b = pseudo_random_matrix(64, 83, 5);
        let seq = matmul_threaded(
            &a,
            &b,
            MatmulOptions {
                threads: 1,
                ..Default::default()
            },
        )
        .unwrap();
        let par = matmul_threaded(
            &a,
            &b,
            MatmulOptions {
                threads: 4,
                parallel_threshold: 1,
                min_flops_per_thread: 1,
                ..Default::default()
            },
        )
        .unwrap();
        assert_eq!(seq, par);
    }

    #[test]
    fn small_k_block_still_correct() {
        let a = pseudo_random_matrix(9, 31, 13);
        let b = pseudo_random_matrix(31, 6, 17);
        let expected = naive_matmul(&a, &b);
        let got = matmul_threaded(
            &a,
            &b,
            MatmulOptions {
                k_block: 4,
                threads: 1,
                ..Default::default()
            },
        )
        .unwrap();
        for (x, y) in got.as_slice().iter().zip(expected.as_slice()) {
            assert!((x - y).abs() < 1e-9);
        }
    }

    #[test]
    fn shape_mismatch_is_an_error() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(4, 2);
        assert!(matches!(
            matmul(&a, &b),
            Err(LinalgError::ShapeMismatch { op: "matmul", .. })
        ));
    }

    #[test]
    fn output_shape_is_validated() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(3, 2);
        let mut c = Matrix::zeros(2, 3);
        assert!(matmul_into(&a, &b, &mut c, MatmulOptions::default()).is_err());
    }

    #[test]
    fn empty_dimensions_yield_empty_products() {
        let a = Matrix::zeros(0, 3);
        let b = Matrix::zeros(3, 2);
        let c = matmul(&a, &b).unwrap();
        assert_eq!(c.shape(), (0, 2));

        let a = Matrix::zeros(2, 0);
        let b = Matrix::zeros(0, 2);
        let c = matmul(&a, &b).unwrap();
        assert_eq!(c.shape(), (2, 2));
        assert!(c.as_slice().iter().all(|&v| v == 0.0));
    }

    #[test]
    fn matvec_matches_matmul_with_column() {
        let a = pseudo_random_matrix(6, 4, 23);
        let x = vec![1.0, -2.0, 0.5, 3.0];
        let y = matvec(&a, &x).unwrap();
        let via_matmul = matmul(&a, &Matrix::column_vector(&x)).unwrap();
        for (i, v) in y.iter().enumerate() {
            assert!((v - via_matmul[(i, 0)]).abs() < 1e-12);
        }
        assert!(matvec(&a, &[1.0]).is_err());
    }

    #[test]
    fn matmul_at_matches_explicit_transpose() {
        for &(k, m, n) in &[(1, 1, 1), (7, 3, 2), (5, 17, 13), (64, 32, 43), (100, 2, 3)] {
            let a = pseudo_random_matrix(k, m, 29);
            let b = pseudo_random_matrix(k, n, 37);
            let expected = matmul(&a.transpose(), &b).unwrap();
            let mut c = Matrix::zeros(m, n);
            matmul_at_into(
                &a,
                &b,
                &mut c,
                MatmulOptions {
                    threads: 1,
                    ..Default::default()
                },
            )
            .unwrap();
            for (x, y) in c.as_slice().iter().zip(expected.as_slice()) {
                assert!((x - y).abs() < 1e-9, "mismatch {x} vs {y}");
            }
        }
    }

    #[test]
    fn matmul_at_parallel_is_bitwise_equal_to_sequential() {
        let a = pseudo_random_matrix(53, 96, 41);
        let b = pseudo_random_matrix(53, 71, 43);
        let mut seq = Matrix::zeros(96, 71);
        matmul_at_into(
            &a,
            &b,
            &mut seq,
            MatmulOptions {
                threads: 1,
                ..Default::default()
            },
        )
        .unwrap();
        for threads in 2..=8 {
            let mut par = Matrix::zeros(96, 71);
            matmul_at_into(
                &a,
                &b,
                &mut par,
                MatmulOptions {
                    threads,
                    parallel_threshold: 1,
                    min_flops_per_thread: 1,
                    ..Default::default()
                },
            )
            .unwrap();
            assert_eq!(seq, par, "threads = {threads}");
        }
    }

    #[test]
    fn matmul_at_validates_shapes() {
        let a = Matrix::zeros(4, 3);
        let b = Matrix::zeros(5, 2);
        let mut c = Matrix::zeros(3, 2);
        assert!(matmul_at_into(&a, &b, &mut c, MatmulOptions::default()).is_err());
        let b = Matrix::zeros(4, 2);
        let mut wrong = Matrix::zeros(2, 2);
        assert!(matmul_at_into(&a, &b, &mut wrong, MatmulOptions::default()).is_err());
        assert!(matmul_at_into(&a, &b, &mut c, MatmulOptions::default()).is_ok());
    }

    #[test]
    fn matmul_into_reuses_buffer_and_overwrites() {
        let a = Matrix::identity(3);
        let b = pseudo_random_matrix(3, 3, 31);
        let mut c = Matrix::filled(3, 3, 99.0);
        matmul_into(&a, &b, &mut c, MatmulOptions::default()).unwrap();
        assert_eq!(c, b);
    }

    #[test]
    fn effective_threads_floors_small_work() {
        // 16x16x16 = 8192 flops: never worth more than one thread.
        assert_eq!(effective_threads(8, 16, 16, 16, MIN_FLOPS_PER_THREAD), 1);
        // 512x512x512 = 268M flops: the full budget is justified.
        assert_eq!(effective_threads(8, 512, 512, 512, MIN_FLOPS_PER_THREAD), 8);
        // Intermediate sizes get a partial fan-out.
        let mid = effective_threads(8, 128, 128, 128, MIN_FLOPS_PER_THREAD);
        assert!(mid >= 1 && mid < 8, "got {mid}");
        // Floor of one row per thread, and floor override for tests.
        assert_eq!(effective_threads(8, 2, 1000, 1000, 1), 2);
        assert_eq!(effective_threads(4, 16, 16, 16, 1), 4);
    }

    #[test]
    fn parallel_threshold_and_floor_compose_bitwise() {
        // Large-ish product across every thread count, both orientations:
        // all results must be bit-identical to sequential.
        let a = pseudo_random_matrix(130, 300, 3);
        let b = pseudo_random_matrix(300, 90, 5);
        let seq = matmul_threaded(
            &a,
            &b,
            MatmulOptions {
                threads: 1,
                ..Default::default()
            },
        )
        .unwrap();
        for threads in 2..=8 {
            let par = matmul_threaded(
                &a,
                &b,
                MatmulOptions {
                    threads,
                    parallel_threshold: 1,
                    min_flops_per_thread: 1,
                    ..Default::default()
                },
            )
            .unwrap();
            assert_eq!(seq, par, "threads = {threads}");
        }
    }
}
