//! Table rendering for the harness binaries: fixed-width text tables that
//! mirror the rows/series of the paper's figures.

/// A simple fixed-width table printer.
#[derive(Debug, Clone)]
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new(headers: &[&str]) -> Table {
        Table {
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (must match the header count).
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.headers.len(), "row arity mismatch");
        self.rows.push(cells);
    }

    /// Renders the table to a string.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            cells
                .iter()
                .zip(widths)
                .map(|(c, w)| format!("{c:>w$}", w = w))
                .collect::<Vec<_>>()
                .join("  ")
        };
        out.push_str(&fmt_row(&self.headers, &widths));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len() - 1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out
    }

    /// Prints the rendered table to stdout.
    pub fn print(&self) {
        print!("{}", self.render());
    }
}

/// Formats a fraction as a percentage with one decimal.
pub fn pct(fraction: f64) -> String {
    format!("{:.1}%", fraction * 100.0)
}

/// Formats a float with two decimals.
pub fn f2(value: f64) -> String {
    format!("{value:.2}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = Table::new(&["noise", "regression", "adaptive"]);
        t.row(vec!["2%".into(), "99.1%".into(), "98.0%".into()]);
        t.row(vec!["100%".into(), "55.0%".into(), "77.5%".into()]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].contains("noise"));
        assert!(lines[2].ends_with("98.0%"));
        // all rows equally wide
        assert_eq!(lines[0].len(), lines[2].len());
        assert_eq!(lines[2].len(), lines[3].len());
    }

    #[test]
    #[should_panic(expected = "arity")]
    fn arity_is_enforced() {
        let mut t = Table::new(&["a", "b"]);
        t.row(vec!["x".into()]);
    }

    #[test]
    fn formatters() {
        assert_eq!(pct(0.1744), "17.4%");
        assert_eq!(f2(3.98765), "3.99");
    }
}
