//! Chaos acceptance test: the fault-tolerant adaptive pipeline must return
//! a model for ≥ 99 % of corrupted synthetic campaigns — 1 % NaN
//! repetitions plus 5 % outlier spikes — without panicking.

use nrpm::prelude::*;
use nrpm::preprocess::NUM_INPUTS;
use nrpm::synth::{generate_eval_task, EvalTaskSpec, TrainingSpec};
use rand::rngs::StdRng;
use rand::SeedableRng;

#[test]
fn corrupted_campaigns_survive_the_pipeline() {
    // One compact pretrained modeler shared across all campaigns; domain
    // adaptation stays off so the network is fixed and the test is fast.
    let mut modeler = AdaptiveModeler::pretrained(AdaptiveOptions {
        dnn: DnnOptions {
            network: NetworkConfig::new(&[NUM_INPUTS, 64, nrpm::extrap::NUM_CLASSES]),
            pretrain_spec: TrainingSpec {
                samples_per_class: 50,
                noise_range: (0.0, 0.4),
                ..Default::default()
            },
            pretrain_epochs: 5,
            seed: 5,
            ..Default::default()
        },
        use_domain_adaptation: false,
        ..Default::default()
    });

    let injector = FaultInjector::new()
        .with(FaultKind::NonFinite, 0.01)
        .with(FaultKind::OutlierSpike { factor: 100.0 }, 0.05);
    let spec = EvalTaskSpec::paper(1, 0.05);

    let campaigns = 100;
    let mut survived = 0usize;
    let mut repaired = 0usize;
    for i in 0..campaigns {
        let mut rng = StdRng::seed_from_u64(0xC4A05 ^ (i as u64).wrapping_mul(0x9E37));
        let task = generate_eval_task(&spec, &mut rng);
        let (corrupted, summary) = injector.inject(&task.set, &mut rng);
        match modeler.model(&corrupted) {
            Ok(outcome) => {
                survived += 1;
                assert!(
                    outcome.result.cv_smape.is_finite(),
                    "campaign {i}: non-finite score"
                );
                assert!(
                    outcome
                        .result
                        .model
                        .evaluate(&task.eval_points[0].0)
                        .is_finite(),
                    "campaign {i}: non-finite prediction"
                );
                if summary.total() > 0 && !outcome.quality.is_clean() {
                    repaired += 1;
                }
            }
            Err(e) => {
                eprintln!("campaign {i} failed: {e}");
            }
        }
    }
    assert!(
        survived >= 99,
        "only {survived}/{campaigns} corrupted campaigns produced a model"
    );
    assert!(
        repaired > campaigns / 2,
        "sanitizer repaired only {repaired} campaigns — injection seems inert"
    );
}
