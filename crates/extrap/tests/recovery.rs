//! Systematic recovery tests: the regression modeler must identify every
//! member of the canonical exponent set from clean measurements on a
//! well-spread sequence.

use nrpm_extrap::{
    exponent_set, lead_order_distance, ExponentPair, MeasurementSet, Model, RegressionModeler,
    Term, TermFactor, NUM_CLASSES,
};

fn model_for(pair: ExponentPair, c0: f64, c1: f64) -> Model {
    let terms = if pair.is_constant() {
        vec![]
    } else {
        vec![Term::new(c1, vec![TermFactor::new(0, pair)])]
    };
    Model::new(1, c0, terms)
}

fn measure(truth: &Model, xs: &[f64]) -> MeasurementSet {
    let mut set = MeasurementSet::new(1);
    for &x in xs {
        set.add(&[x], truth.evaluate(&[x]));
    }
    set
}

/// Clean data over a 6-point geometric sequence: every class's polynomial
/// order must be recovered exactly (log factors may legitimately trade
/// against neighbouring poly orders on narrow ranges, but not here).
#[test]
fn all_43_classes_are_recovered_from_clean_geometric_data() {
    let xs: Vec<f64> = (2..8).map(|i| 2.0f64.powi(i)).collect(); // 4 .. 128
    let modeler = RegressionModeler::default();
    let mut failures = Vec::new();

    for class in 0..NUM_CLASSES {
        let pair = exponent_set().pair(class);
        let truth = model_for(pair, 7.0, 3.0);
        let set = measure(&truth, &xs);
        let result = modeler.model(&set).expect("clean data must be modelable");
        let found = result.model.lead_exponent_or_constant(0);
        let d = lead_order_distance(&found, &pair);
        if d > 1e-9 {
            failures.push(format!(
                "class {class} ({pair}): found {found} (d = {d:.3})"
            ));
        }
    }
    assert!(
        failures.is_empty(),
        "{} classes misidentified:\n{}",
        failures.len(),
        failures.join("\n")
    );
}

/// With balanced coefficients the *exact* pair (including the log
/// exponent) must be recovered for the classes whose log factor is visible
/// over a wide range.
#[test]
fn log_factors_are_recovered_on_wide_ranges() {
    // 8 .. 8192: log2 x spans 3 .. 13, a 4.3x variation.
    let xs: Vec<f64> = (3..14).map(|i| 2.0f64.powi(i)).collect();
    let modeler = RegressionModeler::default();
    for &(n, d, j) in &[
        (1, 1, 1),
        (1, 1, 2),
        (1, 2, 1),
        (2, 1, 1),
        (0, 1, 1),
        (0, 1, 2),
    ] {
        let pair = ExponentPair::from_parts(n, d, j);
        let truth = model_for(pair, 5.0, 2.0);
        let set = measure(&truth, &xs);
        let result = modeler.model(&set).expect("clean data must be modelable");
        let found = result.model.lead_exponent_or_constant(0);
        assert_eq!(
            found, pair,
            "expected {pair}, found {found}: {}",
            result.model
        );
    }
}

/// The coefficient magnitudes must be recovered, not only the exponents.
#[test]
fn coefficients_are_recovered_accurately() {
    let xs = [4.0, 8.0, 16.0, 32.0, 64.0, 128.0];
    let pair = ExponentPair::from_parts(3, 2, 0);
    for &(c0, c1) in &[(0.001, 1000.0), (500.0, 0.5), (42.0, 42.0)] {
        let truth = model_for(pair, c0, c1);
        let set = measure(&truth, &xs);
        let result = RegressionModeler::default().model(&set).unwrap();
        assert_eq!(result.model.lead_exponent_or_constant(0), pair);
        let t = &result.model.terms[0];
        assert!(
            (t.coefficient - c1).abs() / c1 < 1e-6,
            "c1 {} vs {}",
            t.coefficient,
            c1
        );
        assert!(
            (result.model.constant - c0).abs() / c0.max(1.0) < 1e-4,
            "c0 {} vs {}",
            result.model.constant,
            c0
        );
    }
}

/// Recovery must be robust to the *order* of the measurement points.
#[test]
fn point_order_does_not_matter() {
    let pair = ExponentPair::from_parts(2, 1, 0);
    let truth = model_for(pair, 1.0, 0.5);
    let forward = [4.0, 8.0, 16.0, 32.0, 64.0];
    let shuffled = [32.0, 4.0, 64.0, 16.0, 8.0];
    let a = RegressionModeler::default()
        .model(&measure(&truth, &forward))
        .unwrap();
    let b = RegressionModeler::default()
        .model(&measure(&truth, &shuffled))
        .unwrap();
    assert_eq!(a.model, b.model);
}

/// Repeated identical runs must give identical models (no hidden
/// randomness anywhere in the regression pipeline).
#[test]
fn regression_modeling_is_deterministic() {
    let truth = model_for(ExponentPair::from_parts(4, 3, 0), 3.0, 1.5);
    let set = measure(&truth, &[4.0, 8.0, 16.0, 32.0, 64.0]);
    let a = RegressionModeler::default().model(&set).unwrap();
    let b = RegressionModeler::default().model(&set).unwrap();
    assert_eq!(a.model, b.model);
    assert_eq!(a.cv_smape, b.cv_smape);
}
