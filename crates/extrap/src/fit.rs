//! Coefficient fitting and hypothesis scoring.
//!
//! Given a hypothesis structure, the coefficients `c_0, …, c_h` are found by
//! linear least squares on the design matrix whose columns are the constant
//! `1` and each term's factor product evaluated at the measurement points.

use crate::metrics::{cross_validation_smape, smape};
use crate::search::Hypothesis;
use crate::{Model, ModelError, Term};
use nrpm_linalg::{lstsq, Matrix};

/// Constraints applied after the raw least-squares fit.
///
/// Both reflect the physical prior that the metric being modelled (runtime,
/// energy, …) *grows* with its parameters:
///
/// * a non-constant term with a **negative coefficient** describes a cost
///   that shrinks as the parameter grows — outside the PMNF's intended
///   model class, and a frequent symptom of a structurally wrong
///   hypothesis chasing noise;
/// * a term whose largest contribution over the measured points is
///   **negligible** relative to the function value is numerically present
///   but physically absent — keeping it would fabricate a lead exponent
///   (`540.1 + 0.0000 · x³` is a constant, not a cubic).
#[derive(Debug, Clone, Copy)]
pub struct FitConstraints {
    /// Permit negative coefficients on non-constant terms.
    pub allow_negative_terms: bool,
    /// Terms contributing less than this fraction of the largest function
    /// value over the measured points are pruned (and the reduced
    /// hypothesis refitted). Zero disables pruning.
    pub prune_relative_threshold: f64,
}

impl Default for FitConstraints {
    fn default() -> Self {
        FitConstraints {
            allow_negative_terms: false,
            // Conservative: this only removes terms that are numerically
            // zero (a constant fitted with a superfluous term). Anything
            // larger may legitimately matter along its own parameter's
            // line even when another parameter dominates the global scale.
            prune_relative_threshold: 1e-4,
        }
    }
}

impl FitConstraints {
    /// No constraints: the raw least-squares behaviour.
    pub fn unconstrained() -> Self {
        FitConstraints {
            allow_negative_terms: true,
            prune_relative_threshold: 0.0,
        }
    }
}

/// A hypothesis with fitted coefficients and its selection scores.
#[derive(Debug, Clone)]
pub struct FittedHypothesis {
    /// The fitted model.
    pub model: Model,
    /// In-sample SMAPE (percent).
    pub fit_smape: f64,
    /// Leave-one-out cross-validation SMAPE (percent).
    pub cv_smape: f64,
    /// The structure that produced the model (kept for tie-breaking).
    pub hypothesis: Hypothesis,
}

/// Evaluates each term's factor product at `point` into `row[1..]`,
/// with `row[0] = 1` for the constant.
fn design_row(hypothesis: &Hypothesis, point: &[f64], row: &mut [f64]) {
    row[0] = 1.0;
    for (k, factors) in hypothesis.terms.iter().enumerate() {
        row[k + 1] = factors.iter().map(|f| f.evaluate(point)).product();
    }
}

/// Fits the coefficients of `hypothesis` to `points` by *relative* least
/// squares: each equation is scaled by `1/|y|`, so the solver minimizes
/// relative residuals rather than absolute ones.
///
/// This matters whenever the measured values span several orders of
/// magnitude (a `x2³` term over `x2 ∈ [10, 50]` spans 125×): plain least
/// squares is dominated by the largest points and leaves the constant term
/// unidentified to within the *absolute* noise of the top of the range —
/// producing models with absurd constants (±10¹⁰) whose relative error at
/// the small points, and hence their SMAPE, explodes. Relative weighting
/// aligns the fit criterion with the SMAPE selection criterion. For clean,
/// exactly representable data both criteria give the exact solution.
///
/// Returns `None` when the system is rank deficient or otherwise unsolvable
/// — the caller simply skips the hypothesis, mirroring Extra-P's behaviour
/// of dropping degenerate candidates.
pub fn fit_coefficients(hypothesis: &Hypothesis, points: &[(Vec<f64>, f64)]) -> Option<Model> {
    let n = points.len();
    let k = hypothesis.num_coefficients();
    if n < k {
        return None;
    }
    let mut design = Matrix::zeros(n, k);
    let mut y = Vec::with_capacity(n);
    for (r, (point, value)) in points.iter().enumerate() {
        design_row(hypothesis, point, design.row_mut(r));
        let weight = if value.abs() > f64::MIN_POSITIVE {
            1.0 / value.abs()
        } else {
            1.0
        };
        for cell in design.row_mut(r) {
            *cell *= weight;
        }
        y.push(value * weight);
    }
    if !design.all_finite() {
        return None;
    }
    let coeffs = lstsq(&design, &y).ok()?;
    let terms: Vec<Term> = hypothesis
        .terms
        .iter()
        .zip(coeffs.iter().skip(1))
        .map(|(factors, &c)| Term::new(c, factors.clone()))
        .collect();
    Some(Model::new(hypothesis.num_params, coeffs[0], terms))
}

/// Fits a hypothesis and scores it with in-sample SMAPE and leave-one-out
/// cross-validation SMAPE, applying the default [`FitConstraints`].
pub fn fit_hypothesis(
    hypothesis: &Hypothesis,
    points: &[(Vec<f64>, f64)],
) -> Result<FittedHypothesis, ModelError> {
    fit_hypothesis_constrained(hypothesis, points, FitConstraints::default())
}

/// [`fit_hypothesis`] with explicit constraints.
pub fn fit_hypothesis_constrained(
    hypothesis: &Hypothesis,
    points: &[(Vec<f64>, f64)],
    constraints: FitConstraints,
) -> Result<FittedHypothesis, ModelError> {
    let raw = fit_coefficients(hypothesis, points).ok_or(ModelError::NoViableHypothesis)?;

    // Prune terms whose largest contribution over the measured points is
    // negligible relative to the function values, and refit the reduced
    // structure so the remaining coefficients stay least-squares optimal.
    let (hypothesis, model) = if constraints.prune_relative_threshold > 0.0 && !raw.terms.is_empty()
    {
        let scale = points
            .iter()
            .map(|(p, _)| raw.evaluate(p).abs())
            .fold(0.0_f64, f64::max)
            .max(f64::MIN_POSITIVE);
        let keep: Vec<bool> = raw
            .terms
            .iter()
            .map(|t| {
                let max_contribution = points
                    .iter()
                    .map(|(p, _)| t.evaluate(p).abs())
                    .fold(0.0_f64, f64::max);
                max_contribution / scale >= constraints.prune_relative_threshold
            })
            .collect();
        if keep.iter().all(|&k| k) {
            (hypothesis.clone(), raw)
        } else {
            let reduced = Hypothesis {
                num_params: hypothesis.num_params,
                terms: hypothesis
                    .terms
                    .iter()
                    .zip(keep.iter())
                    .filter(|(_, &k)| k)
                    .map(|(t, _)| t.clone())
                    .collect(),
            };
            let model = fit_coefficients(&reduced, points).ok_or(ModelError::NoViableHypothesis)?;
            (reduced, model)
        }
    } else {
        (hypothesis.clone(), raw)
    };

    // Negativity is checked *after* pruning: an exactly-constant function
    // fits a superfluous term's coefficient to ±1e-15, whose sign is noise
    // — pruning removes it, leaving only meaningful coefficients to judge.
    if !constraints.allow_negative_terms && model.terms.iter().any(|t| t.coefficient < 0.0) {
        return Err(ModelError::NoViableHypothesis);
    }

    let actual: Vec<f64> = points.iter().map(|(_, v)| *v).collect();
    let predicted: Vec<f64> = points.iter().map(|(p, _)| model.evaluate(p)).collect();
    let fit_smape = smape(&actual, &predicted);

    let cv_smape = cross_validation_smape(points, |train| {
        let m = fit_coefficients(&hypothesis, train)?;
        Some(Box::new(move |x: &[f64]| m.evaluate(x)) as Box<dyn Fn(&[f64]) -> f64>)
    })
    .ok_or(ModelError::NoViableHypothesis)?;

    if !fit_smape.is_finite() || !cv_smape.is_finite() {
        return Err(ModelError::NoViableHypothesis);
    }

    Ok(FittedHypothesis {
        model,
        fit_smape,
        cv_smape,
        hypothesis,
    })
}

/// Selects the best fitted hypothesis from `candidates` by cross-validation
/// SMAPE, breaking near-ties (within `tie_tolerance` percentage points)
/// toward the structurally simpler hypothesis.
pub fn select_best(
    candidates: Vec<FittedHypothesis>,
    tie_tolerance: f64,
) -> Option<FittedHypothesis> {
    let best_cv = candidates
        .iter()
        .map(|c| c.cv_smape)
        .fold(f64::INFINITY, f64::min);
    if !best_cv.is_finite() {
        return None;
    }
    candidates
        .into_iter()
        .filter(|c| c.cv_smape <= best_cv + tie_tolerance)
        .min_by(|a, b| {
            let ka = a.hypothesis.complexity();
            let kb = b.hypothesis.complexity();
            ka.partial_cmp(&kb)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(
                    a.cv_smape
                        .partial_cmp(&b.cv_smape)
                        .unwrap_or(std::cmp::Ordering::Equal),
                )
        })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ExponentPair, Hypothesis};

    fn points_from(f: impl Fn(f64) -> f64, xs: &[f64]) -> Vec<(Vec<f64>, f64)> {
        xs.iter().map(|&x| (vec![x], f(x))).collect()
    }

    #[test]
    fn fits_exact_linear_term() {
        let pts = points_from(|x| 5.0 + 3.0 * x, &[2.0, 4.0, 8.0, 16.0, 32.0]);
        let hyp = Hypothesis::single(ExponentPair::from_parts(1, 1, 0));
        let fitted = fit_hypothesis(&hyp, &pts).unwrap();
        assert!((fitted.model.constant - 5.0).abs() < 1e-8);
        assert!((fitted.model.terms[0].coefficient - 3.0).abs() < 1e-9);
        assert!(fitted.fit_smape < 1e-9);
        assert!(fitted.cv_smape < 1e-9);
    }

    #[test]
    fn fits_log_squared_term() {
        let f = |x: f64| 1.0 + 0.5 * x * x.log2().powi(2);
        let pts = points_from(f, &[4.0, 8.0, 16.0, 32.0, 64.0]);
        let hyp = Hypothesis::single(ExponentPair::from_parts(1, 1, 2));
        let fitted = fit_hypothesis(&hyp, &pts).unwrap();
        assert!(fitted.cv_smape < 1e-6, "cv = {}", fitted.cv_smape);
    }

    #[test]
    fn constant_hypothesis_fits_mean_like_value() {
        let pts = points_from(|_| 7.0, &[1.0, 2.0, 4.0, 8.0, 16.0]);
        let fitted = fit_hypothesis(&Hypothesis::constant(1), &pts).unwrap();
        assert!((fitted.model.constant - 7.0).abs() < 1e-9);
        assert!(fitted.model.is_constant());
    }

    #[test]
    fn too_few_points_is_rejected() {
        let pts = points_from(|x| x, &[2.0]);
        let hyp = Hypothesis::single(ExponentPair::from_parts(1, 1, 0));
        assert!(fit_coefficients(&hyp, &pts).is_none());
    }

    #[test]
    fn degenerate_design_is_skipped() {
        // All x identical -> the x column is a multiple of the constant
        // column -> rank deficient.
        let pts = points_from(|x| x, &[4.0, 4.0, 4.0, 4.0]);
        let hyp = Hypothesis::single(ExponentPair::from_parts(1, 1, 0));
        assert!(fit_coefficients(&hyp, &pts).is_none());
    }

    #[test]
    fn wrong_structure_scores_worse_than_right_one() {
        let f = |x: f64| 2.0 + 0.1 * x * x; // quadratic
        let xs = [2.0, 4.0, 8.0, 16.0, 32.0];
        let pts = points_from(f, &xs);
        let right =
            fit_hypothesis(&Hypothesis::single(ExponentPair::from_parts(2, 1, 0)), &pts).unwrap();
        let wrong =
            fit_hypothesis(&Hypothesis::single(ExponentPair::from_parts(1, 2, 0)), &pts).unwrap();
        assert!(right.cv_smape < wrong.cv_smape);
    }

    #[test]
    fn select_best_prefers_lowest_cv() {
        let f = |x: f64| 1.0 + 2.0 * x;
        let pts = points_from(f, &[2.0, 4.0, 8.0, 16.0, 32.0]);
        let candidates: Vec<FittedHypothesis> = [
            ExponentPair::from_parts(1, 1, 0),
            ExponentPair::from_parts(2, 1, 0),
            ExponentPair::from_parts(1, 2, 0),
        ]
        .iter()
        .filter_map(|&p| fit_hypothesis(&Hypothesis::single(p), &pts).ok())
        .collect();
        let best = select_best(candidates, 1e-6).unwrap();
        assert_eq!(
            best.model.lead_exponent(0).unwrap(),
            ExponentPair::from_parts(1, 1, 0)
        );
    }

    #[test]
    fn select_best_breaks_ties_toward_simplicity() {
        // Constant data: the constant hypothesis and x^{1/4} (with c1 ~ 0)
        // both reach ~0 CV error; the constant must win.
        let pts = points_from(|_| 10.0, &[2.0, 4.0, 8.0, 16.0, 32.0]);
        let candidates: Vec<FittedHypothesis> = vec![
            fit_hypothesis(&Hypothesis::single(ExponentPair::from_parts(1, 4, 0)), &pts).unwrap(),
            fit_hypothesis(&Hypothesis::constant(1), &pts).unwrap(),
        ];
        let best = select_best(candidates, 0.01).unwrap();
        assert!(best.model.is_constant());
    }

    #[test]
    fn select_best_of_empty_is_none() {
        assert!(select_best(Vec::new(), 0.0).is_none());
    }

    #[test]
    fn negligible_terms_are_pruned_to_a_constant() {
        // A constant function fitted with a cubic hypothesis: the cubic
        // coefficient comes out ~0 and the term must disappear, so the
        // model's lead exponent is constant, not x^3.
        let pts = points_from(|_| 541.2, &[6.0, 13.0, 20.0, 27.0, 34.0]);
        let hyp = Hypothesis::single(ExponentPair::from_parts(3, 1, 1));
        let fitted = fit_hypothesis(&hyp, &pts).unwrap();
        assert!(fitted.model.is_constant(), "model = {}", fitted.model);
        assert!((fitted.model.constant - 541.2).abs() < 1e-6);
    }

    #[test]
    fn pruning_keeps_significant_terms() {
        let pts = points_from(|x| 1.0 + 2.0 * x, &[2.0, 4.0, 8.0, 16.0, 32.0]);
        let hyp = Hypothesis::single(ExponentPair::from_parts(1, 1, 0));
        let fitted = fit_hypothesis(&hyp, &pts).unwrap();
        assert_eq!(fitted.model.terms.len(), 1);
    }

    #[test]
    fn negative_term_coefficients_are_rejected_by_default() {
        // Decreasing data: any growing term needs a negative coefficient.
        let pts = points_from(|x| 100.0 - 2.0 * x, &[2.0, 4.0, 8.0, 16.0, 32.0]);
        let hyp = Hypothesis::single(ExponentPair::from_parts(1, 1, 0));
        assert!(matches!(
            fit_hypothesis(&hyp, &pts),
            Err(ModelError::NoViableHypothesis)
        ));
        // ... but allowed when explicitly unconstrained.
        let fitted =
            fit_hypothesis_constrained(&hyp, &pts, FitConstraints::unconstrained()).unwrap();
        assert!(fitted.model.terms[0].coefficient < 0.0);
    }

    #[test]
    fn negative_constants_remain_allowed() {
        // The paper's RELeARN model has a negative constant; only negative
        // *term* coefficients are unphysical.
        let pts = points_from(
            |x| -50.0 + 30.0 * x.log2(),
            &[4.0, 16.0, 64.0, 256.0, 1024.0],
        );
        let hyp = Hypothesis::single(ExponentPair::from_parts(0, 1, 1));
        let fitted = fit_hypothesis(&hyp, &pts).unwrap();
        assert!(fitted.model.constant < 0.0);
        assert!(fitted.model.terms[0].coefficient > 0.0);
        assert!(fitted.cv_smape < 1e-6);
    }

    #[test]
    fn unconstrained_fit_keeps_tiny_terms() {
        let pts = points_from(|_| 10.0, &[2.0, 4.0, 8.0, 16.0, 32.0]);
        let hyp = Hypothesis::single(ExponentPair::from_parts(2, 1, 0));
        let fitted =
            fit_hypothesis_constrained(&hyp, &pts, FitConstraints::unconstrained()).unwrap();
        assert_eq!(fitted.model.terms.len(), 1);
    }
}
