//! Hypothesis search spaces.
//!
//! A *hypothesis* is the structural half of a candidate model — which terms
//! with which exponents — before the coefficients are known. Extra-P
//! instantiates the PMNF with every exponent combination from the canonical
//! set *E* and lets cross-validation pick the winner.

use crate::{exponent_set, ExponentPair, TermFactor};

/// The structural skeleton of a candidate model: one factor list per term.
/// Coefficients (including the constant `c_0`) are supplied later by the
/// least-squares fit.
#[derive(Debug, Clone, PartialEq)]
pub struct Hypothesis {
    /// Number of parameters of the eventual model.
    pub num_params: usize,
    /// One entry per non-constant term: the term's factors.
    pub terms: Vec<Vec<TermFactor>>,
}

impl Hypothesis {
    /// The constant hypothesis `f(x) = c_0`.
    pub fn constant(num_params: usize) -> Self {
        Hypothesis {
            num_params,
            terms: Vec::new(),
        }
    }

    /// A single-parameter, single-term hypothesis
    /// `f(x) = c_0 + c_1 · x^i · log2^j(x)`.
    pub fn single(pair: ExponentPair) -> Self {
        Hypothesis {
            num_params: 1,
            terms: vec![vec![TermFactor::new(0, pair)]],
        }
    }

    /// Total number of coefficients (constant + one per term).
    pub fn num_coefficients(&self) -> usize {
        1 + self.terms.len()
    }

    /// A canonical key identifying the structure, used to deduplicate
    /// hypotheses produced by different combination paths.
    pub fn structure_key(&self) -> String {
        let mut term_keys: Vec<String> = self
            .terms
            .iter()
            .map(|factors| {
                let mut fs: Vec<String> = factors
                    .iter()
                    .filter(|f| !f.exponents.is_constant())
                    .map(|f| {
                        format!(
                            "p{}e{}/{}l{}",
                            f.param,
                            f.exponents.poly.num(),
                            f.exponents.poly.den(),
                            f.exponents.log
                        )
                    })
                    .collect();
                fs.sort();
                fs.join("*")
            })
            .filter(|k| !k.is_empty())
            .collect();
        term_keys.sort();
        term_keys.join("+")
    }

    /// Complexity measure used to break cross-validation ties toward the
    /// simplest explanation: number of terms, then total factor growth.
    pub fn complexity(&self) -> (usize, f64) {
        let growth: f64 = self
            .terms
            .iter()
            .flat_map(|fs| fs.iter())
            .map(|f| f.exponents.poly.to_f64() + 0.25 * f.exponents.log as f64)
            .sum();
        (self.terms.len(), growth)
    }
}

/// All 43 single-parameter hypotheses from the canonical exponent set,
/// ordered by ascending growth (so ties resolve toward simpler models).
///
/// The `(0, 0)` member of *E* yields the constant hypothesis.
pub fn single_parameter_hypotheses() -> Vec<Hypothesis> {
    exponent_set()
        .pairs()
        .iter()
        .map(|&pair| {
            if pair.is_constant() {
                Hypothesis::constant(1)
            } else {
                Hypothesis::single(pair)
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::NUM_CLASSES;

    #[test]
    fn search_space_has_one_hypothesis_per_class() {
        let hyps = single_parameter_hypotheses();
        assert_eq!(hyps.len(), NUM_CLASSES);
        // Exactly one constant hypothesis.
        assert_eq!(hyps.iter().filter(|h| h.terms.is_empty()).count(), 1);
        // It comes first (ascending growth order).
        assert!(hyps[0].terms.is_empty());
    }

    #[test]
    fn coefficients_count_constant_plus_terms() {
        assert_eq!(Hypothesis::constant(1).num_coefficients(), 1);
        assert_eq!(
            Hypothesis::single(ExponentPair::from_parts(1, 2, 1)).num_coefficients(),
            2
        );
    }

    #[test]
    fn structure_keys_identify_identical_structures() {
        let a = Hypothesis::single(ExponentPair::from_parts(1, 2, 0));
        let b = Hypothesis::single(ExponentPair::from_parts(1, 2, 0));
        let c = Hypothesis::single(ExponentPair::from_parts(1, 3, 0));
        assert_eq!(a.structure_key(), b.structure_key());
        assert_ne!(a.structure_key(), c.structure_key());
        assert_eq!(Hypothesis::constant(1).structure_key(), "");
    }

    #[test]
    fn structure_key_is_order_invariant() {
        let f1 = TermFactor::new(0, ExponentPair::from_parts(1, 1, 0));
        let f2 = TermFactor::new(1, ExponentPair::from_parts(1, 2, 1));
        let a = Hypothesis {
            num_params: 2,
            terms: vec![vec![f1, f2]],
        };
        let b = Hypothesis {
            num_params: 2,
            terms: vec![vec![f2, f1]],
        };
        assert_eq!(a.structure_key(), b.structure_key());
    }

    #[test]
    fn complexity_orders_simple_before_elaborate() {
        let constant = Hypothesis::constant(1);
        let linear = Hypothesis::single(ExponentPair::from_parts(1, 1, 0));
        let loglinear = Hypothesis::single(ExponentPair::from_parts(1, 1, 1));
        assert!(constant.complexity() < linear.complexity());
        assert!(linear.complexity() < loglinear.complexity());
    }
}
