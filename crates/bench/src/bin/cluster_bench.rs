//! Sharded-serving benchmark: goodput of the `nrpm-cluster` router at
//! several shard counts, per-key routing affinity on repeated keys, and a
//! chaos campaign that kills a shard mid-burst behind a fault-injecting
//! proxy and demands zero client-visible failures after retries.
//!
//! Each distinct kernel routes by its measurement-set fingerprint, so a
//! repeated key should land on the same shard every time (and hit that
//! shard's warm result cache). Affinity is the fraction of requests a
//! key's modal shard answered.
//!
//! On top of the single-copy campaigns, the replication suite measures
//! the R=2 fan-out path: a kill-one-replica burst that must answer 100%
//! with zero divergent replies, a rolling checkpoint rollout under load
//! that must refuse nothing, a standby-router takeover timed against the
//! member lease, and an allocation-free `successors_into` micro-benchmark
//! against the allocating `successors` it replaces on the hot path.
//!
//! ```text
//! cargo run -p nrpm-bench --release --bin cluster_bench -- \
//!     [--requests N] [--clients C] [--keys K] [--shards 1,2,4,8] \
//!     [--chaos-requests N] [--replicated-requests N] \
//!     [--ring-iters N] [--out BENCH_cluster.json]
//! ```

use nrpm_bench::cli::Args;
use nrpm_bench::report::{f2, pct, Table};
use nrpm_cluster::{Cluster, ClusterOptions, HashRing, DEFAULT_VNODES};
use nrpm_core::preprocess::NUM_INPUTS;
use nrpm_extrap::{MeasurementSet, NUM_CLASSES};
use nrpm_nn::{Network, NetworkConfig};
use nrpm_serve::chaos::{ChaosOptions, ChaosProxy};
use nrpm_serve::client::{is_ok, Client, RetryPolicy, RetryingClient};
use nrpm_serve::server::ServeOptions;
use serde::{Serialize, Value};
use std::collections::HashMap;
use std::net::SocketAddr;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// One shard-count scenario: a clean burst of repeated keys.
#[derive(Debug, Clone, Serialize)]
struct ShardScenario {
    shards: usize,
    requests: usize,
    distinct_keys: usize,
    wall_s: f64,
    requests_per_s: f64,
    p50_ms: f64,
    p99_ms: f64,
    /// Fraction of requests answered by their key's modal shard.
    affinity: f64,
    failovers: u64,
    rejected: u64,
}

/// The kill-a-shard-mid-burst campaign through the chaos proxy.
#[derive(Debug, Clone, Serialize)]
struct ChaosCampaign {
    shards: usize,
    requests: usize,
    answered: usize,
    /// Requests still failing after the client exhausted its retries —
    /// the acceptance bar is zero.
    dropped: usize,
    killed_shard: u32,
    failovers: u64,
    faults_injected: u64,
}

/// The R=2 kill-one-replica burst: every request must still be answered,
/// and no reply may be quorum-flagged divergent.
#[derive(Debug, Clone, Serialize)]
struct ReplicationCampaign {
    shards: usize,
    replication: usize,
    requests: usize,
    answered: usize,
    dropped: usize,
    /// Replies the router flagged `divergent` — the acceptance bar is
    /// zero: a killed replica must never surface a mixed answer.
    divergent_replies: usize,
    killed_shard: u32,
    replica_fanouts: u64,
    replica_divergences: u64,
}

/// A rolling checkpoint rollout driven while clients hammer the router.
#[derive(Debug, Clone, Serialize)]
struct RolloutDrill {
    shards: usize,
    replication: usize,
    /// Requests answered while the walk ran.
    answered: usize,
    dropped: usize,
    /// Router-side rejections during the walk — the acceptance bar is
    /// zero: draining one shard at a time must never refuse a request.
    rejected: u64,
    rollout_wall_s: f64,
    updated_shards: usize,
}

/// Warm-standby takeover after the primary router is killed.
#[derive(Debug, Clone, Serialize)]
struct TakeoverDrill {
    lease_ms: u64,
    /// Wall time from `router_kill` to the standby answering `stats` at
    /// the advertised address. Must beat one lease period.
    takeover_ms: f64,
}

/// `HashRing::successors` (allocating) vs `successors_into` (reused
/// buffer) on the router's per-request lookup path.
#[derive(Debug, Clone, Serialize)]
struct RingMicroBench {
    shards: usize,
    vnodes: usize,
    iters: usize,
    alloc_ns_per_op: f64,
    into_ns_per_op: f64,
    speedup: f64,
}

#[derive(Debug, Clone, Serialize)]
struct ClusterBenchReport {
    requests_per_scenario: usize,
    client_threads: usize,
    distinct_keys: usize,
    affinity_floor: f64,
    scenarios: Vec<ShardScenario>,
    chaos: ChaosCampaign,
    replication: ReplicationCampaign,
    rollout: RolloutDrill,
    takeover: TakeoverDrill,
    ring: RingMicroBench,
}

/// A distinct linear kernel per key; repeating a key repeats its exact
/// fingerprint, which is what the ring routes on.
fn keyed_set(key: u64) -> MeasurementSet {
    let slope = 2.0 + key as f64 * 0.5;
    let mut set = MeasurementSet::new(1);
    for &x in &[4.0f64, 8.0, 16.0, 32.0, 64.0] {
        set.add_repetitions(&[x], &[slope * x, slope * x]);
    }
    set
}

fn bench_network() -> Network {
    Network::new(&NetworkConfig::new(&[NUM_INPUTS, 32, NUM_CLASSES]), 17)
}

fn launch(shards: usize) -> Cluster {
    Cluster::launch(
        bench_network(),
        ClusterOptions {
            shards,
            workers_per_shard: 2,
            probe_interval: Duration::from_millis(100),
            shard_opts: ServeOptions::default(),
            ..ClusterOptions::default()
        },
    )
    .expect("launch bench cluster")
}

fn percentile(sorted: &[Duration], q: f64) -> f64 {
    if sorted.is_empty() {
        return f64::NAN;
    }
    let idx = ((sorted.len() as f64 - 1.0) * q).round() as usize;
    sorted[idx].as_secs_f64() * 1e3
}

fn router_stat(addr: SocketAddr, key: &str) -> u64 {
    let mut client = Client::connect(addr, Duration::from_secs(30)).expect("stats client");
    let stats = client.stats().expect("router stats");
    stats.get(key).and_then(Value::as_u64).unwrap_or(0)
}

/// Clean burst: `requests` single-model requests over `keys` repeated
/// kernels from `clients` threads; collects latencies and, per request,
/// which shard answered.
fn run_scenario(shards: usize, requests: usize, keys: usize, clients: usize) -> ShardScenario {
    let cluster = launch(shards);
    let addr = cluster.router_addr();

    let started = Instant::now();
    let handles: Vec<_> = (0..clients)
        .map(|c| {
            let share = requests / clients + usize::from(c < requests % clients);
            std::thread::spawn(move || {
                let mut client =
                    Client::connect(addr, Duration::from_secs(60)).expect("bench client");
                let mut latencies = Vec::with_capacity(share);
                let mut answers: Vec<(u64, u64)> = Vec::with_capacity(share);
                for r in 0..share {
                    let key = ((c + r * clients) % keys) as u64;
                    let sent = Instant::now();
                    let response = client
                        .model(keyed_set(key), None, None)
                        .expect("bench request");
                    assert!(is_ok(&response), "bench request failed: {response:?}");
                    latencies.push(sent.elapsed());
                    let shard = response
                        .get("shard")
                        .and_then(Value::as_u64)
                        .expect("router annotates the answering shard");
                    answers.push((key, shard));
                }
                (latencies, answers)
            })
        })
        .collect();
    let mut latencies: Vec<Duration> = Vec::with_capacity(requests);
    let mut by_key: HashMap<u64, HashMap<u64, usize>> = HashMap::new();
    for handle in handles {
        let (lat, answers) = handle.join().expect("bench client thread");
        latencies.extend(lat);
        for (key, shard) in answers {
            *by_key.entry(key).or_default().entry(shard).or_default() += 1;
        }
    }
    let wall = started.elapsed().as_secs_f64();

    // Affinity: requests answered by each key's modal shard.
    let (modal, total) = by_key.values().fold((0usize, 0usize), |(m, t), shards| {
        let sum: usize = shards.values().sum();
        let best: usize = shards.values().copied().max().unwrap_or(0);
        (m + best, t + sum)
    });
    let affinity = if total == 0 {
        0.0
    } else {
        modal as f64 / total as f64
    };

    let failovers = router_stat(addr, "failovers");
    let rejected = router_stat(addr, "rejected");
    cluster.request_shutdown();
    cluster.join().expect("drain bench cluster");

    latencies.sort();
    ShardScenario {
        shards,
        requests,
        distinct_keys: keys,
        wall_s: wall,
        requests_per_s: requests as f64 / wall,
        p50_ms: percentile(&latencies, 0.50),
        p99_ms: percentile(&latencies, 0.99),
        affinity,
        failovers,
        rejected,
    }
}

/// Chaos campaign: retrying clients hammer the router through a
/// fault-injecting proxy (latency, partial writes, truncated frames,
/// resets — no garbage, which would corrupt requests into terminal parse
/// errors) while one shard is killed mid-burst. Every request must be
/// answered once the client's retries are spent.
fn run_chaos(requests: usize, keys: usize, clients: usize) -> ChaosCampaign {
    let shards = 3usize;
    let killed_shard = 0u32;
    let cluster = launch(shards);
    let proxy = ChaosProxy::start(
        cluster.router_addr(),
        ChaosOptions {
            garbage_prob: 0.0,
            ..ChaosOptions::default()
        },
    )
    .expect("start chaos proxy");
    let proxy_addr = proxy.addr();

    let done = Arc::new(AtomicUsize::new(0));
    let handles: Vec<_> = (0..clients)
        .map(|c| {
            let share = requests / clients + usize::from(c < requests % clients);
            let done = Arc::clone(&done);
            std::thread::spawn(move || {
                // Generous retries; the breaker stays out of the picture so
                // every failure is retried rather than short-circuited.
                let policy = RetryPolicy {
                    max_attempts: 10,
                    breaker_threshold: 1000,
                    seed: 0xc1a5 + c as u64,
                    ..RetryPolicy::default()
                };
                let mut client = RetryingClient::new(proxy_addr, Duration::from_secs(30), policy);
                let mut answered = 0usize;
                let mut dropped = 0usize;
                for r in 0..share {
                    let key = ((c + r * clients) % keys) as u64;
                    match client.model(keyed_set(key), None, Some(30_000)) {
                        Ok(response) if is_ok(&response) => answered += 1,
                        _ => dropped += 1,
                    }
                    done.fetch_add(1, Ordering::Relaxed);
                }
                (answered, dropped)
            })
        })
        .collect();

    // Kill a shard once the burst is well underway.
    while done.load(Ordering::Relaxed) < requests / 3 {
        std::thread::sleep(Duration::from_millis(5));
    }
    cluster.kill_shard(killed_shard).expect("kill shard");

    let mut answered = 0usize;
    let mut dropped = 0usize;
    for handle in handles {
        let (a, d) = handle.join().expect("chaos client thread");
        answered += a;
        dropped += d;
    }

    let failovers = router_stat(cluster.router_addr(), "failovers");
    let faults = proxy.fault_counts().total();
    drop(proxy);
    cluster.request_shutdown();
    cluster.join().expect("drain chaos cluster");

    ChaosCampaign {
        shards,
        requests,
        answered,
        dropped,
        killed_shard,
        failovers,
        faults_injected: faults,
    }
}

/// A replicated (R=2) tier with fast supervisor cadence for the drills.
fn launch_replicated(extra: impl FnOnce(&mut ClusterOptions)) -> Cluster {
    let mut opts = ClusterOptions {
        shards: 3,
        replication: 2,
        workers_per_shard: 2,
        probe_interval: Duration::from_millis(50),
        probe_timeout: Duration::from_millis(500),
        readmit_probes: 2,
        debug_hooks: true,
        ..ClusterOptions::default()
    };
    extra(&mut opts);
    Cluster::launch(bench_network(), opts).expect("launch replicated bench cluster")
}

/// R=2 burst with one replica killed mid-flight: counts answers, drops,
/// and replies the quorum flagged divergent.
fn run_replication(requests: usize, keys: usize, clients: usize) -> ReplicationCampaign {
    let cluster = launch_replicated(|_| {});
    let addr = cluster.router_addr();
    let killed_shard = 1u32;

    let done = Arc::new(AtomicUsize::new(0));
    let handles: Vec<_> = (0..clients)
        .map(|c| {
            let share = requests / clients + usize::from(c < requests % clients);
            let done = Arc::clone(&done);
            std::thread::spawn(move || {
                let mut client =
                    RetryingClient::new(addr, Duration::from_secs(30), RetryPolicy::default());
                let mut answered = 0usize;
                let mut dropped = 0usize;
                let mut divergent = 0usize;
                for r in 0..share {
                    let key = ((c + r * clients) % keys) as u64;
                    match client.model(keyed_set(key), None, Some(30_000)) {
                        Ok(response) if is_ok(&response) => {
                            answered += 1;
                            if response.get("divergent").and_then(Value::as_bool) == Some(true) {
                                divergent += 1;
                            }
                        }
                        _ => dropped += 1,
                    }
                    done.fetch_add(1, Ordering::Relaxed);
                }
                (answered, dropped, divergent)
            })
        })
        .collect();

    while done.load(Ordering::Relaxed) < requests / 3 {
        std::thread::sleep(Duration::from_millis(5));
    }
    cluster.kill_shard(killed_shard).expect("kill replica");

    let (mut answered, mut dropped, mut divergent) = (0usize, 0usize, 0usize);
    for handle in handles {
        let (a, d, v) = handle.join().expect("replication client thread");
        answered += a;
        dropped += d;
        divergent += v;
    }
    let replica_fanouts = router_stat(addr, "replica_fanouts");
    let replica_divergences = router_stat(addr, "replica_divergences");
    cluster.request_shutdown();
    cluster.join().expect("drain replicated cluster");

    ReplicationCampaign {
        shards: 3,
        replication: 2,
        requests,
        answered,
        dropped,
        divergent_replies: divergent,
        killed_shard,
        replica_fanouts,
        replica_divergences,
    }
}

/// Rolling rollout while clients keep requesting: the walk must finish
/// with zero rejections and zero client-visible drops.
fn run_rollout_drill(keys: usize, clients: usize) -> RolloutDrill {
    let dir = std::env::temp_dir().join(format!("nrpm-bench-rollout-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let cluster = launch_replicated(|opts| {
        opts.registry_dir = Some(dir.clone());
    });
    let addr = cluster.router_addr();

    let stop = Arc::new(AtomicUsize::new(0));
    let handles: Vec<_> = (0..clients)
        .map(|c| {
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                let mut client =
                    RetryingClient::new(addr, Duration::from_secs(30), RetryPolicy::default());
                let mut answered = 0usize;
                let mut dropped = 0usize;
                let mut key = c;
                while stop.load(Ordering::Relaxed) == 0 {
                    match client.model(keyed_set((key % keys) as u64), None, Some(30_000)) {
                        Ok(response) if is_ok(&response) => answered += 1,
                        _ => dropped += 1,
                    }
                    key += 1;
                }
                (answered, dropped)
            })
        })
        .collect();

    std::thread::sleep(Duration::from_millis(100));
    let started = Instant::now();
    let report = cluster
        .rollout(Network::new(
            &NetworkConfig::new(&[NUM_INPUTS, 32, NUM_CLASSES]),
            18,
        ))
        .expect("rolling rollout");
    let rollout_wall_s = started.elapsed().as_secs_f64();
    stop.store(1, Ordering::Relaxed);

    let (mut answered, mut dropped) = (0usize, 0usize);
    for handle in handles {
        let (a, d) = handle.join().expect("rollout client thread");
        answered += a;
        dropped += d;
    }
    let rejected = router_stat(addr, "rejected");
    cluster.request_shutdown();
    cluster.join().expect("drain rollout cluster");
    let _ = std::fs::remove_dir_all(&dir);

    RolloutDrill {
        shards: 3,
        replication: 2,
        answered,
        dropped,
        rejected,
        rollout_wall_s,
        updated_shards: report.updated.len(),
    }
}

/// Kills the primary router (shards keep running) and times how long the
/// warm standby needs to own the advertised address and answer `stats`.
fn run_takeover() -> TakeoverDrill {
    let lease = Duration::from_secs(2);
    let cluster = launch_replicated(|opts| {
        opts.standby = true;
        opts.gossip_interval = Duration::from_millis(50);
        opts.takeover_after = 2;
        opts.member_lease = lease;
    });
    let addr = cluster.router_addr();
    // Let the standby build a good membership view first.
    std::thread::sleep(Duration::from_millis(300));

    let mut admin = Client::connect(addr, Duration::from_secs(10)).expect("admin client");
    admin
        .roundtrip_line(r#"{"cmd":"router_kill"}"#)
        .expect("router_kill");
    let crashed_at = Instant::now();
    let deadline = crashed_at + lease * 4;
    let takeover_ms = loop {
        if let Ok(mut probe) = Client::connect(addr, Duration::from_millis(200)) {
            if let Ok(stats) = probe.stats() {
                if stats.get("role").and_then(Value::as_str) == Some("standby") {
                    break crashed_at.elapsed().as_secs_f64() * 1e3;
                }
            }
        }
        assert!(
            Instant::now() < deadline,
            "standby never took over the advertised address"
        );
        std::thread::sleep(Duration::from_millis(10));
    };
    cluster.request_shutdown();
    cluster.join().expect("drain takeover cluster");

    TakeoverDrill {
        lease_ms: lease.as_millis() as u64,
        takeover_ms,
    }
}

/// Times the allocating `successors` against the allocation-free
/// `successors_into` over the same key stream.
fn run_ring_bench(iters: usize) -> RingMicroBench {
    let shards = 8usize;
    let ring = HashRing::new(0..shards as u32, DEFAULT_VNODES);
    let keys: Vec<u64> = (0..1024u64)
        .map(|k| k.wrapping_mul(0x9e3779b97f4a7c15))
        .collect();

    let mut sink = 0u64;
    let started = Instant::now();
    for i in 0..iters {
        let order = ring.successors(keys[i % keys.len()]);
        sink = sink.wrapping_add(u64::from(order.first().copied().unwrap_or(0)));
    }
    let alloc_ns = started.elapsed().as_secs_f64() * 1e9 / iters as f64;

    let mut order = Vec::with_capacity(shards);
    let started = Instant::now();
    for i in 0..iters {
        ring.successors_into(keys[i % keys.len()], &mut order);
        sink = sink.wrapping_add(u64::from(order.first().copied().unwrap_or(0)));
    }
    let into_ns = started.elapsed().as_secs_f64() * 1e9 / iters as f64;
    assert!(sink != 1, "keep the loops from being optimized away");

    RingMicroBench {
        shards,
        vnodes: DEFAULT_VNODES,
        iters,
        alloc_ns_per_op: alloc_ns,
        into_ns_per_op: into_ns,
        speedup: alloc_ns / into_ns,
    }
}

fn main() {
    let args = Args::parse();
    let requests = args.get("requests", 160usize);
    let clients = args.get("clients", 4usize);
    let keys = args.get("keys", 16usize);
    let chaos_requests = args.get("chaos-requests", 120usize).max(100);
    let replicated_requests = args.get("replicated-requests", 120usize).max(60);
    let ring_iters = args.get("ring-iters", 200_000usize).max(1_000);
    let shard_counts: Vec<usize> = args
        .get_f64_list("shards", &[1.0, 2.0, 4.0, 8.0])
        .into_iter()
        .map(|s| s as usize)
        .collect();
    let out = args.get("out", "BENCH_cluster.json".to_string());
    let affinity_floor = 0.90;

    println!(
        "cluster goodput: {requests} requests/scenario over {keys} keys, \
         {clients} client threads\n"
    );
    let mut table = Table::new(&[
        "shards",
        "req/s",
        "p50 ms",
        "p99 ms",
        "affinity",
        "failovers",
        "rejected",
    ]);
    let mut scenarios = Vec::new();
    for &shards in &shard_counts {
        let result = run_scenario(shards, requests, keys, clients);
        table.row(vec![
            result.shards.to_string(),
            f2(result.requests_per_s),
            f2(result.p50_ms),
            f2(result.p99_ms),
            pct(result.affinity),
            result.failovers.to_string(),
            result.rejected.to_string(),
        ]);
        scenarios.push(result);
    }
    table.print();

    println!("\nchaos campaign: {chaos_requests} requests, kill one shard mid-burst...");
    let chaos = run_chaos(chaos_requests, keys, clients);
    println!(
        "answered {}/{} (dropped {}), {} failovers, {} wire faults injected",
        chaos.answered, chaos.requests, chaos.dropped, chaos.failovers, chaos.faults_injected
    );

    println!(
        "\nreplication campaign: {replicated_requests} requests at R=2, \
         kill one replica mid-burst..."
    );
    let replication = run_replication(replicated_requests, keys, clients);
    println!(
        "answered {}/{} (dropped {}, divergent {}), {} fan-outs, {} divergences resolved",
        replication.answered,
        replication.requests,
        replication.dropped,
        replication.divergent_replies,
        replication.replica_fanouts,
        replication.replica_divergences
    );

    println!("\nrollout drill: rolling checkpoint upgrade under load...");
    let rollout = run_rollout_drill(keys, clients);
    println!(
        "walked {} shards in {}s; {} answered, {} dropped, {} rejected",
        rollout.updated_shards,
        f2(rollout.rollout_wall_s),
        rollout.answered,
        rollout.dropped,
        rollout.rejected
    );

    println!("\ntakeover drill: kill the primary router, time the standby...");
    let takeover = run_takeover();
    println!(
        "standby owned the address in {} ms (lease {} ms)",
        f2(takeover.takeover_ms),
        takeover.lease_ms
    );

    println!("\nring micro-bench: successors vs successors_into ({ring_iters} iters)...");
    let ring = run_ring_bench(ring_iters);
    println!(
        "alloc {} ns/op, into {} ns/op ({}x)",
        f2(ring.alloc_ns_per_op),
        f2(ring.into_ns_per_op),
        f2(ring.speedup)
    );

    let report = ClusterBenchReport {
        requests_per_scenario: requests,
        client_threads: clients,
        distinct_keys: keys,
        affinity_floor,
        scenarios,
        chaos,
        replication,
        rollout,
        takeover,
        ring,
    };
    let json = serde_json::to_string_pretty(&report).expect("serialize report");
    std::fs::write(&out, json).expect("write report");
    println!("\nreport written to {out}");

    // Acceptance gates — fail loudly after the report is on disk.
    for scenario in &report.scenarios {
        assert!(
            scenario.affinity >= affinity_floor,
            "shards={}: affinity {} below the {} floor",
            scenario.shards,
            pct(scenario.affinity),
            pct(affinity_floor)
        );
        assert_eq!(
            scenario.rejected, 0,
            "shards={}: clean burst must reject nothing",
            scenario.shards
        );
    }
    assert_eq!(
        report.chaos.dropped, 0,
        "chaos campaign dropped requests after retries"
    );
    assert_eq!(
        report.replication.dropped, 0,
        "replication campaign dropped requests after a replica kill"
    );
    assert_eq!(
        report.replication.divergent_replies, 0,
        "replication campaign surfaced divergent replies"
    );
    assert_eq!(
        report.rollout.dropped, 0,
        "rollout drill dropped requests mid-walk"
    );
    assert_eq!(
        report.rollout.rejected, 0,
        "rollout drill rejected requests mid-walk"
    );
    assert!(
        report.takeover.takeover_ms <= report.takeover.lease_ms as f64,
        "standby takeover ({} ms) exceeded one lease period ({} ms)",
        f2(report.takeover.takeover_ms),
        report.takeover.lease_ms
    );
}
