//! Integration test: the guarded trainer must recover from a mid-epoch
//! NaN loss by rolling back to the last good snapshot and retrying —
//! and still learn the task.

use nrpm_linalg::Matrix;
use nrpm_nn::{Dataset, FaultDetected, Network, NetworkConfig, TrainerOptions, WatchdogOptions};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn separable_blobs(n_per_class: usize, seed: u64) -> Dataset {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut rows = Vec::new();
    let mut labels = Vec::new();
    for class in 0..3usize {
        let (cx, cy) = match class {
            0 => (-2.0, -2.0),
            1 => (2.0, -2.0),
            _ => (0.0, 2.0),
        };
        for _ in 0..n_per_class {
            rows.push(vec![
                cx + rng.gen_range(-0.5..0.5),
                cy + rng.gen_range(-0.5..0.5),
            ]);
            labels.push(class);
        }
    }
    let refs: Vec<&[f64]> = rows.iter().map(|r| r.as_slice()).collect();
    Dataset::new(Matrix::from_rows(&refs), labels, 3).unwrap()
}

#[test]
fn trainer_recovers_from_injected_nan_loss() {
    let data = separable_blobs(50, 42);
    let opts = TrainerOptions {
        epochs: 12,
        batch_size: 25,
        ..Default::default()
    };
    // Poison two steps in different epochs; 150 samples / 25 per batch =
    // 6 steps per epoch, so steps 9 and 31 land mid-epoch 1 and mid-epoch 5.
    let guard = WatchdogOptions {
        inject_nan_loss_at: vec![9, 31],
        ..Default::default()
    };

    let mut net = Network::new(&NetworkConfig::new(&[2, 16, 3]), 7);
    let report = net.train_guarded(&data, &opts, &guard).unwrap();

    assert_eq!(
        report.faults.len(),
        2,
        "both injected faults must be caught"
    );
    assert!(report
        .faults
        .iter()
        .all(|f| f.kind == FaultDetected::NonFiniteLoss));
    assert_eq!(report.retries_used, 2);
    assert!(
        !report.gave_up,
        "two faults fit inside the default retry budget"
    );

    // Recovery must leave a working model, not just finite weights.
    let final_loss = report.report.final_loss();
    assert!(final_loss.is_finite());
    assert!(
        report.report.epoch_losses.first().unwrap() > &final_loss,
        "loss must still decrease across the run: {:?}",
        report.report.epoch_losses
    );
    let acc = net.accuracy(&data).unwrap();
    assert!(acc > 0.95, "recovered network only reaches {acc} accuracy");
}
