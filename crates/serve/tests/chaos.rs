//! Chaos soak: a retrying client drives a real server through the
//! [`nrpm_serve::chaos::ChaosProxy`] while it injects latency, partial
//! writes, truncated frames, garbage bytes, and connection drops. The
//! server must neither panic nor hang, and once the faults stop the same
//! client must converge back to clean successes.

use nrpm_core::adaptive::AdaptiveOptions;
use nrpm_core::preprocess::NUM_INPUTS;
use nrpm_extrap::{MeasurementSet, NUM_CLASSES};
use nrpm_nn::{Network, NetworkConfig};
use nrpm_serve::chaos::{ChaosOptions, ChaosProxy};
use nrpm_serve::client::{is_ok, Client, RetryError, RetryPolicy, RetryingClient};
use nrpm_serve::server::{ServeOptions, Server};
use nrpm_serve::store::ModelStore;
use serde::Value;
use std::sync::mpsc;
use std::thread;
use std::time::{Duration, Instant};

fn test_store() -> ModelStore {
    let net = Network::new(&NetworkConfig::new(&[NUM_INPUTS, 16, NUM_CLASSES]), 7);
    ModelStore::from_network(net, AdaptiveOptions::default()).unwrap()
}

fn clean_linear_set() -> MeasurementSet {
    let mut set = MeasurementSet::new(1);
    for &x in &[4.0, 8.0, 16.0, 32.0, 64.0] {
        set.add_repetitions(&[x], &[2.0 * x, 2.0 * x]);
    }
    set
}

fn join_within(server: Server, limit: Duration) {
    let (tx, rx) = mpsc::channel();
    thread::spawn(move || {
        let _ = tx.send(server.join());
    });
    rx.recv_timeout(limit)
        .expect("server failed to drain within the limit")
        .expect("a server thread panicked");
}

fn get_u64(v: &Value, key: &str) -> u64 {
    v.get(key)
        .and_then(Value::as_u64)
        .unwrap_or_else(|| panic!("missing u64 `{key}` in {v:?}"))
}

#[test]
fn soak_through_chaos_then_converge_once_faults_stop() {
    let server = Server::start(
        "127.0.0.1:0",
        test_store(),
        ServeOptions {
            workers: 2,
            ..Default::default()
        },
    )
    .expect("bind server");
    let mut proxy = ChaosProxy::start(
        server.addr(),
        ChaosOptions {
            latency: Duration::from_millis(2),
            latency_prob: 0.3,
            partial_write_prob: 0.3,
            truncate_prob: 0.15,
            garbage_prob: 0.2,
            reset_prob: 0.1,
            seed: 0xbad5eed,
            ..ChaosOptions::default()
        },
    )
    .expect("start proxy");

    let policy = RetryPolicy {
        max_attempts: 6,
        base_backoff: Duration::from_millis(2),
        max_backoff: Duration::from_millis(30),
        breaker_threshold: 8,
        breaker_cooldown: Duration::from_millis(50),
        seed: 41,
    };
    let mut client = RetryingClient::new(proxy.addr(), Duration::from_secs(5), policy);

    // Phase 1: soak under faults until ≥100 injections. Requests may fail
    // (exhausted retries, corrupted-request parse errors, an open
    // breaker); they must never panic or hang.
    let mut sent = 0u64;
    let mut succeeded = 0u64;
    let soak_deadline = Instant::now() + Duration::from_secs(120);
    while proxy.fault_counts().total() < 100 {
        assert!(
            Instant::now() < soak_deadline,
            "soak made no progress: {:?} after {sent} requests",
            proxy.fault_counts()
        );
        let result = if sent.is_multiple_of(4) {
            client.model(clean_linear_set(), None, Some(2_000))
        } else {
            client.roundtrip_line(r#"{"cmd":"health"}"#)
        };
        sent += 1;
        match result {
            Ok(response) => {
                if is_ok(&response) {
                    succeeded += 1;
                }
            }
            Err(RetryError::CircuitOpen) => {
                // The breaker did its job; wait out the cooldown.
                thread::sleep(Duration::from_millis(60));
            }
            Err(RetryError::Exhausted(_)) => {}
        }
    }
    let faults = proxy.fault_counts();
    assert!(faults.total() >= 100, "{faults:?}");
    assert!(succeeded > 0, "nothing got through {sent} faulted requests");

    // Phase 2: faults off — the same client converges to clean successes
    // (retries may still smooth over the transition).
    proxy.set_faults_enabled(false);
    for i in 0..10 {
        let response = client
            .model(clean_linear_set(), None, Some(5_000))
            .unwrap_or_else(|e| panic!("request {i} after faults stopped: {e}"));
        assert!(is_ok(&response), "request {i}: {response:?}");
    }

    // The server itself never crashed: no worker was ever respawned, and
    // it still answers directly (bypassing the proxy).
    let mut direct = Client::connect(server.addr(), Duration::from_secs(30)).expect("direct");
    assert!(is_ok(&direct.health().unwrap()));
    let stats = direct.stats().unwrap();
    assert_eq!(get_u64(&stats, "worker_restarts"), 0);

    proxy.stop();
    assert!(is_ok(&direct.shutdown().unwrap()));
    join_within(server, Duration::from_secs(20));
}
