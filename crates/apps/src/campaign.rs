//! Campaign machinery: turning per-kernel ground-truth models into noisy
//! measurement sets with the paper's exact layouts.

use crate::noise_regime::NoiseRegime;
use nrpm_extrap::{MeasurementSet, Model};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Which measurement points a campaign collects.
#[derive(Debug, Clone)]
pub enum Layout {
    /// The full cartesian grid over the per-parameter value sets (Kripke's
    /// 150-point campaign).
    FullGrid,
    /// Two (or `m`) crossing lines: for each parameter, its full value set
    /// while every other parameter sits at its base value — the paper's
    /// FASTEST and RELeARN layouts (nine points for two parameters, with
    /// the lines overlapping at the base point).
    CrossLines {
        /// Index into each parameter's value set giving the fixed base.
        base_index: Vec<usize>,
    },
}

/// One kernel of a case study: its ground truth and its simulated
/// measurement campaign.
#[derive(Debug, Clone)]
pub struct KernelCampaign {
    /// Kernel name (e.g. `SweepSolver`).
    pub name: String,
    /// Ground-truth model (from the paper's results / cited literature).
    pub truth: Model,
    /// Fraction of total application runtime spent in this kernel; the
    /// paper's predictive-power analysis only considers kernels above 1 %.
    pub runtime_share: f64,
    /// The noisy measurements used for modeling.
    pub set: MeasurementSet,
    /// Held-out evaluation point `P⁺`.
    pub eval_point: Vec<f64>,
    /// The *measured* (noisy, median-of-repetitions) value at `P⁺` — the
    /// paper grades predictions against the held-out measurement.
    pub eval_measured: f64,
    /// The noise-free ground-truth value at `P⁺`.
    pub eval_truth: f64,
}

impl KernelCampaign {
    /// `true` when the kernel counts as performance-relevant (> 1 % of the
    /// application runtime, Sec. VI-C).
    pub fn is_performance_relevant(&self) -> bool {
        self.runtime_share > 0.01
    }
}

/// A complete simulated case study.
#[derive(Debug, Clone)]
pub struct CaseStudy {
    /// Application name.
    pub name: &'static str,
    /// Human-readable parameter names.
    pub parameter_names: Vec<&'static str>,
    /// Per-parameter value sets used for the campaign.
    pub parameter_values: Vec<Vec<f64>>,
    /// All kernels with their campaigns.
    pub kernels: Vec<KernelCampaign>,
}

impl CaseStudy {
    /// The performance-relevant kernels (> 1 % runtime share).
    pub fn relevant_kernels(&self) -> impl Iterator<Item = &KernelCampaign> {
        self.kernels.iter().filter(|k| k.is_performance_relevant())
    }
}

/// One PMNF factor: `(param, num, den, log)`.
pub(crate) type PmnfFactor = (usize, i32, i32, u8);

/// Terse PMNF model builder for the case-study ground truths: each term is
/// `(coefficient, factors)` with factors `(param, num, den, log)`.
pub(crate) fn pmnf(m: usize, c0: f64, terms: &[(f64, &[PmnfFactor])]) -> Model {
    use nrpm_extrap::{ExponentPair, Term, TermFactor};
    let terms = terms
        .iter()
        .map(|(c, factors)| {
            Term::new(
                *c,
                factors
                    .iter()
                    .map(|&(p, n, d, j)| TermFactor::new(p, ExponentPair::from_parts(n, d, j)))
                    .collect(),
            )
        })
        .collect();
    Model::new(m, c0, terms)
}

/// Builds one kernel's campaign: enumerate the layout's points, evaluate
/// the truth, inject per-point uniform multiplicative noise, repeat.
#[allow(clippy::too_many_arguments)]
pub(crate) fn build_kernel(
    name: &str,
    truth: Model,
    runtime_share: f64,
    parameter_values: &[Vec<f64>],
    layout: &Layout,
    repetitions: usize,
    noise: NoiseRegime,
    eval_point: Vec<f64>,
    seed: u64,
) -> KernelCampaign {
    let mut rng = StdRng::seed_from_u64(seed);
    let m = parameter_values.len();
    let mut set = MeasurementSet::new(m);

    let emit = |point: &[f64], rng: &mut StdRng, set: &mut MeasurementSet| {
        let value = truth.evaluate(point);
        let level = noise.sample_level_for(repetitions, rng);
        let reps: Vec<f64> = (0..repetitions)
            .map(|_| value * rng.gen_range(1.0 - level / 2.0..=1.0 + level / 2.0))
            .collect();
        set.add_repetitions(point, &reps);
    };

    match layout {
        Layout::FullGrid => {
            let mut idx = vec![0usize; m];
            'grid: loop {
                let point: Vec<f64> = (0..m).map(|l| parameter_values[l][idx[l]]).collect();
                emit(&point, &mut rng, &mut set);
                let mut l = 0;
                loop {
                    if l == m {
                        break 'grid;
                    }
                    idx[l] += 1;
                    if idx[l] < parameter_values[l].len() {
                        break;
                    }
                    idx[l] = 0;
                    l += 1;
                }
            }
        }
        Layout::CrossLines { base_index } => {
            assert_eq!(base_index.len(), m, "one base index per parameter");
            let base: Vec<f64> = (0..m).map(|l| parameter_values[l][base_index[l]]).collect();
            let mut seen: Vec<Vec<f64>> = Vec::new();
            for l in 0..m {
                for &v in &parameter_values[l] {
                    let mut point = base.clone();
                    point[l] = v;
                    if !seen.contains(&point) {
                        emit(&point, &mut rng, &mut set);
                        seen.push(point);
                    }
                }
            }
        }
    }

    // The held-out evaluation measurement.
    let eval_truth = truth.evaluate(&eval_point);
    let level = noise.sample_level_for(repetitions, &mut rng);
    let eval_reps: Vec<f64> = (0..repetitions)
        .map(|_| eval_truth * rng.gen_range(1.0 - level / 2.0..=1.0 + level / 2.0))
        .collect();
    let eval_measured = nrpm_extrap::Aggregation::Median.apply(&eval_reps);

    KernelCampaign {
        name: name.to_string(),
        truth,
        runtime_share,
        set,
        eval_point,
        eval_measured,
        eval_truth,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nrpm_extrap::{ExponentPair, Term, TermFactor};

    fn linear_truth() -> Model {
        Model::new(
            2,
            1.0,
            vec![Term::new(
                2.0,
                vec![TermFactor::new(0, ExponentPair::from_parts(1, 1, 0))],
            )],
        )
    }

    fn values() -> Vec<Vec<f64>> {
        vec![vec![2.0, 4.0, 8.0], vec![10.0, 20.0, 30.0]]
    }

    #[test]
    fn full_grid_enumerates_all_combinations() {
        let k = build_kernel(
            "k",
            linear_truth(),
            0.5,
            &values(),
            &Layout::FullGrid,
            3,
            NoiseRegime::uniform(0.0, 0.0),
            vec![16.0, 40.0],
            1,
        );
        assert_eq!(k.set.len(), 9);
        assert!(k.set.find(&[8.0, 30.0]).is_some());
        assert_eq!(k.set.measurements()[0].values.len(), 3);
    }

    #[test]
    fn cross_lines_overlap_at_the_base() {
        let k = build_kernel(
            "k",
            linear_truth(),
            0.5,
            &values(),
            &Layout::CrossLines {
                base_index: vec![0, 0],
            },
            2,
            NoiseRegime::uniform(0.0, 0.0),
            vec![16.0, 40.0],
            1,
        );
        // 3 + 3 - 1 overlap = 5 points
        assert_eq!(k.set.len(), 5);
        assert!(k.set.find(&[2.0, 10.0]).is_some());
        assert!(k.set.find(&[8.0, 10.0]).is_some());
        assert!(k.set.find(&[2.0, 30.0]).is_some());
        assert!(
            k.set.find(&[8.0, 30.0]).is_none(),
            "corner must not be measured"
        );
    }

    #[test]
    fn zero_noise_measurements_equal_truth() {
        let k = build_kernel(
            "k",
            linear_truth(),
            0.5,
            &values(),
            &Layout::FullGrid,
            2,
            NoiseRegime::uniform(0.0, 0.0),
            vec![16.0, 40.0],
            7,
        );
        for m in k.set.measurements() {
            let t = k.truth.evaluate(&m.point);
            for v in &m.values {
                assert!((v - t).abs() < 1e-9);
            }
        }
        assert!((k.eval_measured - k.eval_truth).abs() < 1e-9);
        assert!((k.eval_truth - (1.0 + 2.0 * 16.0)).abs() < 1e-12);
    }

    #[test]
    fn campaigns_are_reproducible_by_seed() {
        let build = |seed| {
            build_kernel(
                "k",
                linear_truth(),
                0.5,
                &values(),
                &Layout::FullGrid,
                3,
                NoiseRegime::uniform(0.1, 0.3),
                vec![16.0, 40.0],
                seed,
            )
        };
        let a = build(42);
        let b = build(42);
        let c = build(43);
        assert_eq!(a.set, b.set);
        assert_ne!(a.set, c.set);
    }

    #[test]
    fn relevance_threshold_is_one_percent() {
        let mut k = build_kernel(
            "k",
            linear_truth(),
            0.005,
            &values(),
            &Layout::FullGrid,
            1,
            NoiseRegime::uniform(0.0, 0.0),
            vec![16.0, 40.0],
            1,
        );
        assert!(!k.is_performance_relevant());
        k.runtime_share = 0.02;
        assert!(k.is_performance_relevant());
    }
}
