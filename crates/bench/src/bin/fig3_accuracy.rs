//! Reproduces Fig. 3(a–c): model accuracy (fraction of models whose
//! lead-exponent distance to the synthetic baseline is ≤ 1/4, 1/3, 1/2)
//! versus noise level, for the regression and the adaptive modeler.
//!
//! ```text
//! cargo run -p nrpm-bench --release --bin fig3_accuracy -- \
//!     [--params 1|2|3] [--functions N] [--noise 0.02,0.05,...] \
//!     [--seed S] [--paper-net] [--no-adaptation] [--top-k K]
//! ```

use nrpm_bench::cli::Args;
use nrpm_bench::report::{pct, Table};
use nrpm_bench::sweep::{run_sweep, SweepConfig};
use nrpm_bench::PAPER_NOISE_LEVELS;
use nrpm_core::dnn::DnnOptions;

fn main() {
    let args = Args::parse();
    let params: usize = args.get("params", 0);
    let param_range: Vec<usize> = if params == 0 {
        vec![1, 2, 3]
    } else {
        vec![params]
    };

    for m in param_range {
        let mut dnn = if args.has("paper-net") {
            DnnOptions::paper_fidelity()
        } else {
            DnnOptions::default()
        };
        dnn.top_k = args.get("top-k", dnn.top_k);
        dnn.seed = args.get("seed", dnn.seed);
        dnn.aggregation = nrpm_bench::cli::aggregation_flag(&args);
        if args.has("linear-encoding") {
            dnn.encoding = nrpm_core::preprocess::ValueScaling::MaxAbs;
        }
        let config = SweepConfig {
            num_params: m,
            noise_levels: args.get_f64_list("noise", &PAPER_NOISE_LEVELS),
            functions: args.get("functions", 200),
            seed: args.get("seed", 0xF16),
            dnn,
            adaptation: !args.has("no-adaptation"),
            repetitions: args.get("reps", 5),
            aggregation: nrpm_bench::cli::aggregation_flag(&args),
            refined_baseline: args.has("refined-baseline"),
            ..Default::default()
        };

        println!(
            "\n== Fig. 3({}) — model accuracy, m = {m}, {} functions/level ==\n",
            ["a", "b", "c"][m - 1],
            config.functions
        );
        let results = run_sweep(&config);

        let mut table = Table::new(&[
            "noise",
            "reg d<=1/4",
            "reg d<=1/3",
            "reg d<=1/2",
            "ada d<=1/4",
            "ada d<=1/3",
            "ada d<=1/2",
        ]);
        for r in &results {
            table.row(vec![
                pct(r.noise),
                pct(r.regression.buckets.within_quarter),
                pct(r.regression.buckets.within_third),
                pct(r.regression.buckets.within_half),
                pct(r.adaptive.buckets.within_quarter),
                pct(r.adaptive.buckets.within_third),
                pct(r.adaptive.buckets.within_half),
            ]);
        }
        table.print();

        if args.has("ci") {
            println!("\n99% Wilson CIs of the d<=1/4 accuracy:\n");
            let mut ci_table = Table::new(&["noise", "regression", "adaptive"]);
            let show = |ci: Option<(f64, f64)>| match ci {
                Some((lo, hi)) => format!("[{}, {}]", pct(lo), pct(hi)),
                None => "n/a".to_string(),
            };
            for r in &results {
                ci_table.row(vec![
                    pct(r.noise),
                    show(r.regression.quarter_ci99()),
                    show(r.adaptive.quarter_ci99()),
                ]);
            }
            ci_table.print();
        }

        if args.has("show-dnn") {
            println!("\nDNN-only accuracy (the always-DNN ablation):\n");
            let mut dnn_table = Table::new(&["noise", "dnn d<=1/4", "dnn d<=1/3", "dnn d<=1/2"]);
            for r in &results {
                dnn_table.row(vec![
                    pct(r.noise),
                    pct(r.dnn.buckets.within_quarter),
                    pct(r.dnn.buckets.within_third),
                    pct(r.dnn.buckets.within_half),
                ]);
            }
            dnn_table.print();
        }

        // Headline: the improvement at the highest noise level (the paper
        // reports up to +22 % for m = 1 and +25 % for m = 2 at 100 %).
        if let Some(last) = results.last() {
            let delta =
                last.adaptive.buckets.within_quarter - last.regression.buckets.within_quarter;
            println!(
                "\nimprovement at {} noise (d<=1/4): {:+.1} percentage points",
                pct(last.noise),
                delta * 100.0
            );
        }
    }
}
