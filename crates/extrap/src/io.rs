//! Plain-text import/export of measurement sets.
//!
//! Besides the JSON (de)serialization that comes with serde, this module
//! implements a line-oriented text format in the spirit of Extra-P's input
//! files, convenient to produce from shell scripts around real experiment
//! campaigns:
//!
//! ```text
//! # anything after '#' is a comment
//! PARAMS 2 processes problem_size
//! POINT 16 1024 DATA 12.1 11.8 12.9
//! POINT 32 1024 DATA 19.5 21.2 20.0
//! ```
//!
//! `PARAMS <m> [names…]` declares the arity (names are optional and purely
//! informational); each `POINT` line carries `m` coordinates followed by
//! `DATA` and at least one repetition value.

use crate::{Measurement, MeasurementSet};
use std::fmt;
use std::path::Path;

/// Errors produced by the text parser.
#[derive(Debug, Clone, PartialEq)]
pub enum ParseError {
    /// The `PARAMS` header is missing or malformed.
    MissingHeader,
    /// A line could not be parsed.
    BadLine {
        /// 1-based line number.
        line: usize,
        /// What went wrong.
        reason: String,
    },
    /// The file declared parameters but contained no measurement points.
    NoPoints,
    /// The file could not be read at all.
    Io {
        /// The offending path.
        path: String,
        /// The underlying I/O error.
        reason: String,
    },
    /// A parse error located in a named file — rendered as
    /// `path: line N: reason`, the diagnostic shape editors understand.
    InFile {
        /// The offending path.
        path: String,
        /// The underlying error.
        error: Box<ParseError>,
    },
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParseError::MissingHeader => {
                write!(
                    f,
                    "missing `PARAMS <m> [names…]` header before the first POINT"
                )
            }
            ParseError::BadLine { line, reason } => write!(f, "line {line}: {reason}"),
            ParseError::NoPoints => write!(f, "no POINT lines found"),
            ParseError::Io { path, reason } => write!(f, "{path}: {reason}"),
            ParseError::InFile { path, error } => write!(f, "{path}: {error}"),
        }
    }
}

impl std::error::Error for ParseError {}

/// A measurement set together with its (optional) parameter names.
#[derive(Debug, Clone, PartialEq)]
pub struct NamedMeasurements {
    /// The measurements.
    pub set: MeasurementSet,
    /// Parameter names from the header (empty strings when unnamed).
    pub parameter_names: Vec<String>,
}

/// Parses the text format described in the module docs.
pub fn parse_text(input: &str) -> Result<NamedMeasurements, ParseError> {
    let mut set: Option<MeasurementSet> = None;
    let mut names: Vec<String> = Vec::new();

    for (idx, raw) in input.lines().enumerate() {
        let line_no = idx + 1;
        let line = match raw.find('#') {
            Some(pos) => &raw[..pos],
            None => raw,
        }
        .trim();
        if line.is_empty() {
            continue;
        }
        let mut tokens = line.split_whitespace();
        match tokens.next() {
            Some("PARAMS") => {
                let m: usize =
                    tokens
                        .next()
                        .and_then(|t| t.parse().ok())
                        .ok_or(ParseError::BadLine {
                            line: line_no,
                            reason: "PARAMS needs a positive integer arity".into(),
                        })?;
                if m == 0 {
                    return Err(ParseError::BadLine {
                        line: line_no,
                        reason: "arity must be at least 1".into(),
                    });
                }
                names = tokens.map(str::to_string).collect();
                if !names.is_empty() && names.len() != m {
                    return Err(ParseError::BadLine {
                        line: line_no,
                        reason: format!("{} names for {m} parameters", names.len()),
                    });
                }
                if names.is_empty() {
                    names = vec![String::new(); m];
                }
                set = Some(MeasurementSet::new(m));
            }
            Some("POINT") => {
                let set = set.as_mut().ok_or(ParseError::MissingHeader)?;
                let rest: Vec<&str> = tokens.collect();
                let data_pos =
                    rest.iter()
                        .position(|&t| t == "DATA")
                        .ok_or(ParseError::BadLine {
                            line: line_no,
                            reason: "POINT line lacks a DATA marker".into(),
                        })?;
                let parse_floats = |tokens: &[&str]| -> Result<Vec<f64>, ParseError> {
                    tokens
                        .iter()
                        .map(|t| {
                            t.parse::<f64>().map_err(|_| ParseError::BadLine {
                                line: line_no,
                                reason: format!("`{t}` is not a number"),
                            })
                        })
                        .collect()
                };
                let point = parse_floats(&rest[..data_pos])?;
                let values = parse_floats(&rest[data_pos + 1..])?;
                if point.len() != set.num_params() {
                    return Err(ParseError::BadLine {
                        line: line_no,
                        reason: format!(
                            "{} coordinates, expected {}",
                            point.len(),
                            set.num_params()
                        ),
                    });
                }
                if values.is_empty() {
                    return Err(ParseError::BadLine {
                        line: line_no,
                        reason: "DATA needs at least one value".into(),
                    });
                }
                set.add_repetitions(&point, &values);
            }
            Some(other) => {
                return Err(ParseError::BadLine {
                    line: line_no,
                    reason: format!("unknown directive `{other}`"),
                })
            }
            None => unreachable!("empty lines are skipped"),
        }
    }

    let set = set.ok_or(ParseError::MissingHeader)?;
    if set.is_empty() {
        return Err(ParseError::NoPoints);
    }
    Ok(NamedMeasurements {
        set,
        parameter_names: names,
    })
}

/// Reads and parses a measurement file, attaching the path to every
/// diagnostic so malformed input reports `path: line N: reason` instead of
/// panicking somewhere downstream.
pub fn parse_text_file(path: &Path) -> Result<NamedMeasurements, ParseError> {
    let display = path.display().to_string();
    let raw = std::fs::read_to_string(path).map_err(|e| ParseError::Io {
        path: display.clone(),
        reason: e.to_string(),
    })?;
    parse_text(&raw).map_err(|e| ParseError::InFile {
        path: display,
        error: Box::new(e),
    })
}

/// Writes a measurement set in the text format.
pub fn write_text(set: &MeasurementSet, parameter_names: &[&str]) -> String {
    let mut out = String::new();
    out.push_str(&format!("PARAMS {}", set.num_params()));
    for name in parameter_names.iter().take(set.num_params()) {
        out.push(' ');
        out.push_str(name);
    }
    out.push('\n');
    for Measurement { point, values } in set.measurements() {
        out.push_str("POINT");
        for c in point {
            out.push_str(&format!(" {c}"));
        }
        out.push_str(" DATA");
        for v in values {
            out.push_str(&format!(" {v}"));
        }
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = "\
# FASTEST-style two-parameter campaign
PARAMS 2 processes problem_size
POINT 16 1024 DATA 12.1 11.8 12.9
POINT 32 1024 DATA 19.5 21.2 20.0   # inline comment
POINT 64 1024 DATA 34.1 31.9
";

    #[test]
    fn parses_points_and_names() {
        let parsed = parse_text(SAMPLE).unwrap();
        assert_eq!(parsed.parameter_names, vec!["processes", "problem_size"]);
        assert_eq!(parsed.set.len(), 3);
        assert_eq!(parsed.set.num_params(), 2);
        let m = parsed.set.find(&[32.0, 1024.0]).unwrap();
        assert_eq!(m.values, vec![19.5, 21.2, 20.0]);
    }

    #[test]
    fn unnamed_header_is_allowed() {
        let parsed = parse_text("PARAMS 1\nPOINT 4 DATA 1.0\n").unwrap();
        assert_eq!(parsed.parameter_names, vec![String::new()]);
        assert_eq!(parsed.set.len(), 1);
    }

    #[test]
    fn round_trips_through_write_text() {
        let parsed = parse_text(SAMPLE).unwrap();
        let text = write_text(&parsed.set, &["processes", "problem_size"]);
        let again = parse_text(&text).unwrap();
        assert_eq!(parsed.set, again.set);
        assert_eq!(again.parameter_names, vec!["processes", "problem_size"]);
    }

    #[test]
    fn missing_header_is_reported() {
        assert_eq!(
            parse_text("POINT 4 DATA 1.0\n").unwrap_err(),
            ParseError::MissingHeader
        );
        assert_eq!(parse_text("").unwrap_err(), ParseError::MissingHeader);
    }

    #[test]
    fn arity_mismatches_are_reported_with_line_numbers() {
        let err = parse_text("PARAMS 2\nPOINT 4 DATA 1.0\n").unwrap_err();
        match err {
            ParseError::BadLine { line, reason } => {
                assert_eq!(line, 2);
                assert!(reason.contains("coordinates"));
            }
            other => panic!("unexpected error {other:?}"),
        }
    }

    #[test]
    fn bad_numbers_and_directives_are_rejected() {
        assert!(matches!(
            parse_text("PARAMS 1\nPOINT abc DATA 1\n").unwrap_err(),
            ParseError::BadLine { .. }
        ));
        assert!(matches!(
            parse_text("FROBNICATE\n").unwrap_err(),
            ParseError::BadLine { .. }
        ));
        assert!(matches!(
            parse_text("PARAMS 1\nPOINT 4 DATA\n").unwrap_err(),
            ParseError::BadLine { .. }
        ));
        assert!(matches!(
            parse_text("PARAMS 1\nPOINT 4 1.0\n").unwrap_err(),
            ParseError::BadLine { .. }
        ));
    }

    #[test]
    fn zero_arity_and_name_mismatch_are_rejected() {
        assert!(matches!(
            parse_text("PARAMS 0\n").unwrap_err(),
            ParseError::BadLine { .. }
        ));
        assert!(matches!(
            parse_text("PARAMS 2 only_one\n").unwrap_err(),
            ParseError::BadLine { .. }
        ));
    }

    #[test]
    fn file_parsing_reports_path_and_line() {
        let dir = std::env::temp_dir().join("nrpm_io_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("broken.txt");
        std::fs::write(&path, "PARAMS 1\nPOINT oops DATA 1\n").unwrap();
        let err = parse_text_file(&path).unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("broken.txt"), "{msg}");
        assert!(msg.contains("line 2"), "{msg}");
        std::fs::remove_file(&path).ok();

        let err = parse_text_file(Path::new("/nonexistent/nrpm.txt")).unwrap_err();
        assert!(matches!(err, ParseError::Io { .. }));
        assert!(err.to_string().contains("/nonexistent/nrpm.txt"));
    }

    #[test]
    fn header_without_points_is_rejected() {
        assert_eq!(parse_text("PARAMS 1\n").unwrap_err(), ParseError::NoPoints);
    }

    #[test]
    fn parsed_sets_are_modelable() {
        let text = "PARAMS 1\n".to_string()
            + &[4.0, 8.0, 16.0, 32.0, 64.0]
                .iter()
                .map(|x: &f64| format!("POINT {x} DATA {}\n", 2.0 * x))
                .collect::<String>();
        let parsed = parse_text(&text).unwrap();
        let result = crate::RegressionModeler::default()
            .model(&parsed.set)
            .unwrap();
        assert_eq!(
            result.model.lead_exponent(0).unwrap(),
            crate::ExponentPair::from_parts(1, 1, 0)
        );
    }
}
