//! Content-addressed model registry and crash-safe memoized result cache.
//!
//! Modeling a kernel through the adaptive pipeline costs milliseconds to
//! seconds (cross-validated fits, optionally domain adaptation); looking
//! up a previous answer costs microseconds. This crate makes the lookup
//! safe to rely on:
//!
//! * [`lru`] — a sharded in-memory LRU keyed by the canonical fingerprints
//!   of [`nrpm_core::fingerprint`], with hit/miss/eviction counters;
//! * [`journal`] — an append-only, checksummed on-disk record log with
//!   torn-tail crash recovery and atomic-rename compaction;
//! * [`cache`] — the two combined: [`cache::ResultCache`] memoizes
//!   `fingerprint → outcome` across restarts;
//! * [`checkpoints`] — a content-addressed store of trained networks with
//!   named refs (`default`, `best`), `verify`, and `gc`;
//! * [`singleflight`] — request deduplication so N concurrent identical
//!   requests compute once and share the answer.
//!
//! The serving layer (`nrpm-serve`) wires these together: cache before
//! model, single-flight around the model path, journal under the cache.
//!
//! ```
//! use nrpm_registry::cache::ResultCache;
//!
//! let cache: ResultCache<f64> = ResultCache::in_memory(1024, 8);
//! assert_eq!(cache.get(42), None);
//! cache.insert(42, 1.25).unwrap();
//! assert_eq!(cache.get(42), Some(1.25));
//! assert_eq!(cache.stats().lru.hits, 1);
//! ```

#![warn(missing_docs)]

pub mod cache;
pub mod checkpoints;
pub mod journal;
pub mod lru;
pub mod rollout;
pub mod singleflight;
pub mod swap;

pub use cache::{CacheStats, ResultCache};
pub use checkpoints::{hex16, parse_hex16, CheckpointRegistry, RegistryError, VerifyOutcome};
pub use journal::{Journal, JournalError, RecoveryReport};
pub use lru::{LruStats, ShardedLru};
pub use singleflight::{Joined, SingleFlight};
pub use swap::{SwapJournal, SwapPhase, SwapRecord, SwapRecovery};
