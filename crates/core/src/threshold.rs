//! Switching thresholds of the adaptive modeler (Sec. IV-A).
//!
//! The regression modeler wins at low noise, the DNN modeler at high noise;
//! the switch point is where their accuracy-vs-noise curves intersect. The
//! paper determines the thresholds from an in-depth synthetic analysis; the
//! same analysis is reproducible here via the `threshold_calibration` bench
//! binary, whose output feeds [`intersection_threshold`]. The defaults below
//! come from our own calibration run (see EXPERIMENTS.md).

use serde::{Deserialize, Serialize};

/// An accuracy-vs-noise curve: `accuracy[i]` is the model accuracy at
/// `noise_levels[i]` (both in ascending noise order).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AccuracyCurve {
    /// Noise levels (fractions), ascending.
    pub noise_levels: Vec<f64>,
    /// Accuracy at each level (fraction of correct models).
    pub accuracy: Vec<f64>,
}

impl AccuracyCurve {
    /// Creates a curve, validating shape and ordering.
    pub fn new(noise_levels: Vec<f64>, accuracy: Vec<f64>) -> Result<Self, String> {
        if noise_levels.len() != accuracy.len() {
            return Err("noise_levels and accuracy must have equal length".into());
        }
        if noise_levels.len() < 2 {
            return Err("a curve needs at least two samples".into());
        }
        if noise_levels.windows(2).any(|w| w[1] <= w[0]) {
            return Err("noise levels must be strictly ascending".into());
        }
        Ok(AccuracyCurve {
            noise_levels,
            accuracy,
        })
    }
}

/// Finds the noise level where the adaptive/DNN curve starts to beat the
/// regression curve: the first crossing of `dnn − regression` from negative
/// (or zero) to positive, located by linear interpolation between the two
/// surrounding samples.
///
/// Returns `None` when the curves never cross in the sampled range (one
/// modeler dominates everywhere); callers then fall back to always/never
/// switching.
pub fn intersection_threshold(regression: &AccuracyCurve, dnn: &AccuracyCurve) -> Option<f64> {
    assert_eq!(
        regression.noise_levels, dnn.noise_levels,
        "curves must share their noise grid"
    );
    let diffs: Vec<f64> = dnn
        .accuracy
        .iter()
        .zip(regression.accuracy.iter())
        .map(|(d, r)| d - r)
        .collect();
    if diffs[0] > 0.0 {
        // DNN already ahead at the lowest sampled noise.
        return Some(regression.noise_levels[0]);
    }
    for i in 1..diffs.len() {
        if diffs[i] > 0.0 {
            let (x0, x1) = (regression.noise_levels[i - 1], regression.noise_levels[i]);
            let (y0, y1) = (diffs[i - 1], diffs[i]);
            if (y1 - y0).abs() < 1e-15 {
                return Some(x0);
            }
            // Linear interpolation of the zero crossing.
            return Some(x0 + (x1 - x0) * (-y0) / (y1 - y0));
        }
    }
    None
}

/// Default switching thresholds per parameter count, as fractions.
///
/// With every additional parameter, noise hurts the regression modeler
/// earlier (Sec. V), so the threshold decreases with `m`.
pub fn default_threshold(num_params: usize) -> f64 {
    match num_params {
        0 | 1 => 0.25,
        2 => 0.20,
        _ => 0.15,
    }
}

/// One calibrated row of a [`ThresholdTable`]: where the DNN/regression
/// crossover sits for one noise regime, together with the accuracy curves
/// it was read off of (kept so the calibration is auditable).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ThresholdEntry {
    /// Regime name (`uniform`, `heteroscedastic`, `spike`, `device`, …).
    pub regime: String,
    /// The calibrated switching threshold; `None` when the curves never
    /// cross in the sampled range (one modeler dominates everywhere).
    pub threshold: Option<f64>,
    /// Noise grid the curves were sampled on, ascending.
    pub noise_levels: Vec<f64>,
    /// Regression accuracy at each level.
    pub regression_accuracy: Vec<f64>,
    /// DNN accuracy at each level.
    pub dnn_accuracy: Vec<f64>,
}

/// A per-regime table of calibrated switching thresholds, produced by the
/// `nrpm sweep` harness and loadable by the adaptive switch (`nrpm serve
/// --thresholds`, `nrpm fit --thresholds`).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ThresholdTable {
    /// Parameter count the calibration ran at.
    pub num_params: usize,
    /// One entry per swept regime.
    pub entries: Vec<ThresholdEntry>,
}

impl ThresholdTable {
    /// The calibrated threshold for `regime`, if that regime was swept and
    /// its curves actually cross.
    pub fn threshold_for_regime(&self, regime: &str) -> Option<f64> {
        self.entries
            .iter()
            .find(|e| e.regime == regime)
            .and_then(|e| e.threshold)
    }

    /// Builds the per-parameter-count threshold vector the adaptive switch
    /// consumes (`AdaptiveOptions::thresholds`): index `m − 1` holds the
    /// threshold for `m` parameters. Counts below the calibrated one keep
    /// their [`default_threshold`]; the calibrated count — and through the
    /// switch's index clamping every count above it — uses the calibrated
    /// value. `None` when the regime is absent or never crosses.
    pub fn switch_thresholds(&self, regime: &str) -> Option<Vec<f64>> {
        let calibrated = self.threshold_for_regime(regime)?;
        let m = self.num_params.max(1);
        let mut thresholds: Vec<f64> = (1..m).map(default_threshold).collect();
        thresholds.push(calibrated);
        Some(thresholds)
    }

    /// Serializes the table to pretty JSON.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("ThresholdTable serializes")
    }

    /// Deserializes a table from JSON.
    pub fn from_json(json: &str) -> Result<Self, serde_json::Error> {
        serde_json::from_str(json)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn grid() -> Vec<f64> {
        vec![0.02, 0.05, 0.10, 0.20, 0.50, 0.75, 1.00]
    }

    #[test]
    fn curve_validation() {
        assert!(AccuracyCurve::new(vec![0.1, 0.2], vec![0.9]).is_err());
        assert!(AccuracyCurve::new(vec![0.1], vec![0.9]).is_err());
        assert!(AccuracyCurve::new(vec![0.2, 0.1], vec![0.9, 0.8]).is_err());
        assert!(AccuracyCurve::new(vec![0.1, 0.2], vec![0.9, 0.8]).is_ok());
    }

    #[test]
    fn finds_interpolated_crossing() {
        let reg =
            AccuracyCurve::new(grid(), vec![0.99, 0.98, 0.95, 0.85, 0.60, 0.45, 0.35]).unwrap();
        let dnn =
            AccuracyCurve::new(grid(), vec![0.95, 0.94, 0.93, 0.84, 0.70, 0.60, 0.55]).unwrap();
        // diff: -.04 -.04 -.02 -.01 +.10 ... -> crossing between 0.20 and 0.50
        let t = intersection_threshold(&reg, &dnn).unwrap();
        assert!(t > 0.20 && t < 0.50, "t = {t}");
        // exact interpolation: 0.20 + 0.30 * 0.01/0.11
        assert!((t - (0.20 + 0.30 * 0.01 / 0.11)).abs() < 1e-12);
    }

    #[test]
    fn dnn_dominating_everywhere_returns_lowest_level() {
        let reg = AccuracyCurve::new(grid(), vec![0.5; 7]).unwrap();
        let dnn = AccuracyCurve::new(grid(), vec![0.6; 7]).unwrap();
        assert_eq!(intersection_threshold(&reg, &dnn), Some(0.02));
    }

    #[test]
    fn regression_dominating_everywhere_returns_none() {
        let reg = AccuracyCurve::new(grid(), vec![0.9; 7]).unwrap();
        let dnn = AccuracyCurve::new(grid(), vec![0.8; 7]).unwrap();
        assert_eq!(intersection_threshold(&reg, &dnn), None);
    }

    #[test]
    fn ties_do_not_count_as_crossing() {
        let reg = AccuracyCurve::new(grid(), vec![0.9; 7]).unwrap();
        let dnn = AccuracyCurve::new(grid(), vec![0.9; 7]).unwrap();
        assert_eq!(intersection_threshold(&reg, &dnn), None);
    }

    #[test]
    fn default_thresholds_decrease_with_parameters() {
        assert!(default_threshold(1) > default_threshold(2));
        assert!(default_threshold(2) > default_threshold(3));
        assert_eq!(default_threshold(3), default_threshold(7));
    }

    fn sample_table() -> ThresholdTable {
        ThresholdTable {
            num_params: 2,
            entries: vec![
                ThresholdEntry {
                    regime: "uniform".into(),
                    threshold: Some(0.31),
                    noise_levels: grid(),
                    regression_accuracy: vec![0.9; 7],
                    dnn_accuracy: vec![0.8; 7],
                },
                ThresholdEntry {
                    regime: "spike".into(),
                    threshold: None,
                    noise_levels: grid(),
                    regression_accuracy: vec![0.9; 7],
                    dnn_accuracy: vec![0.7; 7],
                },
            ],
        }
    }

    #[test]
    fn table_looks_up_regimes_and_round_trips() {
        let table = sample_table();
        assert_eq!(table.threshold_for_regime("uniform"), Some(0.31));
        assert_eq!(table.threshold_for_regime("spike"), None);
        assert_eq!(table.threshold_for_regime("nope"), None);
        let back = ThresholdTable::from_json(&table.to_json()).unwrap();
        assert_eq!(table, back);
    }

    #[test]
    fn switch_thresholds_place_the_calibrated_value_at_its_count() {
        let table = sample_table();
        let t = table.switch_thresholds("uniform").unwrap();
        assert_eq!(t, vec![default_threshold(1), 0.31]);
        assert_eq!(table.switch_thresholds("spike"), None, "no crossover");
        assert_eq!(table.switch_thresholds("nope"), None, "unknown regime");
    }
}
