//! Proof that the hot routing path is allocation-free.
//!
//! The router resolves every relayed request through
//! [`HashRing::successors_into`] with a per-connection buffer. This test
//! binary installs a counting global allocator and asserts that, once the
//! buffer is warmed, repeated successor lookups perform **zero** heap
//! allocations — the property the `successors_into` fast path exists for.
//! It lives in its own integration-test binary so the instrumented
//! allocator cannot skew any other test.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

use nrpm_cluster::HashRing;

struct CountingAlloc;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static COUNTER: CountingAlloc = CountingAlloc;

fn allocations() -> u64 {
    ALLOCATIONS.load(Ordering::SeqCst)
}

#[test]
fn warmed_successor_lookups_do_not_allocate() {
    let ring = HashRing::new(0..8, 64);
    let mut buf: Vec<u32> = Vec::new();
    // Warm the buffer: the first fill may grow it to the shard count.
    ring.successors_into(0, &mut buf);
    assert_eq!(buf.len(), 8);

    let before = allocations();
    for key in 0..50_000u64 {
        ring.successors_into(key, &mut buf);
        std::hint::black_box(&buf);
    }
    let after = allocations();
    assert_eq!(
        after - before,
        0,
        "successors_into allocated on the hot path"
    );
}

#[test]
fn route_does_not_allocate() {
    let ring = HashRing::new(0..8, 64);
    let before = allocations();
    let mut acc = 0u64;
    for key in 0..50_000u64 {
        acc ^= u64::from(ring.route(key).unwrap());
    }
    std::hint::black_box(acc);
    assert_eq!(allocations() - before, 0, "route allocated on the hot path");
}

#[test]
fn the_allocating_successors_path_is_observable() {
    // Sanity-check the counter itself: the Vec-returning variant must
    // trip it, otherwise the zero assertions above prove nothing.
    let ring = HashRing::new(0..8, 64);
    let before = allocations();
    std::hint::black_box(ring.successors(1));
    assert!(allocations() > before, "counting allocator is not wired up");
}
