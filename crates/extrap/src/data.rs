//! Measurement data model: points, repetitions, and measurement sets.
//!
//! A *measurement point* `P(x_1, …, x_m)` is one combination of execution
//! parameter values (e.g. process count and problem size); each point is
//! measured `rep` times (the paper uses up to five repetitions) and the
//! modelers aggregate the repetitions with the median by default.

use crate::metrics::Aggregation;
use serde::{Deserialize, Serialize};

/// One measurement point with its repeated measurements.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Measurement {
    /// Parameter values `(x_1, …, x_m)` of this point.
    pub point: Vec<f64>,
    /// Measured values of the metric (e.g. runtime), one per repetition.
    pub values: Vec<f64>,
}

impl Measurement {
    /// Creates a measurement from a point and its repetition values.
    pub fn new(point: Vec<f64>, values: Vec<f64>) -> Self {
        Measurement { point, values }
    }

    /// Aggregated value of the repetitions.
    pub fn aggregate(&self, agg: Aggregation) -> f64 {
        agg.apply(&self.values)
    }
}

/// A set of measurements for one application kernel.
///
/// This is the input to every modeler in the workspace. Points may appear in
/// any order; lookups and line extraction do not assume sortedness.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MeasurementSet {
    num_params: usize,
    measurements: Vec<Measurement>,
}

impl MeasurementSet {
    /// Creates an empty set for `num_params` execution parameters.
    pub fn new(num_params: usize) -> Self {
        MeasurementSet {
            num_params,
            measurements: Vec::new(),
        }
    }

    /// Number of execution parameters per point.
    pub fn num_params(&self) -> usize {
        self.num_params
    }

    /// All measurements.
    pub fn measurements(&self) -> &[Measurement] {
        &self.measurements
    }

    /// Number of measurement points.
    pub fn len(&self) -> usize {
        self.measurements.len()
    }

    /// `true` when the set holds no measurements.
    pub fn is_empty(&self) -> bool {
        self.measurements.is_empty()
    }

    /// Adds a point with repetition values.
    ///
    /// # Panics
    /// Panics if `point.len() != num_params` or `values` is empty.
    pub fn add_repetitions(&mut self, point: &[f64], values: &[f64]) {
        assert_eq!(
            point.len(),
            self.num_params,
            "point has {} coordinates, set expects {}",
            point.len(),
            self.num_params
        );
        assert!(
            !values.is_empty(),
            "a measurement needs at least one repetition"
        );
        self.measurements
            .push(Measurement::new(point.to_vec(), values.to_vec()));
    }

    /// Adds a point with a single measured value.
    pub fn add(&mut self, point: &[f64], value: f64) {
        self.add_repetitions(point, &[value]);
    }

    /// Aggregated `(point, value)` tuples.
    pub fn aggregated(&self, agg: Aggregation) -> Vec<(Vec<f64>, f64)> {
        self.measurements
            .iter()
            .map(|m| (m.point.clone(), m.aggregate(agg)))
            .collect()
    }

    /// The measurement whose point equals `point` exactly, if any.
    pub fn find(&self, point: &[f64]) -> Option<&Measurement> {
        self.measurements.iter().find(|m| m.point == point)
    }

    /// Distinct values of parameter `param`, sorted ascending.
    pub fn parameter_values(&self, param: usize) -> Vec<f64> {
        assert!(param < self.num_params, "parameter index out of range");
        let mut vals: Vec<f64> = self.measurements.iter().map(|m| m.point[param]).collect();
        vals.sort_by(|a, b| a.partial_cmp(b).expect("finite parameter values"));
        vals.dedup();
        vals
    }

    /// Extracts the *line* for parameter `param`: the largest group of points
    /// that vary only in `param` (all other coordinates fixed).
    ///
    /// Returns the points sorted by the `param` coordinate. This mirrors how
    /// Extra-P expects its input experiments: at least five values per
    /// parameter with everything else held constant. Ties between groups of
    /// equal size are broken toward the group with the *smallest* fixed
    /// coordinates, matching the paper's case-study setups where the lines
    /// run along the cheapest configurations.
    pub fn line(&self, param: usize, agg: Aggregation) -> Vec<(f64, f64)> {
        self.lines(param, agg)
            .into_iter()
            .next()
            .unwrap_or_default()
    }

    /// Extracts *all* lines for parameter `param`: every group of points
    /// sharing their other coordinates, longest first (ties toward the
    /// smallest fixed coordinates), each sorted by the `param` coordinate.
    ///
    /// A full `5^m` grid yields `5^(m-1)` parallel lines per parameter —
    /// independent evidence about the same per-parameter behaviour that the
    /// modelers average over; a cross-line layout yields one full line plus
    /// degenerate single-point groups (which callers filter by length).
    pub fn lines(&self, param: usize, agg: Aggregation) -> Vec<Vec<(f64, f64)>> {
        assert!(param < self.num_params, "parameter index out of range");
        if self.num_params == 1 {
            let mut pts: Vec<(f64, f64)> = self
                .measurements
                .iter()
                .map(|m| (m.point[0], m.aggregate(agg)))
                .collect();
            pts.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("finite coordinates"));
            return vec![pts];
        }

        // Group by the fixed coordinates (all except `param`).
        type Group = (Vec<f64>, Vec<(f64, f64)>);
        let mut groups: Vec<Group> = Vec::new();
        for m in &self.measurements {
            let fixed: Vec<f64> = m
                .point
                .iter()
                .enumerate()
                .filter(|(i, _)| *i != param)
                .map(|(_, v)| *v)
                .collect();
            let value = m.aggregate(agg);
            match groups.iter_mut().find(|(f, _)| *f == fixed) {
                Some((_, pts)) => pts.push((m.point[param], value)),
                None => groups.push((fixed, vec![(m.point[param], value)])),
            }
        }
        groups.sort_by(|a, b| {
            b.1.len()
                .cmp(&a.1.len())
                .then_with(|| a.0.partial_cmp(&b.0).unwrap_or(std::cmp::Ordering::Equal))
        });
        groups
            .into_iter()
            .map(|(_, mut line)| {
                line.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("finite coordinates"));
                line.dedup_by(|a, b| a.0 == b.0);
                line
            })
            .collect()
    }

    /// Serializes the set to pretty JSON.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("MeasurementSet serializes")
    }

    /// Deserializes a set from JSON.
    pub fn from_json(json: &str) -> Result<Self, serde_json::Error> {
        serde_json::from_str(json)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_param_set() -> MeasurementSet {
        // Lines: x1 in {2,4,8,16,32} at x2 = 10; x2 in {10,20,30,40,50} at
        // x1 = 2. Overlap at (2, 10). Value = x1 + x2.
        let mut set = MeasurementSet::new(2);
        for &x1 in &[2.0, 4.0, 8.0, 16.0, 32.0] {
            set.add(&[x1, 10.0], x1 + 10.0);
        }
        for &x2 in &[20.0, 30.0, 40.0, 50.0] {
            set.add(&[2.0, x2], 2.0 + x2);
        }
        set
    }

    #[test]
    fn add_and_aggregate() {
        let mut set = MeasurementSet::new(1);
        set.add_repetitions(&[8.0], &[10.0, 12.0, 11.0]);
        assert_eq!(set.len(), 1);
        let agg = set.aggregated(Aggregation::Median);
        assert_eq!(agg[0].1, 11.0);
        let agg = set.aggregated(Aggregation::Mean);
        assert_eq!(agg[0].1, 11.0);
        let agg = set.aggregated(Aggregation::Minimum);
        assert_eq!(agg[0].1, 10.0);
    }

    #[test]
    #[should_panic(expected = "coordinates")]
    fn wrong_arity_is_rejected() {
        let mut set = MeasurementSet::new(2);
        set.add(&[1.0], 1.0);
    }

    #[test]
    #[should_panic(expected = "repetition")]
    fn empty_repetitions_are_rejected() {
        let mut set = MeasurementSet::new(1);
        set.add_repetitions(&[1.0], &[]);
    }

    #[test]
    fn parameter_values_are_sorted_and_deduped() {
        let set = two_param_set();
        assert_eq!(set.parameter_values(0), vec![2.0, 4.0, 8.0, 16.0, 32.0]);
        assert_eq!(set.parameter_values(1), vec![10.0, 20.0, 30.0, 40.0, 50.0]);
    }

    #[test]
    fn line_extraction_finds_the_varying_group() {
        let set = two_param_set();
        let line0 = set.line(0, Aggregation::Median);
        assert_eq!(line0.len(), 5);
        assert_eq!(line0[0], (2.0, 12.0));
        assert_eq!(line0[4], (32.0, 42.0));

        let line1 = set.line(1, Aggregation::Median);
        assert_eq!(line1.len(), 5);
        assert_eq!(line1[0], (10.0, 12.0));
        assert_eq!(line1[4], (50.0, 52.0));
    }

    #[test]
    fn line_for_single_param_uses_all_points_sorted() {
        let mut set = MeasurementSet::new(1);
        set.add(&[16.0], 4.0);
        set.add(&[4.0], 2.0);
        set.add(&[64.0], 8.0);
        let line = set.line(0, Aggregation::Median);
        assert_eq!(line, vec![(4.0, 2.0), (16.0, 4.0), (64.0, 8.0)]);
    }

    #[test]
    fn find_locates_exact_points() {
        let set = two_param_set();
        assert!(set.find(&[2.0, 10.0]).is_some());
        assert!(set.find(&[3.0, 10.0]).is_none());
    }

    #[test]
    fn json_round_trip() {
        let set = two_param_set();
        let json = set.to_json();
        let back = MeasurementSet::from_json(&json).unwrap();
        assert_eq!(set, back);
    }

    #[test]
    fn lines_returns_all_parallel_groups_longest_first() {
        // 3x3 grid: three parallel 3-point lines per parameter.
        let mut set = MeasurementSet::new(2);
        for &x1 in &[1.0, 2.0, 3.0] {
            for &x2 in &[10.0, 20.0, 30.0] {
                set.add(&[x1, x2], x1 + x2);
            }
        }
        let lines = set.lines(0, Aggregation::Median);
        assert_eq!(lines.len(), 3);
        assert!(lines.iter().all(|l| l.len() == 3));
        // smallest fixed coordinate first: the x2 = 10 line
        assert_eq!(lines[0], vec![(1.0, 11.0), (2.0, 12.0), (3.0, 13.0)]);

        // Cross layout: one full line plus single-point groups.
        let mut cross = MeasurementSet::new(2);
        for &x1 in &[1.0, 2.0, 3.0] {
            cross.add(&[x1, 10.0], x1);
        }
        cross.add(&[1.0, 20.0], 1.0);
        cross.add(&[1.0, 30.0], 1.0);
        let lines = cross.lines(0, Aggregation::Median);
        assert_eq!(lines[0].len(), 3);
        assert!(lines[1..].iter().all(|l| l.len() == 1));
    }

    #[test]
    fn lines_for_single_param_is_one_sorted_line() {
        let mut set = MeasurementSet::new(1);
        set.add(&[16.0], 4.0);
        set.add(&[4.0], 2.0);
        let lines = set.lines(0, Aggregation::Median);
        assert_eq!(lines.len(), 1);
        assert_eq!(lines[0], vec![(4.0, 2.0), (16.0, 4.0)]);
    }

    #[test]
    fn full_grid_line_prefers_smallest_fixed_coordinates() {
        // A full 3x3 grid: every x2 gives a 3-point line for x1; the
        // tie-break should pick the x2 = 1 group.
        let mut set = MeasurementSet::new(2);
        for &x1 in &[1.0, 2.0, 3.0] {
            for &x2 in &[1.0, 5.0, 9.0] {
                set.add(&[x1, x2], x1 * 100.0 + x2);
            }
        }
        let line = set.line(0, Aggregation::Median);
        assert_eq!(line, vec![(1.0, 101.0), (2.0, 201.0), (3.0, 301.0)]);
    }
}
