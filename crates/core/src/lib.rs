//! The adaptive noise-resilient performance modeler — the contribution of
//! *Ritter et al., "Noise-Resilient Empirical Performance Modeling with Deep
//! Neural Networks", IPDPS 2021*.
//!
//! The adaptive modeler (Sec. IV) consists of five components, all
//! implemented here:
//!
//! 1. **Noise estimation** ([`noise`]) — the range-of-relative-deviation
//!    heuristic that estimates the level of uniform measurement noise.
//! 2. **Preprocessing** ([`preprocess`]) — converting raw measurement lines
//!    into the network's fixed 11-neuron input encoding.
//! 3. **The DNN modeler** ([`dnn`]) — a classifier over the 43 PMNF exponent
//!    pairs whose top-3 predictions seed hypotheses that are then fitted and
//!    selected exactly like Extra-P's (coefficients via linear regression,
//!    winner via cross-validated SMAPE).
//! 4. **Transfer learning** ([`dnn::DnnModeler::adapt_to_task`]) — domain
//!    adaptation: retraining the pretrained network on synthetic data
//!    mirroring the task's measurement points and noise range.
//! 5. **The adaptive switch** ([`adaptive`]) — running the regression
//!    modeler alongside the DNN below a noise threshold and switching it off
//!    above, where its tight in-sample fit hurts extrapolation.
//!
//! # Quick example
//!
//! ```no_run
//! use nrpm_core::adaptive::{AdaptiveModeler, AdaptiveOptions};
//! use nrpm_extrap::MeasurementSet;
//!
//! let mut set = MeasurementSet::new(1);
//! for &x in &[4.0, 8.0, 16.0, 32.0, 64.0] {
//!     set.add_repetitions(&[x], &[2.0 * x, 2.1 * x, 1.95 * x]);
//! }
//! let mut modeler = AdaptiveModeler::pretrained(AdaptiveOptions::default());
//! let outcome = modeler.model(&set).unwrap();
//! println!("model: {}", outcome.result.model);
//! ```

#![warn(missing_docs)]

pub mod accumulate;
pub mod adaptive;
pub mod dnn;
pub mod fingerprint;
pub mod metrics;
pub mod noise;
pub mod preprocess;
pub mod report;
pub mod sanitize;
pub mod threshold;
