//! Adaptation chaos benchmark: request latency while the background
//! adaptation engine retrains, shadow-validates, hot-swaps, and rolls back
//! under injected faults.
//!
//! Each campaign forces one adaptation cycle with a fault drawn from a
//! fixed rotation (`clean`, `kill_retrain`, `corrupt_candidate`,
//! `kill_commit`, `regress_swap`) while a client hammers the server with
//! distinct modeling requests. The harness asserts the robustness
//! invariants per campaign — no dropped requests, killed cycles leave the
//! incumbent serving, regressing swaps roll back — and reports request
//! latency during adaptation against the steady-state baseline. The
//! headline number is the during-adaptation p99 as a multiple of steady
//! p99 (acceptance: within 2x).
//!
//! ```text
//! cargo run -p nrpm-bench --release --bin adapt_bench -- \
//!     [--campaigns N] [--workers W] [--out BENCH_adapt.json]
//! ```

use nrpm_bench::cli::Args;
use nrpm_bench::report::{f2, Table};
use nrpm_core::adaptive::AdaptiveOptions;
use nrpm_core::preprocess::NUM_INPUTS;
use nrpm_extrap::{MeasurementSet, NUM_CLASSES};
use nrpm_nn::{Network, NetworkConfig};
use nrpm_serve::adapt::AdaptOptions;
use nrpm_serve::client::{is_ok, Client};
use nrpm_serve::server::{ServeOptions, Server};
use nrpm_serve::store::ModelStore;
use serde::{Serialize, Value};
use std::time::{Duration, Instant};

#[derive(Debug, Clone, Serialize)]
struct AdaptBenchReport {
    campaigns: usize,
    workers: usize,
    /// Baseline latency with the engine idle.
    steady_p50_ms: f64,
    steady_p99_ms: f64,
    /// Latency of requests issued while cycles/swaps/rollbacks were active.
    during_p50_ms: f64,
    during_p99_ms: f64,
    /// during p99 / steady p99 — the acceptance headline (target < 2.0).
    p99_ratio: f64,
    requests_total: u64,
    dropped_requests: u64,
    /// Watchdog trip-to-restore time across regress campaigns.
    rollback_p50_ms: f64,
    clean_swaps: u64,
    clean_rejects: u64,
    retrain_kills: u64,
    corrupt_rejects: u64,
    commit_kills: u64,
    regress_rollbacks: u64,
    regress_rejects: u64,
    adapt_cycles: u64,
    adapt_swaps: u64,
    adapt_rollbacks: u64,
    adapt_restarts: u64,
    adapt_rejected: u64,
    worker_restarts: u64,
    invariant_violations: Vec<String>,
}

/// A distinct kernel per salt so every request reaches the modeler and
/// feeds the adaptation engine a fresh observation.
fn bench_set(salt: u64) -> MeasurementSet {
    let mut set = MeasurementSet::new(1);
    let slope = 2.0 + 1e-4 * salt as f64;
    for &x in &[4.0f64, 8.0, 16.0, 32.0, 64.0] {
        let y = slope * x;
        set.add_repetitions(&[x], &[y, y * 1.01, y * 0.99]);
    }
    set
}

fn percentile(sorted: &[Duration], q: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let idx = ((sorted.len() as f64 - 1.0) * q).round() as usize;
    sorted[idx].as_secs_f64() * 1e3
}

fn counter(stats: &Value, key: &str) -> u64 {
    stats.get(key).and_then(Value::as_u64).unwrap_or(0)
}

fn checkpoint(stats: &Value) -> String {
    stats
        .get("checkpoint_hash")
        .and_then(Value::as_str)
        .unwrap_or("")
        .to_string()
}

/// The measuring client: every request is timed, and every failure (at the
/// transport or as a non-ok response) counts as a dropped request.
struct Driver {
    client: Client,
    salt: u64,
    dropped: u64,
    total: u64,
}

impl Driver {
    fn request(&mut self, latencies: &mut Vec<Duration>) {
        self.salt += 1;
        self.total += 1;
        let tenant = format!("tenant-{}", self.salt % 4);
        let sent = Instant::now();
        match self.client.model_as(
            bench_set(self.salt),
            Some(vec![128.0]),
            Some(30_000),
            Some(tenant),
        ) {
            Ok(response) if is_ok(&response) => latencies.push(sent.elapsed()),
            _ => self.dropped += 1,
        }
    }

    fn stats(&mut self) -> Value {
        self.client.stats().expect("stats")
    }

    fn line(&mut self, line: &str) {
        let response = self.client.roundtrip_line(line).expect("control line");
        assert!(is_ok(&response), "control line failed: {response:?}");
    }
}

/// Terminal-outcome total: swap, reject, and restart are each recorded at
/// the *end* of a cycle (unlike `adapt_cycles`, which ticks at the start).
fn outcomes(stats: &Value) -> u64 {
    counter(stats, "adapt_swaps")
        + counter(stats, "adapt_rejected")
        + counter(stats, "adapt_restarts")
}

fn main() {
    let args = Args::parse();
    let campaigns = args.get("campaigns", 100usize);
    let workers = args.get("workers", 2usize);
    let out = args.get("out", "BENCH_adapt.json".to_string());

    // Small retrain corpus: one adaptation cycle is a few ms of training,
    // sized so background retraining shares a small container's cores with
    // the serving path without starving it.
    let mut core_opts = AdaptiveOptions::default();
    core_opts.dnn.adaptation_samples_per_class = 4;
    core_opts.dnn.adaptation_epochs = 1;
    core_opts.dnn.train_threads = 1;
    let network = Network::new(&NetworkConfig::new(&[NUM_INPUTS, 16, NUM_CLASSES]), 17);
    let store = ModelStore::from_network(network, core_opts).expect("store");

    let dir = std::env::temp_dir().join(format!("nrpm-adapt-bench-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("registry dir");

    let server = Server::start(
        "127.0.0.1:0",
        store,
        ServeOptions {
            workers,
            debug_hooks: true,
            // Caching off: every request must reach a worker so the engine
            // sees live observations, and latency measures the model path.
            cache_capacity: 0,
            poll_interval: Duration::from_millis(10),
            adaptation: AdaptOptions {
                enabled: true,
                // Only forced cycles: the rotation drives the engine.
                interval: Duration::from_secs(3600),
                smape_tolerance: 100.0,
                min_observations: 1,
                watch_window: 4,
                // High enough that honest post-swap noise never trips the
                // watchdog; the regress fault inflates samples 10x past it.
                watch_tolerance: 3.0,
                dir: Some(dir.clone()),
                train_threads: 1,
                ..Default::default()
            },
            ..Default::default()
        },
    )
    .expect("bind bench server");
    let client = Client::connect(server.addr(), Duration::from_secs(60)).expect("connect");
    let mut driver = Driver {
        client,
        salt: 0,
        dropped: 0,
        total: 0,
    };

    // Steady-state baseline with the engine idle, using the identical
    // request-then-stats pattern as the campaign loop so both phases
    // measure the same wire traffic.
    let mut steady = Vec::new();
    for _ in 0..1500 {
        driver.request(&mut steady);
        let _ = driver.stats();
    }
    steady.sort();

    let kinds = [
        "clean",
        "kill_retrain",
        "corrupt_candidate",
        "kill_commit",
        "regress_swap",
    ];
    let mut during: Vec<Duration> = Vec::new();
    let mut rollbacks_ms: Vec<Duration> = Vec::new();
    let mut violations: Vec<String> = Vec::new();
    let mut counts = std::collections::BTreeMap::new();
    for key in [
        "clean_swaps",
        "clean_rejects",
        "retrain_kills",
        "corrupt_rejects",
        "commit_kills",
        "regress_rollbacks",
        "regress_rejects",
    ] {
        counts.insert(key.to_string(), 0u64);
    }
    let bump = |counts: &mut std::collections::BTreeMap<String, u64>, key: &str| {
        *counts.get_mut(key).expect("known key") += 1;
    };

    println!("adaptation chaos: {campaigns} campaigns over {:?}\n", kinds);
    for c in 0..campaigns {
        let kind = kinds[c % kinds.len()];
        let before = driver.stats();
        let hash_before = checkpoint(&before);

        // Seed the cycle with fresh observations, then queue the fault(s)
        // and force.
        for _ in 0..4 {
            driver.request(&mut during);
        }
        match kind {
            "clean" => {}
            // A mid-commit kill requires the cycle to *reach* the commit
            // point, so the statistical shadow gate is bypassed too.
            "kill_commit" => {
                driver.line("{\"cmd\":\"adapt_fault\",\"kind\":\"regress_swap\"}");
                driver.line("{\"cmd\":\"adapt_fault\",\"kind\":\"kill_commit\"}");
            }
            fault => {
                driver.line(&format!("{{\"cmd\":\"adapt_fault\",\"kind\":\"{fault}\"}}"));
            }
        }
        driver.line("{\"cmd\":\"force_adapt\"}");

        // Hammer the server until the cycle reaches a terminal outcome.
        let deadline = Instant::now() + Duration::from_secs(60);
        let stats = loop {
            driver.request(&mut during);
            let stats = driver.stats();
            if outcomes(&stats) > outcomes(&before) {
                break stats;
            }
            assert!(
                Instant::now() < deadline,
                "campaign {c} ({kind}): no terminal outcome within 60s"
            );
        };
        let swapped = counter(&stats, "adapt_swaps") > counter(&before, "adapt_swaps");
        let restarted = counter(&stats, "adapt_restarts") > counter(&before, "adapt_restarts");

        // Post-outcome invariants per fault kind.
        match kind {
            "clean" => {
                if swapped {
                    bump(&mut counts, "clean_swaps");
                    if checkpoint(&driver.stats()) == hash_before {
                        violations.push(format!("campaign {c}: clean swap kept the old hash"));
                    }
                } else {
                    bump(&mut counts, "clean_rejects");
                }
            }
            "kill_retrain" | "kill_commit" | "corrupt_candidate" => {
                if swapped {
                    violations.push(format!("campaign {c} ({kind}): faulted cycle swapped"));
                }
                if checkpoint(&driver.stats()) != hash_before {
                    violations.push(format!("campaign {c} ({kind}): incumbent hash changed"));
                }
                match kind {
                    "kill_retrain" => {
                        if restarted {
                            bump(&mut counts, "retrain_kills");
                        } else {
                            violations.push(format!("campaign {c}: kill_retrain did not restart"));
                        }
                    }
                    "kill_commit" => {
                        // The retrain's own validation gate may reject before
                        // the commit point is reached; that is a clean reject,
                        // not a kill.
                        if restarted {
                            bump(&mut counts, "commit_kills");
                        }
                    }
                    _ => bump(&mut counts, "corrupt_rejects"),
                }
            }
            "regress_swap" => {
                if !swapped {
                    bump(&mut counts, "regress_rejects");
                } else {
                    // The watchdog must trip and restore the incumbent.
                    let tripped = Instant::now();
                    let deadline = Instant::now() + Duration::from_secs(60);
                    loop {
                        driver.request(&mut during);
                        let s = driver.stats();
                        if counter(&s, "adapt_rollbacks") > counter(&before, "adapt_rollbacks") {
                            rollbacks_ms.push(tripped.elapsed());
                            bump(&mut counts, "regress_rollbacks");
                            if checkpoint(&s) != hash_before {
                                violations.push(format!(
                                    "campaign {c}: rollback did not restore the incumbent"
                                ));
                            }
                            break;
                        }
                        assert!(
                            Instant::now() < deadline,
                            "campaign {c}: regressing swap never rolled back"
                        );
                    }
                }
            }
            _ => unreachable!(),
        }
        if (c + 1) % 20 == 0 {
            println!("  {}/{campaigns} campaigns done", c + 1);
        }
    }

    let final_stats = driver.stats();
    driver.client.shutdown().expect("shutdown");
    server.join().expect("drain bench server");
    let _ = std::fs::remove_dir_all(&dir);

    during.sort();
    rollbacks_ms.sort();
    let steady_p99 = percentile(&steady, 0.99);
    let during_p99 = percentile(&during, 0.99);
    let report = AdaptBenchReport {
        campaigns,
        workers,
        steady_p50_ms: percentile(&steady, 0.50),
        steady_p99_ms: steady_p99,
        during_p50_ms: percentile(&during, 0.50),
        during_p99_ms: during_p99,
        p99_ratio: if steady_p99 > 0.0 {
            during_p99 / steady_p99
        } else {
            0.0
        },
        requests_total: driver.total,
        dropped_requests: driver.dropped,
        rollback_p50_ms: percentile(&rollbacks_ms, 0.50),
        clean_swaps: counts["clean_swaps"],
        clean_rejects: counts["clean_rejects"],
        retrain_kills: counts["retrain_kills"],
        corrupt_rejects: counts["corrupt_rejects"],
        commit_kills: counts["commit_kills"],
        regress_rollbacks: counts["regress_rollbacks"],
        regress_rejects: counts["regress_rejects"],
        adapt_cycles: counter(&final_stats, "adapt_cycles"),
        adapt_swaps: counter(&final_stats, "adapt_swaps"),
        adapt_rollbacks: counter(&final_stats, "adapt_rollbacks"),
        adapt_restarts: counter(&final_stats, "adapt_restarts"),
        adapt_rejected: counter(&final_stats, "adapt_rejected"),
        worker_restarts: counter(&final_stats, "worker_restarts"),
        invariant_violations: violations.clone(),
    };

    let mut table = Table::new(&["phase", "p50 ms", "p99 ms"]);
    table.row(vec![
        "steady".into(),
        f2(report.steady_p50_ms),
        f2(report.steady_p99_ms),
    ]);
    table.row(vec![
        "during adaptation".into(),
        f2(report.during_p50_ms),
        f2(report.during_p99_ms),
    ]);
    table.print();
    println!(
        "\np99 during adaptation = {:.2}x steady (target < 2.0x)",
        report.p99_ratio
    );
    println!(
        "requests: {} total, {} dropped; swaps {} / rollbacks {} / restarts {} / rejected {}",
        report.requests_total,
        report.dropped_requests,
        report.adapt_swaps,
        report.adapt_rollbacks,
        report.adapt_restarts,
        report.adapt_rejected
    );
    if !report.invariant_violations.is_empty() {
        for v in &report.invariant_violations {
            println!("VIOLATION: {v}");
        }
    }

    let json = serde_json::to_string_pretty(&report).expect("serialize report");
    std::fs::write(&out, json).expect("write report");
    println!("report written to {out}");

    assert_eq!(report.dropped_requests, 0, "requests were dropped");
    assert!(
        report.invariant_violations.is_empty(),
        "robustness invariants violated"
    );
}
