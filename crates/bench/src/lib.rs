//! Shared infrastructure of the experiment harness: a tiny CLI-flag parser,
//! table rendering, and the synthetic sweep engine behind Fig. 3.

#![warn(missing_docs)]

pub mod cli;
pub mod regime;
pub mod report;
pub mod sweep;

/// The noise levels of the paper's synthetic evaluation (Sec. V):
/// 2 %, 5 %, 10 %, 20 %, 50 %, 75 %, 100 %.
pub const PAPER_NOISE_LEVELS: [f64; 7] = [0.02, 0.05, 0.10, 0.20, 0.50, 0.75, 1.00];
