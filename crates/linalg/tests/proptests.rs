//! Property-based tests for the linear-algebra substrate.

use nrpm_linalg::{
    dot, gemm_i8, kernel, kernel_isa, lstsq, matmul, matmul_threaded, stats, MatmulOptions, Matrix,
    QuantizedGemmB,
};
use proptest::prelude::*;

fn small_matrix(
    rows: std::ops::Range<usize>,
    cols: std::ops::Range<usize>,
) -> impl Strategy<Value = Matrix> {
    (rows, cols).prop_flat_map(|(r, c)| {
        prop::collection::vec(-100.0..100.0f64, r * c)
            .prop_map(move |data| Matrix::from_vec(r, c, data))
    })
}

proptest! {
    #[test]
    fn matmul_is_associative_with_identity(m in small_matrix(1..6, 1..6)) {
        let left = matmul(&Matrix::identity(m.rows()), &m).unwrap();
        let right = matmul(&m, &Matrix::identity(m.cols())).unwrap();
        for ((a, b), c) in left.as_slice().iter().zip(right.as_slice()).zip(m.as_slice()) {
            prop_assert!((a - c).abs() < 1e-9);
            prop_assert!((b - c).abs() < 1e-9);
        }
    }

    #[test]
    fn matmul_distributes_over_addition(
        a in small_matrix(1..5, 1..5),
        seed in 0u64..1000,
    ) {
        // Build b, c with the same inner dimension as a's cols.
        let k = a.cols();
        let n = 3;
        let mut s = seed | 1;
        let mut gen = || {
            s ^= s << 13; s ^= s >> 7; s ^= s << 17;
            (s % 1000) as f64 / 100.0 - 5.0
        };
        let b = Matrix::from_fn(k, n, |_, _| gen());
        let c = Matrix::from_fn(k, n, |_, _| gen());
        let mut bc = b.clone();
        bc.add_assign(&c).unwrap();
        let lhs = matmul(&a, &bc).unwrap();
        let mut rhs = matmul(&a, &b).unwrap();
        rhs.add_assign(&matmul(&a, &c).unwrap()).unwrap();
        for (x, y) in lhs.as_slice().iter().zip(rhs.as_slice()) {
            prop_assert!((x - y).abs() < 1e-6, "{x} vs {y}");
        }
    }

    #[test]
    fn parallel_matmul_agrees_with_sequential(
        a in small_matrix(1..20, 1..20),
        seed in 0u64..1000,
    ) {
        let k = a.cols();
        let mut s = seed | 1;
        let b = Matrix::from_fn(k, 7, |_, _| {
            s ^= s << 13; s ^= s >> 7; s ^= s << 17;
            (s % 1000) as f64 / 100.0 - 5.0
        });
        let seq = matmul_threaded(&a, &b, MatmulOptions { threads: 1, ..Default::default() }).unwrap();
        let par = matmul_threaded(&a, &b, MatmulOptions { threads: 3, parallel_threshold: 1, ..Default::default() }).unwrap();
        for (x, y) in seq.as_slice().iter().zip(par.as_slice()) {
            prop_assert!((x - y).abs() < 1e-9);
        }
    }

    #[test]
    fn threaded_matmul_is_bitwise_identical_to_sequential(
        a in small_matrix(1..24, 1..24),
        n in 1usize..16,
        k_block in 1usize..48,
        threads in 1usize..=8,
        seed in 0u64..1000,
    ) {
        // Row-panel parallelism hands each thread disjoint output rows and
        // every row accumulates in the same k order, so the parallel product
        // must equal the sequential one bit for bit — not just within an
        // epsilon. This is what makes threaded training seed-reproducible.
        let k = a.cols();
        let mut s = seed | 1;
        let b = Matrix::from_fn(k, n, |_, _| {
            s ^= s << 13; s ^= s >> 7; s ^= s << 17;
            (s % 1000) as f64 / 100.0 - 5.0
        });
        let seq = matmul_threaded(&a, &b, MatmulOptions {
            threads: 1,
            k_block,
            ..Default::default()
        }).unwrap();
        let par = matmul_threaded(&a, &b, MatmulOptions {
            threads,
            k_block,
            parallel_threshold: 1,
            min_flops_per_thread: 1,
        }).unwrap();
        prop_assert_eq!(seq.as_slice(), par.as_slice());
    }

    #[test]
    fn micro_kernel_paths_match_reference_bitwise(
        m in 1usize..40,
        k in 1usize..300,
        n in 1usize..40,
        seed in 0u64..1000,
    ) {
        // The direct (no-pack) and packed paths, and the scalar KC-chunked
        // reference, must agree bit for bit on every ragged shape — this is
        // the invariant that makes the path heuristic and the autotuner
        // pure performance knobs.
        let mut s = seed | 1;
        let mut gen = || {
            s ^= s << 13; s ^= s >> 7; s ^= s << 17;
            (s % 1000) as f64 / 500.0 - 1.0
        };
        let a: Vec<f64> = (0..m * k).map(|_| gen()).collect();
        let b: Vec<f64> = (0..k * n).map(|_| gen()).collect();
        let direct = kernel::testing::gemm_forced(&a, &b, m, k, n, kernel::GemmPath::Direct);
        let packed = kernel::testing::gemm_forced(&a, &b, m, k, n, kernel::GemmPath::Packed);
        let reference = kernel::testing::gemm_reference(&a, &b, m, k, n, kernel_isa().uses_fma());
        prop_assert_eq!(&direct, &packed, "direct vs packed at {}x{}x{}", m, k, n);
        prop_assert_eq!(&direct, &reference, "kernel vs reference at {}x{}x{}", m, k, n);
    }

    #[test]
    fn micro_kernel_edge_shapes_match_naive(
        k in 1usize..600,
        n in 1usize..64,
        seed in 0u64..1000,
    ) {
        // 1xN row-vector products, Nx1 column outputs, and empty dims.
        let mut s = seed | 1;
        let mut gen = || {
            s ^= s << 13; s ^= s >> 7; s ^= s << 17;
            (s % 1000) as f64 / 500.0 - 1.0
        };
        for (m, k, n) in [(1usize, k, n), (n, k, 1usize), (1, k, 1), (0, k, n), (n, k, 0)] {
            let a: Vec<f64> = (0..m * k).map(|_| gen()).collect();
            let b: Vec<f64> = (0..k * n).map(|_| gen()).collect();
            for path in [kernel::GemmPath::Direct, kernel::GemmPath::Packed] {
                let got = kernel::testing::gemm_forced(&a, &b, m, k, n, path);
                prop_assert_eq!(got.len(), m * n);
                for i in 0..m {
                    for j in 0..n {
                        let mut want = 0.0;
                        for kk in 0..k {
                            want += a[i * k + kk] * b[kk * n + j];
                        }
                        prop_assert!(
                            (got[i * n + j] - want).abs() < 1e-9 * (1.0 + want.abs()),
                            "{}x{}x{} {:?}: {} vs {}", m, k, n, path, got[i * n + j], want
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn int8_gemm_matches_exact_reference(
        m in 1usize..24,
        k in 1usize..200,
        n in 1usize..48,
        seed in 0u64..1000,
    ) {
        let mut s = seed | 1;
        let mut gen = || {
            s ^= s << 13; s ^= s >> 7; s ^= s << 17;
            (s % 255) as i8
        };
        let a: Vec<i8> = (0..m * k).map(|_| gen()).collect();
        let b: Vec<i8> = (0..k * n).map(|_| gen()).collect();
        let packed = QuantizedGemmB::pack(&b, k, n);
        let mut c = vec![0i32; m * n];
        gemm_i8(&a, m, k, &packed, &mut c);
        for i in 0..m {
            for j in 0..n {
                let mut want = 0i32;
                for kk in 0..k {
                    want += a[i * k + kk] as i32 * b[kk * n + j] as i32;
                }
                prop_assert_eq!(c[i * n + j], want, "at ({}, {})", i, j);
            }
        }
    }

    #[test]
    fn transpose_preserves_dot_products(m in small_matrix(2..6, 2..6)) {
        // (A^T)_{ji} == A_{ij}
        let t = m.transpose();
        for r in 0..m.rows() {
            for c in 0..m.cols() {
                prop_assert_eq!(m[(r, c)], t[(c, r)]);
            }
        }
    }

    #[test]
    fn lstsq_recovers_exact_linear_models(
        intercept in -50.0..50.0f64,
        slope in -50.0..50.0f64,
        n in 3usize..20,
    ) {
        let a = Matrix::from_fn(n, 2, |r, c| if c == 0 { 1.0 } else { (r + 1) as f64 });
        let y: Vec<f64> = (0..n).map(|r| intercept + slope * (r + 1) as f64).collect();
        let x = lstsq(&a, &y).unwrap();
        prop_assert!((x[0] - intercept).abs() < 1e-6, "intercept {} vs {}", x[0], intercept);
        prop_assert!((x[1] - slope).abs() < 1e-6, "slope {} vs {}", x[1], slope);
    }

    #[test]
    fn lstsq_residual_is_orthogonal_to_columns(
        ys in prop::collection::vec(-100.0..100.0f64, 6),
    ) {
        // Normal-equation optimality: A^T (Ax - y) = 0.
        let a = Matrix::from_fn(6, 2, |r, c| if c == 0 { 1.0 } else { ((r + 1) * (r + 1)) as f64 });
        let x = lstsq(&a, &ys).unwrap();
        for c in 0..2 {
            let col = a.col(c);
            let resid: Vec<f64> = (0..6).map(|r| dot(a.row(r), &x) - ys[r]).collect();
            prop_assert!(dot(&col, &resid).abs() < 1e-6);
        }
    }

    #[test]
    fn median_is_within_min_max(xs in prop::collection::vec(-1e6..1e6f64, 1..50)) {
        let med = stats::median(&xs);
        let lo = stats::min(&xs);
        let hi = stats::max(&xs);
        prop_assert!(med >= lo && med <= hi);
    }

    #[test]
    fn quantiles_are_monotone(xs in prop::collection::vec(-1e3..1e3f64, 1..40)) {
        let q25 = stats::quantile(&xs, 0.25);
        let q50 = stats::quantile(&xs, 0.5);
        let q75 = stats::quantile(&xs, 0.75);
        prop_assert!(q25 <= q50 && q50 <= q75);
    }

    #[test]
    fn variance_is_translation_invariant(
        xs in prop::collection::vec(-100.0..100.0f64, 2..30),
        shift in -1e3..1e3f64,
    ) {
        let shifted: Vec<f64> = xs.iter().map(|x| x + shift).collect();
        let v0 = stats::variance(&xs);
        let v1 = stats::variance(&shifted);
        prop_assert!((v0 - v1).abs() < 1e-6 * (1.0 + v0.abs()));
    }
}
