//! Evaluates the range-of-relative-deviation noise estimator (Sec. IV-B):
//! injects known uniform noise levels into synthetic measurement sets and
//! reports the estimator's average prediction error. The paper reports an
//! average error of 4.93 %.
//!
//! ```text
//! cargo run -p nrpm-bench --release --bin noise_estimator_eval -- \
//!     [--sets N] [--points P] [--reps R] [--seed S]
//! ```

use nrpm_bench::cli::Args;
use nrpm_bench::report::{pct, Table};
use nrpm_core::noise::NoiseEstimate;
use nrpm_extrap::MeasurementSet;
use nrpm_linalg::stats;
use nrpm_synth::{generate_eval_task, EvalTaskSpec};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let args = Args::parse();
    let sets: usize = args.get("sets", 200);
    let points: usize = args.get("points", 25);
    let reps: usize = args.get("reps", 5);
    let seed: u64 = args.get("seed", 0x401);

    let levels = args.get_f64_list("noise", &[0.02, 0.05, 0.10, 0.20, 0.30, 0.50, 0.75, 1.00]);

    println!("== Noise-estimator evaluation (pooled rrd heuristic) ==\n");
    println!("{sets} synthetic sets per level, {points} points, {reps} repetitions\n");

    let mut table = Table::new(&["injected", "mean estimate", "abs error", "rel error"]);
    let mut all_rel_errors = Vec::new();

    for &level in &levels {
        let mut rng = StdRng::seed_from_u64(seed ^ (level * 1e6) as u64);
        let mut estimates = Vec::with_capacity(sets);
        for _ in 0..sets {
            // Reuse the synthetic task generator: it builds a measurement
            // grid with exactly the uniform multiplicative noise semantics
            // of the paper.
            let spec = EvalTaskSpec {
                num_params: 1,
                noise_level: level,
                repetitions: reps,
                points_per_param: points,
                num_eval_points: 1,
                family: nrpm_synth::NoiseFamily::Uniform,
            };
            let task = generate_eval_task(&spec, &mut rng);
            let set: &MeasurementSet = &task.set;
            estimates.push(NoiseEstimate::of(set).corrected_mean());
        }
        let mean_est = stats::mean(&estimates);
        let abs_err = (mean_est - level).abs();
        let rel_err = abs_err / level;
        all_rel_errors.push(rel_err);
        table.row(vec![pct(level), pct(mean_est), pct(abs_err), pct(rel_err)]);
    }

    table.print();
    println!(
        "\naverage relative prediction error: {} (paper: 4.93%)",
        pct(stats::mean(&all_rel_errors))
    );
}
