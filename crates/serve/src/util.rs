//! Small shared utilities: seeded per-stream RNG derivation and the
//! decorrelated-jitter backoff shared by the retrying client and the chaos
//! proxy (previously duplicated in both).

use rand::{rngs::StdRng, Rng, SeedableRng};
use std::time::Duration;

/// Weyl-style stream spacing constant (the 32-bit golden ratio), so
/// consecutive stream ids land on well-separated seeds.
const STREAM_MUL: u64 = 0x9e37_79b9;

/// Derives a deterministic RNG for stream `stream_id` from a base `seed`:
/// the same `(seed, stream_id)` always yields the same sequence, distinct
/// streams get decorrelated ones. Stream `0` is the base seed itself.
pub fn stream_rng(seed: u64, stream_id: u64) -> StdRng {
    StdRng::seed_from_u64(seed ^ stream_id.wrapping_mul(STREAM_MUL))
}

/// One step of decorrelated-jitter backoff (the AWS scheme): a sleep drawn
/// uniformly from `[base, previous * 3]`, clamped to `[base, cap]`. Spreads
/// retrying clients apart instead of letting them stampede in sync.
pub fn decorrelated_jitter(
    rng: &mut impl Rng,
    previous: Duration,
    base: Duration,
    cap: Duration,
) -> Duration {
    let base_ms = base.as_millis().max(1) as u64;
    let cap_ms = cap.as_millis().max(1) as u64;
    let previous_ms = previous.as_millis().min(u128::from(u64::MAX / 3)) as u64;
    let ceiling_ms = previous_ms
        .saturating_mul(3)
        .clamp(base_ms, cap_ms.max(base_ms));
    Duration::from_millis(rng.gen_range(base_ms..=ceiling_ms))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{RngCore, SeedableRng};

    #[test]
    fn same_seed_and_stream_reproduce() {
        let mut a = stream_rng(42, 3);
        let mut b = stream_rng(42, 3);
        for _ in 0..32 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn distinct_streams_decorrelate() {
        let mut a = stream_rng(42, 0);
        let mut b = stream_rng(42, 1);
        let same = (0..32).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0, "streams 0 and 1 must not track each other");
    }

    #[test]
    fn stream_zero_is_the_base_seed() {
        let mut derived = stream_rng(7, 0);
        let mut direct = StdRng::seed_from_u64(7);
        assert_eq!(derived.next_u64(), direct.next_u64());
    }

    #[test]
    fn jitter_stays_within_bounds_for_any_previous() {
        let base = Duration::from_millis(10);
        let cap = Duration::from_millis(200);
        let mut rng = stream_rng(1, 0);
        for previous in [
            Duration::ZERO,
            base,
            Duration::from_millis(50),
            Duration::from_secs(60),
            Duration::from_secs(u64::MAX / 1_000), // near the ms overflow edge
        ] {
            for _ in 0..64 {
                let sleep = decorrelated_jitter(&mut rng, previous, base, cap);
                assert!(sleep >= base, "below base: {sleep:?} (prev {previous:?})");
                assert!(sleep <= cap, "above cap: {sleep:?} (prev {previous:?})");
            }
        }
    }

    #[test]
    fn jitter_grows_from_the_previous_sleep() {
        // With previous = base the ceiling is 3*base, so draws can exceed
        // base; over many draws at least one must (otherwise there is no
        // exponential growth at all).
        let base = Duration::from_millis(10);
        let cap = Duration::from_secs(10);
        let mut rng = stream_rng(2, 0);
        let grew = (0..128).any(|_| decorrelated_jitter(&mut rng, base, base, cap) > base);
        assert!(grew, "backoff never grew past the base");
    }

    #[test]
    fn degenerate_zero_durations_are_safe() {
        let mut rng = stream_rng(3, 0);
        let sleep = decorrelated_jitter(&mut rng, Duration::ZERO, Duration::ZERO, Duration::ZERO);
        assert_eq!(sleep, Duration::from_millis(1), "floor is 1ms");
    }
}
