//! Integration tests of the neural-network substrate: multi-class
//! training end to end, validation splits, persistence mid-training.

use nrpm_linalg::Matrix;
use nrpm_nn::{Dataset, Network, NetworkConfig, OptimizerKind, TrainerOptions};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// `k` Gaussian blobs arranged on a circle in 2D.
fn ring_blobs(k: usize, per_class: usize, spread: f64, seed: u64) -> Dataset {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut rows = Vec::new();
    let mut labels = Vec::new();
    for class in 0..k {
        let angle = class as f64 / k as f64 * std::f64::consts::TAU;
        let (cx, cy) = (2.0 * angle.cos(), 2.0 * angle.sin());
        for _ in 0..per_class {
            rows.push(vec![
                cx + rng.gen_range(-spread..spread),
                cy + rng.gen_range(-spread..spread),
            ]);
            labels.push(class);
        }
    }
    let refs: Vec<&[f64]> = rows.iter().map(|r| r.as_slice()).collect();
    Dataset::new(Matrix::from_rows(&refs), labels, k).unwrap()
}

#[test]
fn five_class_ring_is_learnable() {
    let data = ring_blobs(5, 60, 0.4, 1);
    let mut net = Network::new(&NetworkConfig::new(&[2, 32, 16, 5]), 3);
    let report = net
        .train(
            &data,
            &TrainerOptions {
                epochs: 60,
                batch_size: 32,
                ..Default::default()
            },
        )
        .unwrap();
    assert!(report.final_loss() < report.epoch_losses[0] / 3.0);
    assert!(
        net.accuracy(&data).unwrap() > 0.97,
        "accuracy {}",
        net.accuracy(&data).unwrap()
    );
}

#[test]
fn validation_split_generalizes() {
    let data = ring_blobs(4, 100, 0.4, 7);
    let mut rng = StdRng::seed_from_u64(11);
    let (train, val) = data.split(0.2, &mut rng);
    let mut net = Network::new(&NetworkConfig::new(&[2, 24, 4]), 5);
    net.train(
        &train,
        &TrainerOptions {
            epochs: 40,
            batch_size: 32,
            ..Default::default()
        },
    )
    .unwrap();
    let val_acc = net.accuracy(&val).unwrap();
    assert!(val_acc > 0.9, "validation accuracy {val_acc}");
}

#[test]
fn training_can_be_resumed_after_persistence() {
    // Pretrain briefly, save, load, continue — the domain-adaptation flow.
    let data = ring_blobs(3, 60, 0.5, 13);
    let mut net = Network::new(&NetworkConfig::new(&[2, 16, 3]), 9);
    net.train(
        &data,
        &TrainerOptions {
            epochs: 5,
            batch_size: 32,
            ..Default::default()
        },
    )
    .unwrap();
    let mid_loss = net.cross_entropy(&data).unwrap();

    let json = net.to_json();
    let mut restored = Network::from_json(&json).unwrap();
    assert_eq!(restored.cross_entropy(&data).unwrap(), mid_loss);

    restored
        .train(
            &data,
            &TrainerOptions {
                epochs: 30,
                batch_size: 32,
                ..Default::default()
            },
        )
        .unwrap();
    let final_loss = restored.cross_entropy(&data).unwrap();
    assert!(
        final_loss < mid_loss,
        "continuation did not improve: {final_loss} vs {mid_loss}"
    );
}

#[test]
fn top_k_accuracy_saturates_with_k() {
    let data = ring_blobs(6, 30, 1.2, 17); // heavy overlap on purpose
    let mut net = Network::new(&NetworkConfig::new(&[2, 16, 6]), 21);
    net.train(
        &data,
        &TrainerOptions {
            epochs: 20,
            batch_size: 32,
            ..Default::default()
        },
    )
    .unwrap();
    let a1 = net.top_k_accuracy(&data, 1).unwrap();
    let a3 = net.top_k_accuracy(&data, 3).unwrap();
    let a6 = net.top_k_accuracy(&data, 6).unwrap();
    assert!(a1 <= a3 && a3 <= a6);
    assert_eq!(a6, 1.0);
}

#[test]
fn threaded_and_sequential_training_reach_similar_quality() {
    let data = ring_blobs(4, 80, 0.4, 23);
    let base = TrainerOptions {
        epochs: 25,
        batch_size: 64,
        ..Default::default()
    };
    let mut seq = Network::new(&NetworkConfig::new(&[2, 24, 4]), 31);
    let mut par = seq.clone();
    seq.train(&data, &base.clone()).unwrap();
    par.train(&data, &TrainerOptions { threads: 4, ..base })
        .unwrap();
    let a_seq = seq.accuracy(&data).unwrap();
    let a_par = par.accuracy(&data).unwrap();
    assert!((a_seq - a_par).abs() < 0.05, "{a_seq} vs {a_par}");
    assert!(a_seq > 0.9 && a_par > 0.9);
}

#[test]
fn sgd_with_momentum_trains_the_classifier_too() {
    let data = ring_blobs(3, 60, 0.4, 29);
    let mut net = Network::new(&NetworkConfig::new(&[2, 16, 3]), 37);
    net.train(
        &data,
        &TrainerOptions {
            epochs: 40,
            batch_size: 32,
            optimizer: OptimizerKind::Sgd {
                learning_rate: 0.05,
                momentum: 0.9,
            },
            ..Default::default()
        },
    )
    .unwrap();
    assert!(net.accuracy(&data).unwrap() > 0.95);
}
