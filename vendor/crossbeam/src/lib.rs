//! Offline drop-in subset of the `crossbeam` scoped-thread API.
//!
//! The workspace only uses `crossbeam::thread::scope` + `Scope::spawn`, which
//! std has provided natively since 1.63 (`std::thread::scope`). This shim
//! adapts the std API to crossbeam's signature: the spawn closure receives a
//! `&Scope` argument (so nested spawns work) and `scope` returns a
//! `thread::Result`.
//!
//! Behavioral difference: crossbeam catches child panics and returns them as
//! `Err`; std's scoped threads resume the panic on the parent after all
//! children join. Since every call site in this workspace immediately
//! `expect`s the result, both designs end in the same process-level panic.

pub mod thread {
    /// Result alias matching `crossbeam::thread::scope`'s return type.
    pub type Result<T> = std::thread::Result<T>;

    /// A scope handle passed to `scope` closures and to spawned children.
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawns a scoped thread. The closure receives a `&Scope` so it can
        /// spawn siblings, mirroring crossbeam's signature.
        pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let inner = self.inner;
            ScopedJoinHandle {
                inner: inner.spawn(move || f(&Scope { inner })),
            }
        }
    }

    /// Join handle of a scoped thread.
    pub struct ScopedJoinHandle<'scope, T> {
        inner: std::thread::ScopedJoinHandle<'scope, T>,
    }

    impl<T> ScopedJoinHandle<'_, T> {
        /// Waits for the thread to finish and returns its result.
        pub fn join(self) -> Result<T> {
            self.inner.join()
        }
    }

    /// Runs `f` with a scope in which borrowing, scoped threads can be
    /// spawned; returns once all of them have finished.
    pub fn scope<'env, F, R>(f: F) -> Result<R>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        Ok(std::thread::scope(|s| f(&Scope { inner: s })))
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn scoped_threads_borrow_and_join() {
        let mut slots = vec![0u64; 4];
        super::thread::scope(|scope| {
            for (i, slot) in slots.iter_mut().enumerate() {
                scope.spawn(move |_| {
                    *slot = i as u64 + 1;
                });
            }
        })
        .expect("workers");
        assert_eq!(slots, vec![1, 2, 3, 4]);
    }

    #[test]
    fn nested_spawn_through_the_scope_argument() {
        let result = super::thread::scope(|scope| {
            scope
                .spawn(|inner| inner.spawn(|_| 21).join().map(|v| v * 2).unwrap())
                .join()
                .unwrap()
        })
        .expect("workers");
        assert_eq!(result, 42);
    }
}
