//! Property-based tests for checkpoint persistence: a save/load round trip
//! must preserve the network exactly, and no corrupted or truncated
//! checkpoint may ever panic the loader — it fails with a descriptive error.

use nrpm_nn::{Network, NetworkConfig};
use proptest::prelude::*;
use std::path::PathBuf;

/// A strategy over small but shape-diverse network architectures.
fn architectures() -> impl Strategy<Value = (Vec<usize>, u64)> {
    (
        1usize..5,                              // input width
        prop::collection::vec(1usize..7, 0..3), // hidden widths
        1usize..6,                              // output width
        0u64..1_000_000,                        // init seed
    )
        .prop_map(|(input, hidden, output, seed)| {
            let mut sizes = vec![input];
            sizes.extend(hidden);
            sizes.push(output);
            (sizes, seed)
        })
}

/// A scratch file path unique to this test case.
fn scratch_path(tag: &str, discriminant: u64) -> PathBuf {
    let dir = std::env::temp_dir().join("nrpm_nn_persistence");
    std::fs::create_dir_all(&dir).expect("create scratch dir");
    dir.join(format!("{tag}-{}-{discriminant}.json", std::process::id()))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Save → load preserves the weights bit-for-bit (the JSON text itself
    /// round-trips, thanks to shortest-round-trip float formatting) and the
    /// forward outputs exactly.
    #[test]
    fn save_load_round_trip_is_exact(arch in architectures()) {
        let (sizes, seed) = arch;
        let net = Network::new(&NetworkConfig::new(&sizes), seed);
        let path = scratch_path("roundtrip", seed);
        net.save(&path).expect("save");
        let back = Network::load(&path).expect("load");
        std::fs::remove_file(&path).ok();

        prop_assert_eq!(&net, &back);
        // Bit-for-bit: re-serializing must reproduce the identical text.
        prop_assert_eq!(net.to_json(), back.to_json());

        // Forward outputs must agree exactly, not just approximately.
        let input: Vec<f64> = (0..sizes[0]).map(|i| (i as f64) * 0.25 - 0.5).collect();
        let a = net.predict_proba_one(&input).expect("forward");
        let b = back.predict_proba_one(&input).expect("forward");
        for (x, y) in a.iter().zip(&b) {
            prop_assert!(x.to_bits() == y.to_bits(), "forward mismatch: {x} vs {y}");
        }
    }

    /// Every strict prefix of a checkpoint fails to load with an error —
    /// never a panic, and never a silently half-loaded network.
    #[test]
    fn truncated_checkpoints_fail_cleanly(arch in architectures(), frac in 0.0..1.0f64) {
        let (sizes, seed) = arch;
        let json = Network::new(&NetworkConfig::new(&sizes), seed).to_json();
        let cut = ((json.len() as f64 * frac) as usize).min(json.len() - 1);
        let path = scratch_path("truncated", seed ^ cut as u64);
        std::fs::write(&path, &json[..cut]).expect("write truncated");
        let result = Network::load(&path);
        std::fs::remove_file(&path).ok();
        prop_assert!(result.is_err(), "truncation at {} of {} must fail", cut, json.len());
    }

    /// Corrupting a checkpoint must never panic the loader: it either fails
    /// with an error or — when the corruption happens to keep the JSON
    /// valid — yields a network that still passes structural validation.
    #[test]
    fn corrupted_checkpoints_never_panic(arch in architectures(), pos in 0.0..1.0f64, byte in 0u8..128) {
        let (sizes, seed) = arch;
        let mut json = Network::new(&NetworkConfig::new(&sizes), seed).to_json().into_bytes();
        let idx = ((json.len() as f64 * pos) as usize).min(json.len() - 1);
        json[idx] = byte;
        // Lossy recovery mirrors what a real loader sees for invalid UTF-8.
        let text = String::from_utf8_lossy(&json).into_owned();
        if let Ok(net) = Network::from_json(&text) {
            prop_assert!(net.validate().is_ok());
        }
    }
}
