//! Cross-crate property-based tests: invariants that must hold for
//! arbitrary PMNF functions, measurement layouts, and noise levels.

use nrpm::extrap::{
    exponent_set, smape, Aggregation, ExponentPair, MeasurementSet, Model, RegressionModeler,
    SingleParameterOptions, Term, TermFactor, NUM_CLASSES,
};
use nrpm::noise::NoiseEstimate;
use nrpm::preprocess::{encode_line, NUM_INPUTS};
use nrpm::sanitize::{sanitize, SanitizeOptions};
use nrpm::synth::{extend_sequence, random_sequence, SequenceKind};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// An arbitrary exponent pair from the canonical set.
fn arb_pair() -> impl Strategy<Value = ExponentPair> {
    (0..NUM_CLASSES).prop_map(|c| exponent_set().pair(c))
}

/// An arbitrary single-parameter model with positive coefficients.
fn arb_model() -> impl Strategy<Value = Model> {
    (arb_pair(), 0.001..100.0f64, 0.001..100.0f64).prop_map(|(pair, c0, c1)| {
        let terms = if pair.is_constant() {
            vec![]
        } else {
            vec![Term::new(c1, vec![TermFactor::new(0, pair)])]
        };
        Model::new(1, c0, terms)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Every PMNF model is non-decreasing on x >= 2 (positive coefficients,
    /// non-negative exponents).
    #[test]
    fn pmnf_models_are_monotone(model in arb_model(), a in 2.0..1e4f64, factor in 1.01..10.0f64) {
        let lo = model.evaluate(&[a]);
        let hi = model.evaluate(&[a * factor]);
        prop_assert!(hi >= lo - 1e-9 * lo.abs(), "{model}: f({a}) = {lo} > f({}) = {hi}", a * factor);
    }

    /// The encoder accepts any clean line produced by a model over any
    /// generated sequence, and emits exactly one value per point.
    #[test]
    fn encoder_handles_arbitrary_model_lines(
        model in arb_model(),
        kind_idx in 0usize..4,
        len in 5usize..=11,
        seed in 0u64..1000,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let xs = random_sequence(SequenceKind::ALL[kind_idx], len, &mut rng);
        let ys: Vec<f64> = xs.iter().map(|&x| model.evaluate(&[x])).collect();
        let input = encode_line(&xs, &ys).unwrap();
        prop_assert_eq!(input.len(), NUM_INPUTS);
        prop_assert_eq!(input.iter().filter(|&&v| v != 0.0).count(), len);
        prop_assert!(input.iter().all(|v| v.is_finite()));
    }

    /// The encoding is invariant under multiplicative scaling of the values
    /// (the classifier must see shapes, not magnitudes).
    #[test]
    fn encoding_is_scale_invariant(model in arb_model(), scale in 0.01..1000.0f64) {
        let xs = [4.0, 8.0, 16.0, 32.0, 64.0];
        let ys: Vec<f64> = xs.iter().map(|&x| model.evaluate(&[x])).collect();
        let scaled: Vec<f64> = ys.iter().map(|y| y * scale).collect();
        let a = encode_line(&xs, &ys).unwrap();
        let b = encode_line(&xs, &scaled).unwrap();
        for (x, y) in a.iter().zip(b.iter()) {
            prop_assert!((x - y).abs() < 1e-9);
        }
    }

    /// The noise estimator never reports noise on noise-free repetitions
    /// and always reports non-negative levels.
    #[test]
    fn noise_estimator_sane_on_clean_data(model in arb_model(), reps in 2usize..6) {
        let mut set = MeasurementSet::new(1);
        for &x in &[2.0, 4.0, 8.0, 16.0, 32.0] {
            let v = model.evaluate(&[x]);
            set.add_repetitions(&[x], &vec![v; reps]);
        }
        let est = NoiseEstimate::of(&set);
        prop_assert!(est.mean().abs() < 1e-9);
        prop_assert!(est.pooled.abs() < 1e-9);
    }

    /// Injected noise is detected: the pooled estimate grows with the
    /// injected level and never exceeds it grossly.
    #[test]
    fn noise_estimator_tracks_injected_level(level in 0.05..1.0f64, seed in 0u64..500) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut set = MeasurementSet::new(1);
        for i in 0..20 {
            let truth = 10.0 + i as f64;
            let reps: Vec<f64> = (0..5)
                .map(|_| truth * rng.gen_range(1.0 - level / 2.0..=1.0 + level / 2.0))
                .collect();
            set.add_repetitions(&[(i + 1) as f64], &reps);
        }
        let est = NoiseEstimate::of(&set).pooled;
        prop_assert!(est > 0.3 * level, "estimate {est} far below injected {level}");
        // Deviations are measured against each point's *sample* mean,
        // which wobbles; one point with a low mean and another with a high
        // mean stretch the pooled range up to
        // n/(1−n/2) + n/(1+n/2) = 2n/(1−n²/4) in the worst case.
        let bound = 2.0 * level / (1.0 - level * level / 4.0) * 1.02 + 0.01;
        prop_assert!(est <= bound, "estimate {est} above worst-case bound {bound} for {level}");
    }

    /// The regression modeler recovers the lead exponent of any clean
    /// single-parameter PMNF function whose non-constant term is visible
    /// (value spread above numerical noise).
    #[test]
    fn regression_recovers_clean_functions(model in arb_model()) {
        let xs = [4.0, 8.0, 16.0, 32.0, 64.0, 128.0];
        let ys: Vec<f64> = xs.iter().map(|&x| model.evaluate(&[x])).collect();
        // Skip functions whose term contributes less than 0.1% at the
        // largest scale — indistinguishable from a constant by any method.
        let constant_only = (ys[5] - ys[0]).abs() / ys[5] < 1e-3;
        let mut set = MeasurementSet::new(1);
        for (&x, &y) in xs.iter().zip(ys.iter()) {
            set.add(&[x], y);
        }
        let result = RegressionModeler::default().model(&set).unwrap();
        prop_assert!(result.cv_smape < 1.0, "cv {} for {model}", result.cv_smape);
        if !constant_only {
            let truth = model.lead_exponent_or_constant(0);
            let got = result.model.lead_exponent_or_constant(0);
            let d = nrpm::extrap::exponent_distance(&got, &truth);
            prop_assert!(d <= 0.5, "{model}: recovered {got}, truth {truth} (d = {d})");
        }
    }

    /// SMAPE of a model against its own predictions is zero; against
    /// scaled predictions it is positive and bounded by 200.
    #[test]
    fn smape_bounds(values in prop::collection::vec(0.1..1e6f64, 1..30), scale in 1.01..10.0f64) {
        let scaled: Vec<f64> = values.iter().map(|v| v * scale).collect();
        prop_assert_eq!(smape(&values, &values), 0.0);
        let s = smape(&values, &scaled);
        prop_assert!(s > 0.0 && s <= 200.0);
    }

    /// Extended sequences always continue strictly beyond the original.
    #[test]
    fn sequence_extension_is_strictly_increasing(
        kind_idx in 0usize..4,
        len in 5usize..=11,
        count in 1usize..=6,
        seed in 0u64..1000,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let xs = random_sequence(SequenceKind::ALL[kind_idx], len, &mut rng);
        let ext = extend_sequence(&xs, count);
        prop_assert_eq!(ext.len(), count);
        let mut prev = *xs.last().unwrap();
        for &v in &ext {
            prop_assert!(v > prev);
            prev = v;
        }
    }

    /// Median aggregation is invariant to outlier position within the
    /// repetition vector.
    #[test]
    fn median_aggregation_is_permutation_invariant(
        base in 1.0..1e4f64,
        outlier_factor in 2.0..100.0f64,
    ) {
        let a = [base, base * 1.01, base * outlier_factor];
        let b = [base * outlier_factor, base, base * 1.01];
        prop_assert_eq!(Aggregation::Median.apply(&a), Aggregation::Median.apply(&b));
    }

    /// Measurement sets survive a JSON round trip for arbitrary contents.
    #[test]
    fn measurement_set_json_round_trip(
        points in prop::collection::vec((1.0..1e5f64, prop::collection::vec(0.001..1e6f64, 1..6)), 1..20),
    ) {
        let mut set = MeasurementSet::new(1);
        for (x, reps) in &points {
            set.add_repetitions(&[*x], reps);
        }
        let back = MeasurementSet::from_json(&set.to_json()).unwrap();
        prop_assert_eq!(set, back);
    }

    /// The noise estimators never emit NaN/Inf, whatever finite repetition
    /// values they see — including zeros, negatives, and huge spreads.
    #[test]
    fn noise_estimates_are_always_finite(
        points in prop::collection::vec(
            (1.0..1e5f64, prop::collection::vec(-1e9..1e9f64, 1..6)),
            1..15,
        ),
    ) {
        let mut set = MeasurementSet::new(1);
        for (x, reps) in &points {
            set.add_repetitions(&[*x], reps);
        }
        for est in [NoiseEstimate::of(&set), NoiseEstimate::robust_of(&set)] {
            prop_assert!(est.per_point.iter().all(|v| v.is_finite()));
            prop_assert!(est.pooled.is_finite());
            if !est.is_empty() {
                prop_assert!(est.mean().is_finite());
                prop_assert!(est.median().is_finite());
            }
        }
    }

    /// Sanitization is idempotent: a second pass over sanitized output
    /// repairs nothing, for arbitrary inputs mixing clean values, zeros,
    /// negatives, spikes, and non-finite repetitions.
    #[test]
    fn sanitization_is_idempotent(
        points in prop::collection::vec(
            (
                1.0..1e5f64,
                prop::collection::vec(
                    // Mix plausible values and spikes (selector >= 5) with
                    // every corruption class the sanitizer handles.
                    (0u8..10, 0.001..1e7f64).prop_map(|(sel, v)| match sel {
                        0 => f64::NAN,
                        1 => f64::INFINITY,
                        2 => f64::NEG_INFINITY,
                        3 => 0.0,
                        4 => -v,
                        _ => v,
                    }),
                    1..8,
                ),
            ),
            1..12,
        ),
        factor in 1.0..100.0f64,
    ) {
        let mut set = MeasurementSet::new(1);
        for (x, reps) in &points {
            set.add_repetitions(&[*x], reps);
        }
        let opts = SanitizeOptions { outlier_factor: factor, ..Default::default() };
        let (once, _) = sanitize(&set, &opts);
        let (twice, second_report) = sanitize(&once, &opts);
        prop_assert_eq!(&once, &twice);
        prop_assert!(
            second_report.is_clean(),
            "second pass still repaired: {:?}",
            second_report
        );
        // Sanitized output contains only finite, positive repetitions.
        for m in once.measurements() {
            prop_assert!(!m.values.is_empty());
            prop_assert!(m.values.iter().all(|v| v.is_finite() && *v > 0.0));
        }
    }

    /// Single-parameter modeling with reduced min_points still yields
    /// finite scores for any viable clean line.
    #[test]
    fn modeling_scores_are_finite(model in arb_model(), n in 5usize..=9) {
        let mut set = MeasurementSet::new(1);
        for i in 0..n {
            let x = 2.0f64.powi(i as i32 + 1);
            set.add(&[x], model.evaluate(&[x]));
        }
        let opts = SingleParameterOptions::default();
        let result = nrpm::extrap::model_single_parameter(&set, &opts).unwrap();
        prop_assert!(result.cv_smape.is_finite());
        prop_assert!(result.fit_smape.is_finite());
    }
}
