//! Router resilience: a warm standby that mirrors the primary's
//! membership view via periodic state sync and takes over the advertised
//! address when the primary stops answering.
//!
//! The standby is a thread (conceptually: a second router host) that
//! polls `cluster_sync` every gossip interval. Each successful sync
//! replaces its mirrored view — membership, availability, the serving
//! hash, the generation counter. After `takeover_after` consecutive
//! failed syncs it declares the primary dead and promotes itself:
//!
//! 1. bind the advertised router address (the primary's listener releases
//!    it on death; `SO_REUSEADDR` covers the TIME_WAIT tail), retrying
//!    until it succeeds;
//! 2. rebuild a [`ClusterState`] from the last mirrored view — every
//!    member *adopted* as a probe-driven remote (no lease until it
//!    heartbeats the new router), healthy members staying healthy so
//!    traffic continues without a probation gap;
//! 3. run the standard supervisor and router loops against that state.
//!
//! Clients never re-configure: the advertised address simply starts
//! answering again, within roughly `takeover_after × gossip_interval`
//! plus the bind race. Network members' join agents notice their
//! heartbeats failing (or being refused with "unknown shard; rejoin") and
//! re-enroll against the promoted router automatically.

use std::net::{SocketAddr, TcpListener};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use nrpm_registry::parse_hex16;
use nrpm_serve::client::{is_ok, Client};
use serde::Value;
use serde_json;

use crate::cluster::{run_supervisor, ClusterOptions, ClusterState};
use crate::shard::{Availability, ShardRuntime};

/// The standby's mirrored copy of the primary's answer to `cluster_sync`.
#[derive(Debug, Clone)]
struct SyncView {
    generation: u64,
    serving_hash: Option<u64>,
    members: Vec<(u32, SocketAddr, Availability)>,
}

/// The standby loop: mirror until the primary goes quiet, then take over.
/// Runs on its own thread for the life of the cluster.
pub(crate) fn run_standby(
    router_addr: SocketAddr,
    opts: ClusterOptions,
    shutdown: Arc<AtomicBool>,
    promoted_handles: Arc<Mutex<Vec<JoinHandle<()>>>>,
) {
    let mut view: Option<SyncView> = None;
    let mut misses = 0u32;
    while !shutdown.load(Ordering::SeqCst) {
        match sync_once(router_addr, &opts) {
            Ok(fresh) => {
                view = Some(fresh);
                misses = 0;
            }
            Err(_) => {
                misses += 1;
                // Never promote off an empty view: before the first
                // successful sync there is nothing to serve.
                if view.is_some() && misses >= opts.takeover_after.max(1) {
                    break;
                }
            }
        }
        if sleep_interruptibly(opts.gossip_interval, &shutdown) {
            return;
        }
    }
    if shutdown.load(Ordering::SeqCst) {
        return;
    }
    let view = view.expect("takeover requires a mirrored view");
    take_over(router_addr, opts, view, shutdown, promoted_handles);
}

fn sleep_interruptibly(total: Duration, shutdown: &AtomicBool) -> bool {
    let deadline = Instant::now() + total;
    while Instant::now() < deadline {
        if shutdown.load(Ordering::SeqCst) {
            return true;
        }
        std::thread::sleep(Duration::from_millis(10).min(total));
    }
    shutdown.load(Ordering::SeqCst)
}

/// One state sync. Token-authenticated when the cluster has a join token.
fn sync_once(router_addr: SocketAddr, opts: &ClusterOptions) -> Result<SyncView, String> {
    let mut fields = vec![("cmd".into(), Value::Str("cluster_sync".into()))];
    if let Some(token) = &opts.join_token {
        fields.push(("token".into(), Value::Str(token.clone())));
    }
    let line = serde_json::to_string(&Value::Map(fields)).expect("serializing a sync cannot fail");
    let mut client = Client::connect(router_addr, opts.probe_timeout).map_err(|e| e.to_string())?;
    let reply = client.roundtrip_line(&line).map_err(|e| e.to_string())?;
    if !is_ok(&reply) {
        return Err("sync refused".into());
    }
    let members = reply
        .get("members")
        .and_then(Value::as_seq)
        .ok_or("sync reply lacks members")?
        .iter()
        .filter_map(|m| {
            let id = m.get("shard").and_then(Value::as_u64)?;
            let addr = m.get("addr").and_then(Value::as_str)?.parse().ok()?;
            let avail = adopt_availability(m.get("state").and_then(Value::as_str)?);
            Some((u32::try_from(id).ok()?, addr, avail))
        })
        .collect();
    Ok(SyncView {
        generation: reply.get("generation").and_then(Value::as_u64).unwrap_or(0),
        serving_hash: reply
            .get("serving_hash")
            .and_then(Value::as_str)
            .and_then(parse_hex16),
        members,
    })
}

/// Maps a synced availability name onto the promoted router's view.
/// Healthy stays healthy (no traffic gap); anything in-between restarts
/// as `Ejected` and re-earns traffic through this router's own probes —
/// the mirrored probation count belongs to probes this router never saw.
fn adopt_availability(name: &str) -> Availability {
    match name {
        "healthy" => Availability::Healthy,
        "draining" => Availability::Draining,
        "killed" => Availability::Killed,
        _ => Availability::Ejected,
    }
}

fn take_over(
    router_addr: SocketAddr,
    opts: ClusterOptions,
    view: SyncView,
    shutdown: Arc<AtomicBool>,
    promoted_handles: Arc<Mutex<Vec<JoinHandle<()>>>>,
) {
    // The primary's listener releases the address when its accept loop
    // exits; retry the bind until we own it.
    let listener = loop {
        if shutdown.load(Ordering::SeqCst) {
            return;
        }
        match TcpListener::bind(router_addr) {
            Ok(listener) => break listener,
            Err(_) => std::thread::sleep(Duration::from_millis(10)),
        }
    };

    let members: Vec<Arc<ShardRuntime>> = view
        .members
        .iter()
        .map(|&(id, addr, avail)| Arc::new(ShardRuntime::adopted(id, addr, avail)))
        .collect();
    let state = Arc::new(ClusterState::new(
        opts,
        router_addr,
        members,
        view.serving_hash,
        shutdown,
        "standby",
    ));
    state.generation.store(view.generation, Ordering::SeqCst);

    let supervisor = {
        let state = Arc::clone(&state);
        std::thread::Builder::new()
            .name("nrpm-standby-supervisor".into())
            .spawn(move || run_supervisor(&state))
            .expect("spawn promoted supervisor thread")
    };
    promoted_handles
        .lock()
        .unwrap_or_else(|poisoned| poisoned.into_inner())
        .push(supervisor);
    crate::router::run_router(listener, &state);
}
