//! Cache-blocked, optionally multi-threaded matrix multiplication.
//!
//! The kernel follows the classic "ikj" loop order on row-major storage so
//! the innermost loop streams through contiguous memory of both the output
//! row and the `b` row, letting LLVM auto-vectorize it. On top of that, the
//! `k` dimension is blocked to keep the active panel of `b` in L1/L2, and
//! rows of the output are distributed over crossbeam scoped threads.

use crate::{dot, LinalgError, Matrix, Result, ThreadBudget};

/// Tuning knobs for [`matmul`].
#[derive(Debug, Clone, Copy)]
pub struct MatmulOptions {
    /// Block size along the shared `k` dimension.
    pub k_block: usize,
    /// Number of worker threads. `1` means fully sequential.
    pub threads: usize,
    /// Minimum number of output elements per thread before the parallel path
    /// is taken; tiny products stay sequential to avoid spawn overhead.
    pub parallel_threshold: usize,
}

impl Default for MatmulOptions {
    fn default() -> Self {
        MatmulOptions {
            k_block: 256,
            threads: default_threads(),
            parallel_threshold: 64 * 64,
        }
    }
}

/// Default worker count for matmul: the process-wide [`ThreadBudget`].
///
/// Components that share cores with other parallel layers (serve workers,
/// the data-parallel trainer) size themselves from the same budget, so the
/// pieces compose without oversubscribing the machine.
pub fn default_threads() -> usize {
    ThreadBudget::get()
}

/// `C = A * B` with default options.
pub fn matmul(a: &Matrix, b: &Matrix) -> Result<Matrix> {
    matmul_threaded(a, b, MatmulOptions::default())
}

/// `C = A * B` with explicit tuning options.
pub fn matmul_threaded(a: &Matrix, b: &Matrix, opts: MatmulOptions) -> Result<Matrix> {
    let mut c = Matrix::zeros(a.rows(), b.cols());
    matmul_into(a, b, &mut c, opts)?;
    Ok(c)
}

/// `C = A * B`, writing into a preallocated output (contents are
/// overwritten). Reusing the output avoids reallocation in training loops.
pub fn matmul_into(a: &Matrix, b: &Matrix, c: &mut Matrix, opts: MatmulOptions) -> Result<()> {
    if a.cols() != b.rows() {
        return Err(LinalgError::ShapeMismatch {
            op: "matmul",
            lhs: a.shape(),
            rhs: b.shape(),
        });
    }
    if c.shape() != (a.rows(), b.cols()) {
        return Err(LinalgError::ShapeMismatch {
            op: "matmul (output)",
            lhs: c.shape(),
            rhs: (a.rows(), b.cols()),
        });
    }
    c.fill_zero();

    let (m, k) = a.shape();
    let n = b.cols();
    if m == 0 || n == 0 || k == 0 {
        return Ok(());
    }

    let threads = opts.threads.max(1);
    let use_parallel = threads > 1 && m * n >= opts.parallel_threshold && m > 1;

    if !use_parallel {
        matmul_panel(
            a.as_slice(),
            b.as_slice(),
            c.as_mut_slice(),
            0,
            m,
            k,
            n,
            opts.k_block,
        );
        return Ok(());
    }

    // Partition output rows into one contiguous panel per thread. Panels are
    // disjoint `&mut` slices, so no synchronization is needed.
    let rows_per_thread = m.div_ceil(threads);
    let a_data = a.as_slice();
    let b_data = b.as_slice();
    let panels: Vec<&mut [f64]> = c.as_mut_slice().chunks_mut(rows_per_thread * n).collect();

    crossbeam::thread::scope(|scope| {
        for (t, panel) in panels.into_iter().enumerate() {
            let row0 = t * rows_per_thread;
            let rows_here = panel.len() / n;
            scope.spawn(move |_| {
                matmul_panel(a_data, b_data, panel, row0, rows_here, k, n, opts.k_block);
            });
        }
    })
    .expect("matmul worker panicked");

    Ok(())
}

/// Computes `rows_here` rows of the product, starting at global row `row0`,
/// into `c_panel` (row-major, `rows_here * n` long).
#[allow(clippy::too_many_arguments)]
fn matmul_panel(
    a: &[f64],
    b: &[f64],
    c_panel: &mut [f64],
    row0: usize,
    rows_here: usize,
    k: usize,
    n: usize,
    k_block: usize,
) {
    let k_block = k_block.max(1);
    for kb in (0..k).step_by(k_block) {
        let k_end = (kb + k_block).min(k);
        for r in 0..rows_here {
            let a_row = &a[(row0 + r) * k..(row0 + r + 1) * k];
            let c_row = &mut c_panel[r * n..(r + 1) * n];
            for kk in kb..k_end {
                let aik = a_row[kk];
                if aik == 0.0 {
                    continue;
                }
                let b_row = &b[kk * n..(kk + 1) * n];
                // Innermost loop: contiguous stream over c_row and b_row.
                for (cv, &bv) in c_row.iter_mut().zip(b_row.iter()) {
                    *cv += aik * bv;
                }
            }
        }
    }
}

/// `C = Aᵀ * B`, writing into a preallocated output, without materializing
/// the transpose of `A`.
///
/// `A` is `k x m`, `B` is `k x n`, and `C` must be `m x n`. The kernel
/// streams rows of `A` and `B` together (`C[r] += A[i][r] * B[i]` for each
/// shared row `i`), so all three matrices are accessed contiguously. This is
/// the backward-pass shape `dW = Xᵀ · dZ`: the training loop calls it every
/// step, and skipping the explicit `X.transpose()` allocation is the point.
///
/// Each output element accumulates over `i` in ascending order regardless of
/// how output rows are partitioned across threads, so results are bitwise
/// identical at any thread count.
pub fn matmul_at_into(a: &Matrix, b: &Matrix, c: &mut Matrix, opts: MatmulOptions) -> Result<()> {
    if a.rows() != b.rows() {
        return Err(LinalgError::ShapeMismatch {
            op: "matmul_at",
            lhs: a.shape(),
            rhs: b.shape(),
        });
    }
    if c.shape() != (a.cols(), b.cols()) {
        return Err(LinalgError::ShapeMismatch {
            op: "matmul_at (output)",
            lhs: c.shape(),
            rhs: (a.cols(), b.cols()),
        });
    }
    c.fill_zero();

    let k = a.rows();
    let m = a.cols();
    let n = b.cols();
    if m == 0 || n == 0 || k == 0 {
        return Ok(());
    }

    let threads = opts.threads.max(1);
    let use_parallel = threads > 1 && m * n >= opts.parallel_threshold && m > 1;

    if !use_parallel {
        matmul_at_panel(a.as_slice(), b.as_slice(), c.as_mut_slice(), 0, m, k, m, n);
        return Ok(());
    }

    let rows_per_thread = m.div_ceil(threads);
    let a_data = a.as_slice();
    let b_data = b.as_slice();
    let panels: Vec<&mut [f64]> = c.as_mut_slice().chunks_mut(rows_per_thread * n).collect();

    crossbeam::thread::scope(|scope| {
        for (t, panel) in panels.into_iter().enumerate() {
            let row0 = t * rows_per_thread;
            let rows_here = panel.len() / n;
            scope.spawn(move |_| {
                matmul_at_panel(a_data, b_data, panel, row0, rows_here, k, m, n);
            });
        }
    })
    .expect("matmul_at worker panicked");

    Ok(())
}

/// Computes `rows_here` rows of `C = Aᵀ B` (output rows = columns of `A`),
/// starting at output row `row0`, into `c_panel`.
#[allow(clippy::too_many_arguments)]
fn matmul_at_panel(
    a: &[f64],
    b: &[f64],
    c_panel: &mut [f64],
    row0: usize,
    rows_here: usize,
    k: usize,
    m: usize,
    n: usize,
) {
    for i in 0..k {
        let a_row = &a[i * m..(i + 1) * m];
        let b_row = &b[i * n..(i + 1) * n];
        for r in 0..rows_here {
            let air = a_row[row0 + r];
            if air == 0.0 {
                continue;
            }
            let c_row = &mut c_panel[r * n..(r + 1) * n];
            for (cv, &bv) in c_row.iter_mut().zip(b_row.iter()) {
                *cv += air * bv;
            }
        }
    }
}

/// Matrix-vector product `y = A * x`.
pub fn matvec(a: &Matrix, x: &[f64]) -> Result<Vec<f64>> {
    if a.cols() != x.len() {
        return Err(LinalgError::ShapeMismatch {
            op: "matvec",
            lhs: a.shape(),
            rhs: (x.len(), 1),
        });
    }
    Ok((0..a.rows()).map(|r| dot(a.row(r), x)).collect())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn naive_matmul(a: &Matrix, b: &Matrix) -> Matrix {
        let mut c = Matrix::zeros(a.rows(), b.cols());
        for i in 0..a.rows() {
            for j in 0..b.cols() {
                let mut s = 0.0;
                for kk in 0..a.cols() {
                    s += a[(i, kk)] * b[(kk, j)];
                }
                c[(i, j)] = s;
            }
        }
        c
    }

    fn pseudo_random_matrix(rows: usize, cols: usize, seed: u64) -> Matrix {
        // xorshift so the test has no RNG dependency
        let mut state = seed | 1;
        Matrix::from_fn(rows, cols, |_, _| {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state % 1000) as f64 / 500.0 - 1.0
        })
    }

    #[test]
    fn identity_is_neutral() {
        let a = pseudo_random_matrix(5, 5, 42);
        let i = Matrix::identity(5);
        assert_eq!(matmul(&a, &i).unwrap(), a);
        assert_eq!(matmul(&i, &a).unwrap(), a);
    }

    #[test]
    fn matches_naive_for_odd_shapes() {
        for &(m, k, n) in &[(1, 1, 1), (3, 7, 2), (17, 5, 13), (8, 8, 8), (2, 100, 3)] {
            let a = pseudo_random_matrix(m, k, 7);
            let b = pseudo_random_matrix(k, n, 11);
            let expected = naive_matmul(&a, &b);
            let got = matmul(&a, &b).unwrap();
            for (x, y) in got.as_slice().iter().zip(expected.as_slice()) {
                assert!((x - y).abs() < 1e-9, "mismatch {x} vs {y}");
            }
        }
    }

    #[test]
    fn parallel_path_matches_sequential() {
        let a = pseudo_random_matrix(97, 64, 3);
        let b = pseudo_random_matrix(64, 83, 5);
        let seq = matmul_threaded(
            &a,
            &b,
            MatmulOptions {
                threads: 1,
                ..Default::default()
            },
        )
        .unwrap();
        let par = matmul_threaded(
            &a,
            &b,
            MatmulOptions {
                threads: 4,
                parallel_threshold: 1,
                ..Default::default()
            },
        )
        .unwrap();
        for (x, y) in seq.as_slice().iter().zip(par.as_slice()) {
            assert!((x - y).abs() < 1e-9);
        }
    }

    #[test]
    fn small_k_block_still_correct() {
        let a = pseudo_random_matrix(9, 31, 13);
        let b = pseudo_random_matrix(31, 6, 17);
        let expected = naive_matmul(&a, &b);
        let got = matmul_threaded(
            &a,
            &b,
            MatmulOptions {
                k_block: 4,
                threads: 1,
                ..Default::default()
            },
        )
        .unwrap();
        for (x, y) in got.as_slice().iter().zip(expected.as_slice()) {
            assert!((x - y).abs() < 1e-9);
        }
    }

    #[test]
    fn shape_mismatch_is_an_error() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(4, 2);
        assert!(matches!(
            matmul(&a, &b),
            Err(LinalgError::ShapeMismatch { op: "matmul", .. })
        ));
    }

    #[test]
    fn output_shape_is_validated() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(3, 2);
        let mut c = Matrix::zeros(2, 3);
        assert!(matmul_into(&a, &b, &mut c, MatmulOptions::default()).is_err());
    }

    #[test]
    fn empty_dimensions_yield_empty_products() {
        let a = Matrix::zeros(0, 3);
        let b = Matrix::zeros(3, 2);
        let c = matmul(&a, &b).unwrap();
        assert_eq!(c.shape(), (0, 2));

        let a = Matrix::zeros(2, 0);
        let b = Matrix::zeros(0, 2);
        let c = matmul(&a, &b).unwrap();
        assert_eq!(c.shape(), (2, 2));
        assert!(c.as_slice().iter().all(|&v| v == 0.0));
    }

    #[test]
    fn matvec_matches_matmul_with_column() {
        let a = pseudo_random_matrix(6, 4, 23);
        let x = vec![1.0, -2.0, 0.5, 3.0];
        let y = matvec(&a, &x).unwrap();
        let via_matmul = matmul(&a, &Matrix::column_vector(&x)).unwrap();
        for (i, v) in y.iter().enumerate() {
            assert!((v - via_matmul[(i, 0)]).abs() < 1e-12);
        }
        assert!(matvec(&a, &[1.0]).is_err());
    }

    #[test]
    fn matmul_at_matches_explicit_transpose() {
        for &(k, m, n) in &[(1, 1, 1), (7, 3, 2), (5, 17, 13), (64, 32, 43), (100, 2, 3)] {
            let a = pseudo_random_matrix(k, m, 29);
            let b = pseudo_random_matrix(k, n, 37);
            let expected = matmul(&a.transpose(), &b).unwrap();
            let mut c = Matrix::zeros(m, n);
            matmul_at_into(
                &a,
                &b,
                &mut c,
                MatmulOptions {
                    threads: 1,
                    ..Default::default()
                },
            )
            .unwrap();
            for (x, y) in c.as_slice().iter().zip(expected.as_slice()) {
                assert!((x - y).abs() < 1e-9, "mismatch {x} vs {y}");
            }
        }
    }

    #[test]
    fn matmul_at_parallel_is_bitwise_equal_to_sequential() {
        let a = pseudo_random_matrix(53, 96, 41);
        let b = pseudo_random_matrix(53, 71, 43);
        let mut seq = Matrix::zeros(96, 71);
        matmul_at_into(
            &a,
            &b,
            &mut seq,
            MatmulOptions {
                threads: 1,
                ..Default::default()
            },
        )
        .unwrap();
        for threads in 2..=8 {
            let mut par = Matrix::zeros(96, 71);
            matmul_at_into(
                &a,
                &b,
                &mut par,
                MatmulOptions {
                    threads,
                    parallel_threshold: 1,
                    ..Default::default()
                },
            )
            .unwrap();
            assert_eq!(seq, par, "threads = {threads}");
        }
    }

    #[test]
    fn matmul_at_validates_shapes() {
        let a = Matrix::zeros(4, 3);
        let b = Matrix::zeros(5, 2);
        let mut c = Matrix::zeros(3, 2);
        assert!(matmul_at_into(&a, &b, &mut c, MatmulOptions::default()).is_err());
        let b = Matrix::zeros(4, 2);
        let mut wrong = Matrix::zeros(2, 2);
        assert!(matmul_at_into(&a, &b, &mut wrong, MatmulOptions::default()).is_err());
        assert!(matmul_at_into(&a, &b, &mut c, MatmulOptions::default()).is_ok());
    }

    #[test]
    fn matmul_into_reuses_buffer_and_overwrites() {
        let a = Matrix::identity(3);
        let b = pseudo_random_matrix(3, 3, 31);
        let mut c = Matrix::filled(3, 3, 99.0);
        matmul_into(&a, &b, &mut c, MatmulOptions::default()).unwrap();
        assert_eq!(c, b);
    }
}
