//! Performance models in PMNF form, their evaluation and comparison.

use crate::{ExponentPair, Fraction};
use serde::{Deserialize, Serialize};
use std::fmt;

/// One factor `x_l^{i} · log2^{j}(x_l)` of a PMNF term, bound to a specific
/// parameter index.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TermFactor {
    /// Index of the parameter this factor applies to.
    pub param: usize,
    /// The `(i, j)` exponents.
    pub exponents: ExponentPair,
}

impl TermFactor {
    /// Creates a factor for parameter `param` with exponents `exponents`.
    pub fn new(param: usize, exponents: ExponentPair) -> Self {
        TermFactor { param, exponents }
    }

    /// Evaluates the factor at a measurement point.
    pub fn evaluate(&self, point: &[f64]) -> f64 {
        self.exponents.evaluate(point[self.param])
    }
}

/// One PMNF term: a coefficient times a product of per-parameter factors.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Term {
    /// The coefficient `c_k`.
    pub coefficient: f64,
    /// The factors; at most one per parameter (the paper's restriction).
    pub factors: Vec<TermFactor>,
}

impl Term {
    /// Creates a term.
    pub fn new(coefficient: f64, factors: Vec<TermFactor>) -> Self {
        Term {
            coefficient,
            factors,
        }
    }

    /// Evaluates `c_k · Π factors` at a point.
    pub fn evaluate(&self, point: &[f64]) -> f64 {
        self.coefficient
            * self
                .factors
                .iter()
                .map(|f| f.evaluate(point))
                .product::<f64>()
    }

    /// The exponents this term applies to parameter `param`, if any.
    pub fn exponents_for(&self, param: usize) -> Option<ExponentPair> {
        self.factors
            .iter()
            .find(|f| f.param == param)
            .map(|f| f.exponents)
    }

    /// `true` when the term has no non-constant factor.
    pub fn is_constant(&self) -> bool {
        self.factors.iter().all(|f| f.exponents.is_constant())
    }
}

/// A full performance model `f(x) = c_0 + Σ_k term_k`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Model {
    /// Number of parameters the model covers.
    pub num_params: usize,
    /// The constant term `c_0`.
    pub constant: f64,
    /// The non-constant terms.
    pub terms: Vec<Term>,
}

impl Model {
    /// Creates a model from its parts.
    pub fn new(num_params: usize, constant: f64, terms: Vec<Term>) -> Self {
        Model {
            num_params,
            constant,
            terms,
        }
    }

    /// A purely constant model.
    pub fn constant_model(num_params: usize, constant: f64) -> Self {
        Model {
            num_params,
            constant,
            terms: Vec::new(),
        }
    }

    /// Evaluates the model at a measurement point.
    ///
    /// # Panics
    /// Panics (in debug builds) if `point.len() != num_params`.
    pub fn evaluate(&self, point: &[f64]) -> f64 {
        debug_assert_eq!(point.len(), self.num_params, "point arity mismatch");
        self.constant + self.terms.iter().map(|t| t.evaluate(point)).sum::<f64>()
    }

    /// The *lead exponent* of parameter `param`: the exponents of the factor
    /// that dominates the model's growth in that parameter as it tends to
    /// infinity. Terms with larger coefficient do not matter asymptotically,
    /// only the growth class does; among the model's factors for `param` the
    /// fastest-growing wins.
    ///
    /// Returns `None` if no term involves `param` (equivalent to the
    /// constant pair for distance purposes; callers can substitute
    /// [`ExponentPair::CONSTANT`]).
    pub fn lead_exponent(&self, param: usize) -> Option<ExponentPair> {
        self.terms
            .iter()
            .filter_map(|t| t.exponents_for(param))
            .max_by(|a, b| a.growth_cmp(b))
    }

    /// Lead exponent with the constant pair as default.
    pub fn lead_exponent_or_constant(&self, param: usize) -> ExponentPair {
        self.lead_exponent(param).unwrap_or(ExponentPair::CONSTANT)
    }

    /// `true` when the model is constant in every parameter.
    pub fn is_constant(&self) -> bool {
        self.terms.iter().all(Term::is_constant)
    }

    /// The model's asymptotic growth class in O-notation, built from the
    /// lead exponent of every parameter, e.g.
    /// `O(x1^(1/3) * x2 * x3^(4/5))` for the Kripke sweep solver or
    /// `O(1)` for a constant model.
    pub fn asymptotic_string(&self) -> String {
        let mut factors = Vec::new();
        for l in 0..self.num_params {
            let lead = self.lead_exponent_or_constant(l);
            if lead.is_constant() {
                continue;
            }
            let mut s = String::new();
            if !lead.poly.is_zero() {
                if lead.poly == Fraction::ONE {
                    s.push_str(&format!("x{}", l + 1));
                } else {
                    s.push_str(&format!("x{}^({})", l + 1, lead.poly));
                }
            }
            if lead.log > 0 {
                if !s.is_empty() {
                    s.push_str(" * ");
                }
                if lead.log == 1 {
                    s.push_str(&format!("log(x{})", l + 1));
                } else {
                    s.push_str(&format!("log^{}(x{})", lead.log, l + 1));
                }
            }
            factors.push(s);
        }
        if factors.is_empty() {
            "O(1)".to_string()
        } else {
            format!("O({})", factors.join(" * "))
        }
    }

    /// The maximum per-parameter lead-exponent distance to another model —
    /// the metric behind the paper's accuracy buckets, applied between two
    /// fitted models (e.g. a fitted model vs. a theoretical expectation).
    pub fn lead_distance(&self, other: &Model) -> f64 {
        assert_eq!(self.num_params, other.num_params, "parameter counts differ");
        (0..self.num_params)
            .map(|l| {
                exponent_distance(
                    &self.lead_exponent_or_constant(l),
                    &other.lead_exponent_or_constant(l),
                )
            })
            .fold(0.0, f64::max)
    }
}

impl fmt::Display for Model {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.4}", self.constant)?;
        for t in &self.terms {
            if t.coefficient < 0.0 {
                write!(f, " - {:.4}", -t.coefficient)?;
            } else {
                write!(f, " + {:.4}", t.coefficient)?;
            }
            for factor in &t.factors {
                let p = factor.param + 1;
                let e = &factor.exponents;
                if e.is_constant() {
                    continue;
                }
                if !e.poly.is_zero() {
                    if e.poly == Fraction::ONE {
                        write!(f, " * x{p}")?;
                    } else {
                        write!(f, " * x{p}^({})", e.poly)?;
                    }
                }
                if e.log > 0 {
                    if e.log == 1 {
                        write!(f, " * log2(x{p})")?;
                    } else {
                        write!(f, " * log2^{}(x{p})", e.log)?;
                    }
                }
            }
        }
        Ok(())
    }
}

/// Weight of one unit of log exponent relative to one unit of polynomial
/// exponent in the lead-exponent distance (see DESIGN.md: a log factor
/// changes the growth class far less than a polynomial factor).
pub const LOG_EXPONENT_WEIGHT: f64 = 0.25;

/// Weighted distance between two exponent pairs:
/// `|i₁ − i₂| + 0.25 · |j₁ − j₂|`.
///
/// Used for snapping arbitrary exponents into the canonical set and for
/// complexity tie-breaking. The paper's accuracy buckets use
/// [`lead_order_distance`] instead.
pub fn exponent_distance(a: &ExponentPair, b: &ExponentPair) -> f64 {
    a.poly.abs_diff(&b.poly) + LOG_EXPONENT_WEIGHT * (a.log as f64 - b.log as f64).abs()
}

/// The paper's lead-exponent distance: the absolute difference of the
/// *polynomial* exponents `|i₁ − i₂|`.
///
/// "The exponents with the biggest overall impact on performance" (Sec. V)
/// are the polynomial orders; logarithmic factors change the growth class
/// far less than any bucket width. Calibration supports this reading: with
/// this metric the regression baseline reproduces the paper's ≥ 95 %
/// low-noise accuracy, while weighting logs pushes it far below anything
/// the paper reports (see DESIGN.md).
pub fn lead_order_distance(a: &ExponentPair, b: &ExponentPair) -> f64 {
    a.poly.abs_diff(&b.poly)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ExponentPair;

    fn pair(n: i32, d: i32, j: u8) -> ExponentPair {
        ExponentPair::from_parts(n, d, j)
    }

    /// The paper's Kripke SweepSolver model:
    /// `8.51 + 0.11 * x1^{1/3} * x2 * x3^{4/5}`.
    fn kripke_model() -> Model {
        Model::new(
            3,
            8.51,
            vec![Term::new(
                0.11,
                vec![
                    TermFactor::new(0, pair(1, 3, 0)),
                    TermFactor::new(1, pair(1, 1, 0)),
                    TermFactor::new(2, pair(4, 5, 0)),
                ],
            )],
        )
    }

    #[test]
    fn evaluate_matches_hand_computation() {
        let m = kripke_model();
        let point = [8.0, 2.0, 32.0];
        let expected = 8.51 + 0.11 * 8.0_f64.powf(1.0 / 3.0) * 2.0 * 32.0_f64.powf(0.8);
        assert!((m.evaluate(&point) - expected).abs() < 1e-9);
    }

    #[test]
    fn constant_model_evaluates_to_constant() {
        let m = Model::constant_model(2, 42.0);
        assert_eq!(m.evaluate(&[1.0, 100.0]), 42.0);
        assert!(m.is_constant());
        assert_eq!(m.lead_exponent(0), None);
        assert_eq!(m.lead_exponent_or_constant(0), ExponentPair::CONSTANT);
    }

    #[test]
    fn lead_exponent_picks_fastest_growth() {
        // f = 1 + 2*x^1 + 3*x^{1/2}*log^2(x): lead for param 0 is x^1.
        let m = Model::new(
            1,
            1.0,
            vec![
                Term::new(2.0, vec![TermFactor::new(0, pair(1, 1, 0))]),
                Term::new(3.0, vec![TermFactor::new(0, pair(1, 2, 2))]),
            ],
        );
        assert_eq!(m.lead_exponent(0), Some(pair(1, 1, 0)));
    }

    #[test]
    fn lead_exponent_per_parameter() {
        let m = kripke_model();
        assert_eq!(m.lead_exponent(0), Some(pair(1, 3, 0)));
        assert_eq!(m.lead_exponent(1), Some(pair(1, 1, 0)));
        assert_eq!(m.lead_exponent(2), Some(pair(4, 5, 0)));
    }

    #[test]
    fn exponent_distance_weights_logs_less() {
        assert_eq!(exponent_distance(&pair(1, 1, 0), &pair(1, 1, 0)), 0.0);
        assert_eq!(exponent_distance(&pair(1, 1, 0), &pair(1, 1, 1)), 0.25);
        assert_eq!(exponent_distance(&pair(1, 2, 0), &pair(1, 1, 0)), 0.5);
        assert!(
            (exponent_distance(&pair(1, 3, 0), &pair(1, 4, 1)) - (1.0 / 12.0 + 0.25)).abs() < 1e-12
        );
    }

    #[test]
    fn display_renders_paper_style_formula() {
        let m = kripke_model();
        let s = m.to_string();
        assert!(s.starts_with("8.5100 + 0.1100"));
        assert!(s.contains("x1^(1/3)"));
        assert!(s.contains("* x2"));
        assert!(s.contains("x3^(4/5)"));

        let neg = Model::new(
            1,
            -2216.41,
            vec![Term::new(325.71, vec![TermFactor::new(0, pair(0, 1, 1))])],
        );
        let s = neg.to_string();
        assert!(s.contains("log2(x1)"), "{s}");
    }

    #[test]
    fn serde_round_trip() {
        let m = kripke_model();
        let json = serde_json::to_string(&m).unwrap();
        let back: Model = serde_json::from_str(&json).unwrap();
        assert_eq!(m, back);
    }

    #[test]
    fn asymptotic_string_formats_growth_classes() {
        assert_eq!(
            kripke_model().asymptotic_string(),
            "O(x1^(1/3) * x2 * x3^(4/5))"
        );
        assert_eq!(Model::constant_model(2, 5.0).asymptotic_string(), "O(1)");
        let nlogn = Model::new(
            1,
            0.0,
            vec![Term::new(1.0, vec![TermFactor::new(0, pair(1, 1, 1))])],
        );
        assert_eq!(nlogn.asymptotic_string(), "O(x1 * log(x1))");
        let log2 = Model::new(
            1,
            0.0,
            vec![Term::new(1.0, vec![TermFactor::new(0, pair(0, 1, 2))])],
        );
        assert_eq!(log2.asymptotic_string(), "O(log^2(x1))");
    }

    #[test]
    fn lead_distance_between_models() {
        let a = kripke_model();
        assert_eq!(a.lead_distance(&a), 0.0);
        let mut b = a.clone();
        // Perturb x3's exponent from 4/5 to 1.
        b.terms[0].factors[2].exponents = pair(1, 1, 0);
        assert!((a.lead_distance(&b) - 0.2).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "parameter counts differ")]
    fn lead_distance_requires_matching_arity() {
        let _ = kripke_model().lead_distance(&Model::constant_model(1, 0.0));
    }

    #[test]
    fn term_constant_detection() {
        let t = Term::new(5.0, vec![TermFactor::new(0, ExponentPair::CONSTANT)]);
        assert!(t.is_constant());
        let t = Term::new(5.0, vec![TermFactor::new(0, pair(1, 1, 0))]);
        assert!(!t.is_constant());
    }
}
