//! A crash-safe, append-only journal of `fingerprint → value` records.
//!
//! ## On-disk format
//!
//! ```text
//! [8-byte magic "NRPMJRN1"]
//! [record]*
//!
//! record := [u32 payload_len LE] [u64 fnv1a64(payload) LE] [payload]
//! payload := JSON `[key, value]`
//! ```
//!
//! The payload is JSON so journals are inspectable with standard tools
//! (`tail -c +9 cache.journal | …`), while the binary frame gives exact
//! lengths and a checksum without trusting the payload's own syntax.
//!
//! ## Crash-recovery contract
//!
//! Appends are buffered-write + flush; a crash (or `kill -9`) can leave a
//! *torn tail*: a final record whose frame or payload is incomplete. On
//! [`Journal::open`] the file is scanned front to back and the journal is
//! truncated at the first record that fails validation — every record
//! before it is returned intact, everything from it on is dropped. Framing
//! is length-prefixed, so nothing after a bad record can be trusted;
//! truncation (not skipping) is the only safe repair. The repair itself is
//! an `ftruncate`, so a crash *during recovery* at worst leaves the same
//! torn tail to be found again.
//!
//! Compaction rewrites the live set into a temp file in the same directory
//! and atomically renames it over the journal, so readers never observe a
//! partially compacted file.

use std::fs::{File, OpenOptions};
use std::io::{BufWriter, Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

use nrpm_core::fingerprint::bytes_hash;
use serde::{Deserialize, Serialize};

/// File magic: identifies an nrpm journal, version 1.
pub const MAGIC: &[u8; 8] = b"NRPMJRN1";

/// Frame overhead per record: 4-byte length + 8-byte checksum.
const FRAME_BYTES: usize = 12;

/// Upper bound on a single record's payload; a length prefix beyond this is
/// treated as corruption rather than an allocation request.
const MAX_PAYLOAD_BYTES: u32 = 64 * 1024 * 1024;

/// Why [`Journal`] operations fail.
#[derive(Debug)]
pub enum JournalError {
    /// Underlying filesystem failure.
    Io(std::io::Error),
    /// The file exists but does not start with the journal magic — refusing
    /// to append to (or truncate!) something that is not a journal.
    NotAJournal(PathBuf),
    /// A value failed to serialize or deserialize.
    Codec(String),
}

impl std::fmt::Display for JournalError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            JournalError::Io(e) => write!(f, "journal I/O error: {e}"),
            JournalError::NotAJournal(p) => {
                write!(f, "{} is not an nrpm journal (bad magic)", p.display())
            }
            JournalError::Codec(msg) => write!(f, "journal codec error: {msg}"),
        }
    }
}

impl std::error::Error for JournalError {}

impl From<std::io::Error> for JournalError {
    fn from(e: std::io::Error) -> Self {
        JournalError::Io(e)
    }
}

/// What [`Journal::open`] found and did while replaying an existing file.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RecoveryReport {
    /// Records replayed intact.
    pub records: usize,
    /// Bytes dropped from a torn or corrupt tail (0 for a clean file).
    pub truncated_bytes: u64,
    /// Whether a repair truncation was performed.
    pub repaired: bool,
}

/// Scan outcome of one record frame.
enum Frame {
    Good { payload_end: u64, payload: Vec<u8> },
    Bad,
    End,
}

fn scan_frame(bytes: &[u8], offset: usize) -> Frame {
    let remaining = &bytes[offset..];
    if remaining.is_empty() {
        return Frame::End;
    }
    if remaining.len() < FRAME_BYTES {
        return Frame::Bad; // torn frame header
    }
    let len = u32::from_le_bytes(remaining[0..4].try_into().unwrap());
    if len > MAX_PAYLOAD_BYTES {
        return Frame::Bad; // implausible length ⇒ corrupt frame
    }
    let checksum = u64::from_le_bytes(remaining[4..12].try_into().unwrap());
    let len = len as usize;
    if remaining.len() < FRAME_BYTES + len {
        return Frame::Bad; // torn payload
    }
    let payload = &remaining[FRAME_BYTES..FRAME_BYTES + len];
    if bytes_hash(payload) != checksum {
        return Frame::Bad; // bit rot or interleaved torn write
    }
    Frame::Good {
        payload_end: (offset + FRAME_BYTES + len) as u64,
        payload: payload.to_vec(),
    }
}

/// An append-only journal of `(u64, V)` records. See the [module
/// docs](self) for the format and crash-recovery contract.
#[derive(Debug)]
pub struct Journal<V> {
    path: PathBuf,
    writer: BufWriter<File>,
    records: usize,
    _marker: std::marker::PhantomData<V>,
}

impl<V: Serialize + Deserialize> Journal<V> {
    /// Opens (creating if absent) the journal at `path`, replaying every
    /// intact record and repairing a torn tail in place.
    #[allow(clippy::type_complexity)]
    pub fn open(
        path: impl Into<PathBuf>,
    ) -> Result<(Self, Vec<(u64, V)>, RecoveryReport), JournalError> {
        let path = path.into();
        if let Some(dir) = path.parent() {
            if !dir.as_os_str().is_empty() {
                std::fs::create_dir_all(dir)?;
            }
        }
        let mut file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(false)
            .open(&path)?;

        let mut bytes = Vec::new();
        file.read_to_end(&mut bytes)?;

        if bytes.is_empty() {
            file.write_all(MAGIC)?;
            file.flush()?;
            return Ok((
                Journal {
                    path,
                    writer: BufWriter::new(file),
                    records: 0,
                    _marker: std::marker::PhantomData,
                },
                Vec::new(),
                RecoveryReport::default(),
            ));
        }
        if bytes.len() < MAGIC.len() || &bytes[..MAGIC.len()] != MAGIC {
            return Err(JournalError::NotAJournal(path));
        }

        let mut entries = Vec::new();
        let mut good_end = MAGIC.len() as u64;
        let mut repaired = false;
        let mut offset = MAGIC.len();
        loop {
            match scan_frame(&bytes, offset) {
                Frame::End => break,
                Frame::Bad => {
                    repaired = true;
                    break;
                }
                Frame::Good {
                    payload_end,
                    payload,
                } => {
                    // A record that frames correctly but no longer decodes
                    // (e.g. the value schema changed) also ends the trusted
                    // prefix — same repair as a torn tail.
                    let text = match std::str::from_utf8(&payload) {
                        Ok(t) => t,
                        Err(_) => {
                            repaired = true;
                            break;
                        }
                    };
                    match serde_json::from_str::<(u64, V)>(text) {
                        Ok(entry) => entries.push(entry),
                        Err(_) => {
                            repaired = true;
                            break;
                        }
                    }
                    good_end = payload_end;
                    offset = payload_end as usize;
                }
            }
        }

        let truncated_bytes = bytes.len() as u64 - good_end;
        if repaired {
            file.set_len(good_end)?;
        }
        file.seek(SeekFrom::Start(good_end))?;

        let report = RecoveryReport {
            records: entries.len(),
            truncated_bytes: if repaired { truncated_bytes } else { 0 },
            repaired,
        };
        Ok((
            Journal {
                path,
                writer: BufWriter::new(file),
                records: entries.len(),
                _marker: std::marker::PhantomData,
            },
            entries,
            report,
        ))
    }

    /// Appends one record and flushes it to the OS.
    pub fn append(&mut self, key: u64, value: &V) -> Result<(), JournalError> {
        let payload =
            serde_json::to_string(&(key, value)).map_err(|e| JournalError::Codec(e.to_string()))?;
        let payload = payload.as_bytes();
        let len = u32::try_from(payload.len())
            .ok()
            .filter(|&l| l <= MAX_PAYLOAD_BYTES)
            .ok_or_else(|| JournalError::Codec("record payload too large".into()))?;
        self.writer.write_all(&len.to_le_bytes())?;
        self.writer.write_all(&bytes_hash(payload).to_le_bytes())?;
        self.writer.write_all(payload)?;
        self.writer.flush()?;
        self.records += 1;
        Ok(())
    }

    /// Rewrites the journal to contain exactly `entries`, via a temp file
    /// and an atomic rename. Dropped records (evicted or superseded keys)
    /// are how the journal shrinks.
    pub fn compact(&mut self, entries: &[(u64, &V)]) -> Result<(), JournalError> {
        let tmp_path = self.path.with_extension("journal.tmp");
        {
            let mut tmp = BufWriter::new(File::create(&tmp_path)?);
            tmp.write_all(MAGIC)?;
            for (key, value) in entries {
                let payload = serde_json::to_string(&(*key, *value))
                    .map_err(|e| JournalError::Codec(e.to_string()))?;
                let payload = payload.as_bytes();
                tmp.write_all(&(payload.len() as u32).to_le_bytes())?;
                tmp.write_all(&bytes_hash(payload).to_le_bytes())?;
                tmp.write_all(payload)?;
            }
            tmp.flush()?;
            tmp.get_ref().sync_all()?;
        }
        std::fs::rename(&tmp_path, &self.path)?;
        // The old handle still points at the unlinked pre-compaction file;
        // reopen in append position on the new one.
        let mut file = OpenOptions::new().read(true).write(true).open(&self.path)?;
        file.seek(SeekFrom::End(0))?;
        self.writer = BufWriter::new(file);
        self.records = entries.len();
        Ok(())
    }

    /// Forces buffered appends and file metadata to stable storage.
    pub fn sync(&mut self) -> Result<(), JournalError> {
        self.writer.flush()?;
        self.writer.get_ref().sync_all()?;
        Ok(())
    }

    /// Records appended or replayed through this handle (pre-compaction
    /// duplicates included).
    pub fn records(&self) -> usize {
        self.records
    }

    /// The journal's path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Scans the journal at `path` read-only: replays every record exactly
    /// like [`Journal::open`] but never repairs. The `repaired` flag in the
    /// returned report means "a repair *would* truncate `truncated_bytes`".
    pub fn verify(path: impl AsRef<Path>) -> Result<RecoveryReport, JournalError> {
        let path = path.as_ref();
        let bytes = std::fs::read(path)?;
        if bytes.len() < MAGIC.len() || &bytes[..MAGIC.len()] != MAGIC {
            return Err(JournalError::NotAJournal(path.to_path_buf()));
        }
        let mut records = 0usize;
        let mut good_end = MAGIC.len() as u64;
        let mut damaged = false;
        let mut offset = MAGIC.len();
        loop {
            match scan_frame(&bytes, offset) {
                Frame::End => break,
                Frame::Bad => {
                    damaged = true;
                    break;
                }
                Frame::Good {
                    payload_end,
                    payload,
                } => {
                    let ok = std::str::from_utf8(&payload)
                        .ok()
                        .and_then(|t| serde_json::from_str::<(u64, V)>(t).ok())
                        .is_some();
                    if !ok {
                        damaged = true;
                        break;
                    }
                    records += 1;
                    good_end = payload_end;
                    offset = payload_end as usize;
                }
            }
        }
        Ok(RecoveryReport {
            records,
            truncated_bytes: if damaged {
                bytes.len() as u64 - good_end
            } else {
                0
            },
            repaired: damaged,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    type TestJournal = Journal<Vec<f64>>;

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "nrpm-journal-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn round_trips_records_across_reopen() {
        let dir = tmp_dir("roundtrip");
        let path = dir.join("cache.journal");
        {
            let (mut journal, entries, report) = TestJournal::open(&path).unwrap();
            assert!(entries.is_empty());
            assert!(!report.repaired);
            journal.append(1, &vec![1.0, 2.0]).unwrap();
            journal.append(2, &vec![-0.5]).unwrap();
        }
        let (journal, entries, report) = TestJournal::open(&path).unwrap();
        assert_eq!(journal.records(), 2);
        assert!(!report.repaired);
        assert_eq!(entries, vec![(1, vec![1.0, 2.0]), (2, vec![-0.5])]);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn torn_tail_is_truncated_and_intact_records_survive() {
        let dir = tmp_dir("torn");
        let path = dir.join("cache.journal");
        {
            let (mut journal, _, _) = TestJournal::open(&path).unwrap();
            journal.append(10, &vec![1.0]).unwrap();
            journal.append(20, &vec![2.0]).unwrap();
            journal.append(30, &vec![3.0]).unwrap();
        }
        // Simulate a crash mid-append: chop the last record in half.
        let full = std::fs::read(&path).unwrap();
        let torn_len = full.len() - 7;
        std::fs::write(&path, &full[..torn_len]).unwrap();

        let (journal, entries, report) = TestJournal::open(&path).unwrap();
        assert_eq!(entries, vec![(10, vec![1.0]), (20, vec![2.0])]);
        assert!(report.repaired);
        assert!(report.truncated_bytes > 0);
        drop(journal);

        // The repair is durable: a second open sees a clean file.
        let (_, entries, report) = TestJournal::open(&path).unwrap();
        assert_eq!(entries.len(), 2);
        assert!(!report.repaired);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn checksum_mismatch_ends_the_trusted_prefix() {
        let dir = tmp_dir("bitrot");
        let path = dir.join("cache.journal");
        {
            let (mut journal, _, _) = TestJournal::open(&path).unwrap();
            journal.append(1, &vec![1.0]).unwrap();
            journal.append(2, &vec![2.0]).unwrap();
        }
        let mut bytes = std::fs::read(&path).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0x01; // flip one payload bit of the final record
        std::fs::write(&path, &bytes).unwrap();

        let (_, entries, report) = TestJournal::open(&path).unwrap();
        assert_eq!(entries, vec![(1, vec![1.0])]);
        assert!(report.repaired);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn append_after_recovery_continues_the_journal() {
        let dir = tmp_dir("resume");
        let path = dir.join("cache.journal");
        {
            let (mut journal, _, _) = TestJournal::open(&path).unwrap();
            journal.append(1, &vec![1.0]).unwrap();
            journal.append(2, &vec![2.0]).unwrap();
        }
        let full = std::fs::read(&path).unwrap();
        std::fs::write(&path, &full[..full.len() - 3]).unwrap();

        {
            let (mut journal, entries, _) = TestJournal::open(&path).unwrap();
            assert_eq!(entries.len(), 1);
            journal.append(3, &vec![3.0]).unwrap();
        }
        let (_, entries, report) = TestJournal::open(&path).unwrap();
        assert_eq!(entries, vec![(1, vec![1.0]), (3, vec![3.0])]);
        assert!(!report.repaired);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn compaction_drops_superseded_records_atomically() {
        let dir = tmp_dir("compact");
        let path = dir.join("cache.journal");
        let (mut journal, _, _) = TestJournal::open(&path).unwrap();
        for i in 0..10u64 {
            journal.append(i, &vec![i as f64]).unwrap();
        }
        let keep_a = vec![7.0];
        let keep_b = vec![9.0];
        journal.compact(&[(7, &keep_a), (9, &keep_b)]).unwrap();
        assert_eq!(journal.records(), 2);
        journal.append(11, &vec![11.0]).unwrap();
        drop(journal);

        let (_, entries, report) = TestJournal::open(&path).unwrap();
        assert_eq!(
            entries,
            vec![(7, vec![7.0]), (9, vec![9.0]), (11, vec![11.0])]
        );
        assert!(!report.repaired);
        assert!(!path.with_extension("journal.tmp").exists());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn refuses_to_open_a_non_journal_file() {
        let dir = tmp_dir("magic");
        let path = dir.join("not-a-journal");
        std::fs::write(&path, b"hello world, definitely json").unwrap();
        match TestJournal::open(&path) {
            Err(JournalError::NotAJournal(_)) => {}
            other => panic!("expected NotAJournal, got {other:?}"),
        }
        // And crucially: the impostor file was not truncated.
        assert_eq!(
            std::fs::read(&path).unwrap(),
            b"hello world, definitely json"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn verify_reports_damage_without_repairing() {
        let dir = tmp_dir("verify");
        let path = dir.join("cache.journal");
        {
            let (mut journal, _, _) = TestJournal::open(&path).unwrap();
            journal.append(1, &vec![1.0]).unwrap();
            journal.append(2, &vec![2.0]).unwrap();
        }
        let clean = TestJournal::verify(&path).unwrap();
        assert_eq!(clean.records, 2);
        assert!(!clean.repaired);

        let full = std::fs::read(&path).unwrap();
        std::fs::write(&path, &full[..full.len() - 5]).unwrap();
        let before = std::fs::read(&path).unwrap();
        let damaged = TestJournal::verify(&path).unwrap();
        assert_eq!(damaged.records, 1);
        assert!(damaged.repaired);
        assert_eq!(
            std::fs::read(&path).unwrap(),
            before,
            "verify must not write"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn every_truncation_point_recovers_a_prefix() {
        // Property-style sweep: cut the file at every byte offset and check
        // that recovery yields exactly the records whose frames fit.
        let dir = tmp_dir("sweep");
        let path = dir.join("cache.journal");
        {
            let (mut journal, _, _) = TestJournal::open(&path).unwrap();
            for i in 0..4u64 {
                journal.append(i, &vec![i as f64, 0.5]).unwrap();
            }
        }
        let full = std::fs::read(&path).unwrap();
        for cut in MAGIC.len()..=full.len() {
            let case = dir.join(format!("cut-{cut}.journal"));
            std::fs::write(&case, &full[..cut]).unwrap();
            let (_, entries, _) = TestJournal::open(&case).unwrap();
            for (i, (key, value)) in entries.iter().enumerate() {
                assert_eq!(*key, i as u64);
                assert_eq!(value, &vec![i as f64, 0.5]);
            }
            assert!(entries.len() <= 4);
        }
        let _ = std::fs::remove_dir_all(&dir);
    }
}
