//! Classification metrics.

/// Index of the largest value in a probability row.
fn argmax(row: &[f64]) -> usize {
    row.iter()
        .enumerate()
        .max_by(|a, b| a.1.partial_cmp(b.1).expect("finite probabilities"))
        .map(|(i, _)| i)
        .expect("non-empty row")
}

/// The `k` most probable classes of a probability row, most probable first.
pub fn top_k_classes(probabilities: &[f64], k: usize) -> Vec<usize> {
    let mut idx: Vec<usize> = (0..probabilities.len()).collect();
    idx.sort_by(|&a, &b| {
        probabilities[b]
            .partial_cmp(&probabilities[a])
            .expect("finite probabilities")
    });
    idx.truncate(k);
    idx
}

/// Fraction of rows whose argmax equals the label.
///
/// # Panics
/// Panics if the slices disagree in length.
pub fn accuracy(probability_rows: &[&[f64]], labels: &[usize]) -> f64 {
    assert_eq!(
        probability_rows.len(),
        labels.len(),
        "rows/labels length mismatch"
    );
    if labels.is_empty() {
        return 0.0;
    }
    let hits = probability_rows
        .iter()
        .zip(labels)
        .filter(|(row, &l)| argmax(row) == l)
        .count();
    hits as f64 / labels.len() as f64
}

/// Fraction of rows whose label is among the `k` most probable classes.
pub fn top_k_accuracy(probability_rows: &[&[f64]], labels: &[usize], k: usize) -> f64 {
    assert_eq!(
        probability_rows.len(),
        labels.len(),
        "rows/labels length mismatch"
    );
    if labels.is_empty() {
        return 0.0;
    }
    let hits = probability_rows
        .iter()
        .zip(labels)
        .filter(|(row, &l)| top_k_classes(row, k).contains(&l))
        .count();
    hits as f64 / labels.len() as f64
}

/// Confusion matrix: `result[true][predicted]` counts.
pub fn confusion_matrix(
    probability_rows: &[&[f64]],
    labels: &[usize],
    num_classes: usize,
) -> Vec<Vec<usize>> {
    assert_eq!(
        probability_rows.len(),
        labels.len(),
        "rows/labels length mismatch"
    );
    let mut m = vec![vec![0usize; num_classes]; num_classes];
    for (row, &l) in probability_rows.iter().zip(labels) {
        m[l][argmax(row)] += 1;
    }
    m
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accuracy_counts_argmax_hits() {
        let rows: Vec<&[f64]> = vec![&[0.9, 0.1], &[0.2, 0.8], &[0.6, 0.4]];
        assert!((accuracy(&rows, &[0, 1, 1]) - 2.0 / 3.0).abs() < 1e-12);
        assert_eq!(accuracy(&[], &[]), 0.0);
    }

    #[test]
    fn top_k_classes_are_sorted_by_probability() {
        let probs = [0.1, 0.5, 0.05, 0.35];
        assert_eq!(top_k_classes(&probs, 3), vec![1, 3, 0]);
        assert_eq!(top_k_classes(&probs, 10), vec![1, 3, 0, 2]);
    }

    #[test]
    fn top_k_accuracy_is_monotone_in_k() {
        let rows: Vec<&[f64]> = vec![&[0.5, 0.3, 0.2], &[0.1, 0.2, 0.7], &[0.4, 0.35, 0.25]];
        let labels = [1, 0, 2];
        let a1 = top_k_accuracy(&rows, &labels, 1);
        let a2 = top_k_accuracy(&rows, &labels, 2);
        let a3 = top_k_accuracy(&rows, &labels, 3);
        assert!(a1 <= a2 && a2 <= a3);
        assert_eq!(a3, 1.0);
        assert_eq!(a1, 0.0);
    }

    #[test]
    fn confusion_matrix_rows_sum_to_class_counts() {
        let rows: Vec<&[f64]> = vec![&[0.9, 0.1], &[0.9, 0.1], &[0.2, 0.8]];
        let labels = [0, 1, 1];
        let m = confusion_matrix(&rows, &labels, 2);
        assert_eq!(m[0][0], 1); // true 0, predicted 0
        assert_eq!(m[1][0], 1); // true 1, predicted 0
        assert_eq!(m[1][1], 1); // true 1, predicted 1
        let total: usize = m.iter().flatten().sum();
        assert_eq!(total, 3);
    }
}
