//! Single-flight deduplication: N concurrent requests for the same key do
//! the work once.
//!
//! The first caller to [`SingleFlight::join`] a key becomes the *leader*
//! and receives a [`Leader`] guard; everyone else joining before the
//! leader publishes becomes a *follower* and blocks (bounded by its own
//! deadline) on the leader's result. The leader computes, then calls
//! [`Leader::publish`]; every waiting follower receives a clone.
//!
//! Liveness is unconditional: the guard's `Drop` publishes a failure if
//! the leader never published (panic, early return, request timeout), so
//! followers cannot wait forever on an abandoned flight. A follower that
//! observes failure — or whose own deadline expires first — falls back to
//! doing the work itself; deduplication is an optimization, never a
//! correctness dependency.

use std::collections::HashMap;
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

enum FlightState<T> {
    Pending,
    Done(Option<T>),
}

struct Flight<T> {
    state: Mutex<FlightState<T>>,
    published: Condvar,
}

/// What [`SingleFlight::join`] resolved to.
pub enum Joined<'a, T> {
    /// This caller does the work; it must [`Leader::publish`] (or drop the
    /// guard, which publishes failure).
    Leader(Leader<'a, T>),
    /// A leader published this value while we waited.
    Shared(T),
    /// The flight's leader gave up without a value — do the work yourself.
    LeaderFailed,
    /// Our own deadline expired before the leader published.
    TimedOut,
}

/// The leader's obligation to publish. See [`Joined::Leader`].
pub struct Leader<'a, T> {
    flights: &'a SingleFlight<T>,
    key: u64,
    flight: Arc<Flight<T>>,
    done: bool,
}

impl<T: Clone> Leader<'_, T> {
    /// Hands `value` to every waiting follower and retires the flight.
    pub fn publish(mut self, value: T) {
        self.finish(Some(value));
    }

    /// Retires the flight without a value; followers fall back to their
    /// own computation.
    pub fn abandon(mut self) {
        self.finish(None);
    }

    fn finish(&mut self, value: Option<T>) {
        if self.done {
            return;
        }
        self.done = true;
        // Retire the key first so a caller arriving after publication
        // starts a fresh flight instead of reading a stale one.
        self.flights
            .map
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
            .remove(&self.key);
        *self
            .flight
            .state
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner()) = FlightState::Done(value);
        self.flight.published.notify_all();
    }
}

impl<T> Drop for Leader<'_, T> {
    fn drop(&mut self) {
        if !self.done {
            self.done = true;
            self.flights
                .map
                .lock()
                .unwrap_or_else(|poisoned| poisoned.into_inner())
                .remove(&self.key);
            *self
                .flight
                .state
                .lock()
                .unwrap_or_else(|poisoned| poisoned.into_inner()) = FlightState::Done(None);
            self.flight.published.notify_all();
        }
    }
}

/// The flight table. One instance deduplicates one keyspace; keys are the
/// cache's combined fingerprints.
pub struct SingleFlight<T> {
    map: Mutex<HashMap<u64, Arc<Flight<T>>>>,
}

impl<T: Clone> Default for SingleFlight<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T: Clone> SingleFlight<T> {
    /// An empty flight table.
    pub fn new() -> Self {
        SingleFlight {
            map: Mutex::new(HashMap::new()),
        }
    }

    /// Joins the flight for `key`: leads it if nobody is, otherwise waits
    /// up to `timeout` for the leader's result.
    pub fn join(&self, key: u64, timeout: Duration) -> Joined<'_, T> {
        let flight = {
            let mut map = self
                .map
                .lock()
                .unwrap_or_else(|poisoned| poisoned.into_inner());
            match map.get(&key) {
                Some(flight) => Arc::clone(flight),
                None => {
                    let flight = Arc::new(Flight {
                        state: Mutex::new(FlightState::Pending),
                        published: Condvar::new(),
                    });
                    map.insert(key, Arc::clone(&flight));
                    return Joined::Leader(Leader {
                        flights: self,
                        key,
                        flight,
                        done: false,
                    });
                }
            }
        };

        let deadline = Instant::now() + timeout;
        let mut state = flight
            .state
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner());
        loop {
            match &*state {
                FlightState::Done(Some(value)) => return Joined::Shared(value.clone()),
                FlightState::Done(None) => return Joined::LeaderFailed,
                FlightState::Pending => {}
            }
            let now = Instant::now();
            if now >= deadline {
                return Joined::TimedOut;
            }
            let (next, wait) = flight
                .published
                .wait_timeout(state, deadline - now)
                .unwrap_or_else(|poisoned| poisoned.into_inner());
            state = next;
            if wait.timed_out() {
                // Re-check once: the leader may have published between the
                // timeout and reacquiring the lock.
                match &*state {
                    FlightState::Done(Some(value)) => return Joined::Shared(value.clone()),
                    FlightState::Done(None) => return Joined::LeaderFailed,
                    FlightState::Pending => return Joined::TimedOut,
                }
            }
        }
    }

    /// Flights currently pending (observability and tests).
    pub fn pending(&self) -> usize {
        self.map
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
            .len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Barrier;

    #[test]
    fn leader_publishes_to_all_followers() {
        let flights: Arc<SingleFlight<u64>> = Arc::new(SingleFlight::new());
        let computed = Arc::new(AtomicUsize::new(0));
        let shared = Arc::new(AtomicUsize::new(0));
        let start = Arc::new(Barrier::new(8));

        let handles: Vec<_> = (0..8)
            .map(|_| {
                let flights = Arc::clone(&flights);
                let computed = Arc::clone(&computed);
                let shared = Arc::clone(&shared);
                let start = Arc::clone(&start);
                std::thread::spawn(move || {
                    start.wait();
                    match flights.join(42, Duration::from_secs(5)) {
                        Joined::Leader(leader) => {
                            std::thread::sleep(Duration::from_millis(30));
                            computed.fetch_add(1, Ordering::SeqCst);
                            leader.publish(1234);
                            1234
                        }
                        Joined::Shared(v) => {
                            shared.fetch_add(1, Ordering::SeqCst);
                            v
                        }
                        Joined::LeaderFailed | Joined::TimedOut => {
                            panic!("flight should have succeeded")
                        }
                    }
                })
            })
            .collect();
        for h in handles {
            assert_eq!(h.join().unwrap(), 1234);
        }
        assert_eq!(computed.load(Ordering::SeqCst), 1, "exactly one leader");
        assert_eq!(shared.load(Ordering::SeqCst), 7, "everyone else shared");
        assert_eq!(flights.pending(), 0);
    }

    #[test]
    fn dropped_leader_releases_followers_as_failed() {
        let flights: Arc<SingleFlight<u64>> = Arc::new(SingleFlight::new());
        let Joined::Leader(leader) = flights.join(7, Duration::from_secs(1)) else {
            panic!("first join must lead");
        };
        let follower = {
            let flights = Arc::clone(&flights);
            std::thread::spawn(move || {
                matches!(
                    flights.join(7, Duration::from_secs(5)),
                    Joined::LeaderFailed
                )
            })
        };
        std::thread::sleep(Duration::from_millis(20));
        drop(leader); // leader dies without publishing
        assert!(follower.join().unwrap(), "follower must see LeaderFailed");
        assert_eq!(flights.pending(), 0);
    }

    #[test]
    fn follower_timeout_is_bounded_by_its_own_deadline() {
        let flights: SingleFlight<u64> = SingleFlight::new();
        let Joined::Leader(_leader) = flights.join(9, Duration::from_secs(1)) else {
            panic!("first join must lead");
        };
        let begin = Instant::now();
        let joined = flights.join(9, Duration::from_millis(40));
        assert!(matches!(joined, Joined::TimedOut));
        assert!(begin.elapsed() >= Duration::from_millis(40));
        assert!(begin.elapsed() < Duration::from_secs(1));
    }

    #[test]
    fn a_retired_key_starts_a_fresh_flight() {
        let flights: SingleFlight<u64> = SingleFlight::new();
        let Joined::Leader(leader) = flights.join(1, Duration::from_secs(1)) else {
            panic!();
        };
        leader.publish(10);
        // Publication retires the key — no stale value is served.
        assert!(matches!(
            flights.join(1, Duration::from_secs(1)),
            Joined::Leader(_)
        ));
    }

    #[test]
    fn distinct_keys_fly_independently() {
        let flights: SingleFlight<u64> = SingleFlight::new();
        let Joined::Leader(a) = flights.join(1, Duration::from_secs(1)) else {
            panic!();
        };
        let Joined::Leader(b) = flights.join(2, Duration::from_secs(1)) else {
            panic!("a pending flight on key 1 must not block key 2");
        };
        assert_eq!(flights.pending(), 2);
        a.publish(1);
        b.publish(2);
        assert_eq!(flights.pending(), 0);
    }
}
