//! `nrpm-cluster` — the scale-out serving tier.
//!
//! A [`Cluster`] composes the single-node pieces into a sharded
//! deployment: N in-process [`nrpm_serve::Server`] backends (one
//! [`nrpm_serve::ModelStore`] each), a **router** front-end speaking the
//! same newline-JSON protocol, and a **supervisor** that wire-polls every
//! shard's `health`/`stats` endpoints.
//!
//! Requests route by the measurement-set fingerprint over a consistent
//! [`HashRing`] with virtual nodes, so each shard keeps seeing the same
//! keys — its result cache and single-flight dedup work exactly as they do
//! standalone. A dead shard's keys remap to ring successors (the router
//! ejects on failure and retries the next shard in ring order); a shard
//! that returns must pass consecutive health probes before traffic comes
//! back, and then gets its exact old keys again because ejection never
//! edits the ring.
//!
//! Checkpoint distribution goes through the content-addressed registry:
//! `launch` publishes the serving network under a ref, syncs the object
//! into a per-shard registry, and each shard loads its weights from its
//! own copy — so "every shard serves the same `checkpoint_hash`" is a
//! verifiable property (router `stats` reports per-shard hash/epoch and a
//! divergence flag), not an assumption.

#![warn(missing_docs)]

pub mod cluster;
pub mod ring;
pub mod router;
pub mod shard;

pub use cluster::{Cluster, ClusterOptions};
pub use ring::{HashRing, DEFAULT_VNODES};
pub use shard::Availability;
