//! The relay path: per-shard connection pooling and the replicated
//! forward with quorum resolution.
//!
//! ## Single-replica mode (`replication == 1`, the default)
//!
//! A request walks the key's ring successors sequentially: the owner
//! first — preserving per-shard result-cache and single-flight affinity —
//! then each distinct successor, ejecting any shard whose retrying client
//! gives up. Exactly the failover the router always had.
//!
//! ## Replicated mode (`replication = R > 1`)
//!
//! The request fans out to the first R *routable* ring successors in
//! parallel — a fully hedged read: every replica gets the request at
//! once, each behind its own retrying client (retry/timeout/backoff per
//! replica), and the slowest straggler can no longer hold the answer
//! hostage. Each reply carries the shard's `served_hash` and `epoch`
//! (stamped by the serving layer); the router groups replies by that pair
//! and answers with the majority group — ties prefer the ring owner's
//! group, keeping affinity deterministic. Disagreement between replicas
//! (a mid-rollout shard, a diverged hot-swap) is *resolved* by that
//! quorum and *surfaced* in `stats` as `replica_divergences`, plus a
//! `"divergent": true` field on the winning reply. If every replica in
//! the fan fails, the walk continues sequentially through the remaining
//! successors, so replication never reduces availability below
//! single-replica failover.

use std::collections::HashMap;
use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::thread;

use nrpm_core::fingerprint::mix64;
use nrpm_serve::client::{RetryError, RetryingClient};
use nrpm_serve::protocol::{error_line, ErrorKind};
use serde::Value;
use serde_json;

use crate::cluster::ClusterState;
use crate::router::next_conn_id;
use crate::shard::ShardRuntime;

/// One retrying client pinned to the shard address and incarnation it was
/// built for; a revive or rejoin moves the shard to a new process (and
/// usually a new port), so a stale connection is rebuilt rather than
/// reused — without burning any of the request's retry budget on a socket
/// that can only fail.
pub(crate) struct ShardConn {
    addr: std::net::SocketAddr,
    incarnation: u64,
    client: RetryingClient,
}

/// Per-connection pool of shard clients, built lazily on first use.
pub(crate) struct ShardConns {
    conns: HashMap<u32, ShardConn>,
    conn_id: u64,
}

impl ShardConns {
    pub(crate) fn new() -> ShardConns {
        ShardConns {
            conns: HashMap::new(),
            conn_id: next_conn_id(),
        }
    }

    fn fresh_conn(&self, member: &ShardRuntime, state: &ClusterState) -> ShardConn {
        let addr = member.addr();
        let mut policy = state.opts.retry.clone();
        policy.seed ^= mix64(self.conn_id << 32 | u64::from(member.id));
        ShardConn {
            addr,
            incarnation: member.incarnation(),
            client: RetryingClient::new(addr, state.opts.shard_timeout, policy),
        }
    }

    /// Evicts the cached client if the member moved (new address) or was
    /// reincarnated (revive/rejoin — same address, new process).
    fn evict_stale(&mut self, member: &ShardRuntime) {
        let stale = self.conns.get(&member.id).is_some_and(|conn| {
            conn.addr != member.addr() || conn.incarnation != member.incarnation()
        });
        if stale {
            self.conns.remove(&member.id);
        }
    }

    /// The pooled client for `member` (sequential relay path).
    pub(crate) fn client(
        &mut self,
        member: &ShardRuntime,
        state: &ClusterState,
    ) -> &mut RetryingClient {
        self.evict_stale(member);
        if !self.conns.contains_key(&member.id) {
            let conn = self.fresh_conn(member, state);
            self.conns.insert(member.id, conn);
        }
        &mut self
            .conns
            .get_mut(&member.id)
            .expect("just inserted")
            .client
    }

    /// Removes and returns `member`'s client so the fan-out can drive
    /// several replicas from scoped threads; return it with
    /// [`ShardConns::put_conn`].
    fn take_conn(&mut self, member: &ShardRuntime, state: &ClusterState) -> ShardConn {
        self.evict_stale(member);
        self.conns
            .remove(&member.id)
            .unwrap_or_else(|| self.fresh_conn(member, state))
    }

    fn put_conn(&mut self, id: u32, conn: ShardConn) {
        self.conns.insert(id, conn);
    }
}

/// Per-connection reusable routing buffers; keeps the single-replica hot
/// path allocation-free once warmed.
pub(crate) struct RouteScratch {
    order: Vec<u32>,
    replicas: Vec<Arc<ShardRuntime>>,
}

impl RouteScratch {
    pub(crate) fn new() -> RouteScratch {
        RouteScratch {
            order: Vec::new(),
            replicas: Vec::new(),
        }
    }
}

/// Relays `line` to the owner (and replicas) of `key`. See the
/// [module docs](self).
pub(crate) fn forward(
    state: &Arc<ClusterState>,
    conns: &mut ShardConns,
    scratch: &mut RouteScratch,
    key: u64,
    line: &str,
    id: Option<&str>,
) -> String {
    if state.draining() {
        return error_line(
            id,
            ErrorKind::ShuttingDown,
            "cluster is draining; no new modeling work accepted",
        );
    }
    state.successors_into(key, &mut scratch.order);
    let owner = scratch.order.first().copied();
    scratch.replicas.clear();
    for &shard_id in &scratch.order {
        if let Some(member) = state.member(shard_id) {
            if member.is_routable() {
                scratch.replicas.push(member);
            }
        }
    }

    let limit = state.opts.max_failover.max(1);
    let replication = state.opts.replication.max(1);
    let fan = replication.min(scratch.replicas.len()).min(limit);
    let mut tried = 0usize;

    if fan > 1 {
        tried = fan;
        if let Some(response) = fan_out(state, conns, &scratch.replicas[..fan], owner, line) {
            return response;
        }
    }

    // Sequential walk: the whole successor list in single-replica mode, or
    // whatever survives past a fully-failed fan.
    for member in &scratch.replicas[if fan > 1 { fan } else { 0 }..] {
        if tried >= limit {
            break;
        }
        tried += 1;
        let answer = conns.client(member, state).roundtrip_line(line);
        match answer {
            Ok(response)
                if response.get("kind").and_then(Value::as_str) == Some("shutting_down") =>
            {
                // The retrying client rightly treats `shutting_down` as an
                // answer; at the cluster level it means "this shard is
                // leaving", which is the router's cue to eject and move on.
                member.note_route_failure();
            }
            Ok(response) => {
                member.routed.fetch_add(1, Ordering::Relaxed);
                state.routed.fetch_add(1, Ordering::Relaxed);
                if owner != Some(member.id) {
                    state.failovers.fetch_add(1, Ordering::Relaxed);
                }
                return annotate(response, member.id, None, line);
            }
            Err(RetryError::CircuitOpen | RetryError::Exhausted(_)) => {
                member.note_route_failure();
            }
        }
    }
    state.rejected.fetch_add(1, Ordering::Relaxed);
    error_line(
        id,
        ErrorKind::Overloaded,
        "no healthy shard could answer; retry with backoff",
    )
}

/// Drives one request against `fan` replicas in parallel and resolves the
/// answer by quorum. `None` when every replica failed (the caller falls
/// back to the sequential walk).
fn fan_out(
    state: &Arc<ClusterState>,
    conns: &mut ShardConns,
    fan: &[Arc<ShardRuntime>],
    owner: Option<u32>,
    line: &str,
) -> Option<String> {
    state.replica_fanouts.fetch_add(1, Ordering::Relaxed);
    let mut taken: Vec<ShardConn> = fan.iter().map(|m| conns.take_conn(m, state)).collect();
    let mut results: Vec<Option<Result<Value, RetryError>>> = fan.iter().map(|_| None).collect();
    thread::scope(|scope| {
        let mut lanes = taken.iter_mut().zip(results.iter_mut());
        // Drive the first replica on this thread; hedge the rest.
        let first = lanes.next();
        for (conn, slot) in lanes {
            scope.spawn(move || {
                *slot = Some(conn.client.roundtrip_line(line));
            });
        }
        if let Some((conn, slot)) = first {
            *slot = Some(conn.client.roundtrip_line(line));
        }
    });
    for (member, conn) in fan.iter().zip(taken) {
        conns.put_conn(member.id, conn);
    }

    let mut answers: Vec<(u32, Value)> = Vec::new();
    for (member, result) in fan.iter().zip(results) {
        match result.expect("every fan lane ran") {
            Ok(response)
                if response.get("kind").and_then(Value::as_str) == Some("shutting_down") =>
            {
                member.note_route_failure();
            }
            Ok(response) => answers.push((member.id, response)),
            Err(RetryError::CircuitOpen | RetryError::Exhausted(_)) => {
                member.note_route_failure();
            }
        }
    }
    if answers.is_empty() {
        return None;
    }

    let verdict = resolve_quorum(&answers);
    if verdict.divergent {
        state.replica_divergences.fetch_add(1, Ordering::Relaxed);
    }
    for (shard_id, _) in &answers {
        if let Some(member) = state.member(*shard_id) {
            member.routed.fetch_add(1, Ordering::Relaxed);
        }
    }
    state.routed.fetch_add(1, Ordering::Relaxed);
    if !answers.iter().any(|(shard_id, _)| Some(*shard_id) == owner) {
        state.failovers.fetch_add(1, Ordering::Relaxed);
    }
    let (winner_shard, winner) = answers.swap_remove(verdict.winner);
    Some(annotate(
        winner,
        winner_shard,
        Some(ReplicaNote {
            replicas: fan.len(),
            quorum: verdict.votes,
            divergent: verdict.divergent,
        }),
        line,
    ))
}

/// What quorum resolution concluded about one fan of replies.
#[derive(Debug, PartialEq, Eq)]
struct QuorumVerdict {
    /// Index into the replies of the chosen answer.
    winner: usize,
    /// Size of the winning `(served_hash, epoch)` group.
    votes: usize,
    /// Whether any reply disagreed with the winner's group.
    divergent: bool,
}

/// Groups replies by `(served_hash, epoch)` and picks the majority group;
/// ties go to the group of the earliest reply (the fan is successor-
/// ordered, so that is the ring owner whenever it answered).
fn resolve_quorum(answers: &[(u32, Value)]) -> QuorumVerdict {
    fn group_key(response: &Value) -> (&str, u64) {
        (
            response
                .get("served_hash")
                .and_then(Value::as_str)
                .unwrap_or(""),
            response.get("epoch").and_then(Value::as_u64).unwrap_or(0),
        )
    }
    let mut winner = 0usize;
    let mut votes = 0usize;
    for (i, (_, response)) in answers.iter().enumerate() {
        let key = group_key(response);
        let group = answers
            .iter()
            .filter(|(_, other)| group_key(other) == key)
            .count();
        if group > votes {
            winner = i;
            votes = group;
        }
    }
    QuorumVerdict {
        winner,
        votes,
        divergent: votes < answers.len(),
    }
}

struct ReplicaNote {
    replicas: usize,
    quorum: usize,
    divergent: bool,
}

/// Adds `"shard": id` (and, for replicated reads, the quorum verdict) to
/// a relayed reply so clients — and the affinity/divergence measurements
/// in `cluster_bench` — can see how it was answered.
fn annotate(response: Value, shard: u32, note: Option<ReplicaNote>, raw: &str) -> String {
    let Value::Map(mut entries) = response else {
        // A non-object reply should be impossible; relay the raw shard
        // bytes unmodified rather than inventing a frame.
        return raw.to_string();
    };
    entries.push(("shard".into(), Value::U64(u64::from(shard))));
    if let Some(note) = note {
        entries.push(("replicas".into(), Value::U64(note.replicas as u64)));
        entries.push(("quorum".into(), Value::U64(note.quorum as u64)));
        entries.push(("divergent".into(), Value::Bool(note.divergent)));
    }
    serde_json::to_string(&Value::Map(entries)).expect("reserializing a reply map cannot fail")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn reply(hash: &str, epoch: u64) -> Value {
        Value::Map(vec![
            ("status".into(), Value::Str("ok".into())),
            ("served_hash".into(), Value::Str(hash.into())),
            ("epoch".into(), Value::U64(epoch)),
        ])
    }

    #[test]
    fn unanimous_fan_is_not_divergent() {
        let answers = vec![(0, reply("aa", 1)), (2, reply("aa", 1))];
        let verdict = resolve_quorum(&answers);
        assert_eq!(
            verdict,
            QuorumVerdict {
                winner: 0,
                votes: 2,
                divergent: false
            }
        );
    }

    #[test]
    fn majority_wins_over_a_diverged_replica() {
        let answers = vec![
            (0, reply("old", 1)),
            (1, reply("new", 2)),
            (2, reply("new", 2)),
        ];
        let verdict = resolve_quorum(&answers);
        assert_eq!(verdict.votes, 2);
        assert!(verdict.divergent);
        assert_eq!(verdict.winner, 1, "first member of the majority group");
    }

    #[test]
    fn ties_prefer_the_owner_side_of_the_fan() {
        let answers = vec![(3, reply("aa", 1)), (5, reply("bb", 1))];
        let verdict = resolve_quorum(&answers);
        assert_eq!(verdict.winner, 0, "successor order breaks the tie");
        assert_eq!(verdict.votes, 1);
        assert!(verdict.divergent);
    }

    #[test]
    fn same_hash_different_epoch_counts_as_divergence() {
        let answers = vec![(0, reply("aa", 1)), (1, reply("aa", 2))];
        let verdict = resolve_quorum(&answers);
        assert!(verdict.divergent, "epoch is part of the quorum key");
    }
}
