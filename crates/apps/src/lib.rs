//! Simulated application case studies (Sec. VI of the paper).
//!
//! The paper's evaluation uses measurement campaigns from three HPC codes:
//!
//! * **Kripke** — a 3D Sn deterministic particle-transport proxy app,
//!   measured on Vulcan (IBM BG/Q at LLNL) over three parameters,
//! * **FASTEST** — a CFD flow solver, measured on SuperMUC (LRZ) over two
//!   parameters,
//! * **RELeARN** — a neural-plasticity simulator, measured on Lichtenberg
//!   (TU Darmstadt) over two parameters.
//!
//! We do not have those machines or the original traces, so this crate
//! builds the closest synthetic equivalent (see DESIGN.md): per-kernel
//! ground-truth models taken from the paper's reported results and the
//! literature it cites, the paper's exact parameter-value sets and
//! measurement layouts, and per-point uniform multiplicative noise whose
//! level distribution matches the statistics of Fig. 5 (Kripke: mean
//! 17.44 %, range [3.66, 53.66] %; FASTEST: mean 49.56 %, range
//! [7.51, 160.27] %; RELeARN: ≈ 0.65 %). The modelers only ever see
//! `(point, repetitions)` tuples, so statistically faithful tuples exercise
//! exactly the code paths the paper exercises.

#![warn(missing_docs)]

mod campaign;
mod fastest;
mod kripke;
mod noise_regime;
mod relearn;

pub use campaign::{CaseStudy, KernelCampaign, Layout};
pub use fastest::fastest;
pub use kripke::kripke;
pub use noise_regime::{range_recovery, NoiseRegime, RANGE_RECOVERY_5_REPS};
pub use relearn::relearn;

/// All three case studies, freshly generated with the given seed.
pub fn all_case_studies(seed: u64) -> Vec<CaseStudy> {
    vec![kripke(seed), fastest(seed ^ 0xFA57), relearn(seed ^ 0x4E1E)]
}
