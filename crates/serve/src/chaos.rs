//! A network chaos proxy for overload and fault-injection testing.
//!
//! [`ChaosProxy`] sits between a client and a server on a local TCP port
//! and forwards bytes in both directions, injecting socket-level faults —
//! added latency, fragmented (partial) writes, truncated frames followed
//! by a close, garbage bytes spliced into the stream, and abrupt
//! connection drops. It mirrors `nrpm-synth`'s `FaultInjector` philosophy
//! one layer down: where the synthesizer corrupts *measurements* to test
//! the modeler, the proxy corrupts *the wire* to test the serving stack.
//!
//! Faults can be toggled at runtime ([`ChaosProxy::set_faults_enabled`]),
//! which is how the soak tests verify that a retrying client converges
//! back to clean successes once the network heals. Injected faults are
//! counted per kind ([`ChaosProxy::fault_counts`]).
//!
//! Garbage is injected **without** a trailing newline, so it fuses with
//! the next real line instead of adding a frame: the victim sees one
//! corrupted request (or one unparseable response) and the line-per-reply
//! protocol stays in sync — a corrupted stream must degrade requests, not
//! silently misattribute answers.

use crate::util::stream_rng;
use rand::{rngs::StdRng, Rng};
use std::io::{Read, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::{self, JoinHandle};
use std::time::Duration;

/// Fault mix injected by the proxy. Probabilities are evaluated per
/// forwarded chunk, independently per direction; the first fault drawn
/// (in the order reset, truncate, garbage, partial) applies, with latency
/// drawn separately on top.
#[derive(Debug, Clone)]
pub struct ChaosOptions {
    /// Added one-way delay when the latency fault fires.
    pub latency: Duration,
    /// Probability of delaying a chunk by [`latency`](Self::latency).
    pub latency_prob: f64,
    /// Probability of fragmenting a chunk into two delayed writes.
    pub partial_write_prob: f64,
    /// Probability of forwarding only a prefix of a chunk and closing the
    /// connection (a truncated frame).
    pub truncate_prob: f64,
    /// Probability of splicing garbage bytes in front of a chunk.
    pub garbage_prob: f64,
    /// Probability of dropping the connection outright.
    pub reset_prob: f64,
    /// Extra one-way delay applied **only** to the server→client
    /// direction when the asymmetric fault fires — a link whose return
    /// path is congested while requests flow freely, the split-brain
    /// precursor replication tests need.
    pub asymmetric_delay: Duration,
    /// Probability of delaying a server→client chunk by
    /// [`asymmetric_delay`](Self::asymmetric_delay).
    pub asymmetric_delay_prob: f64,
    /// Seed for the per-connection fault RNGs.
    pub seed: u64,
}

impl Default for ChaosOptions {
    fn default() -> Self {
        ChaosOptions {
            latency: Duration::from_millis(5),
            latency_prob: 0.2,
            partial_write_prob: 0.2,
            truncate_prob: 0.1,
            garbage_prob: 0.15,
            reset_prob: 0.1,
            asymmetric_delay: Duration::from_millis(20),
            asymmetric_delay_prob: 0.0,
            seed: 0xc4a05,
        }
    }
}

/// How often blocked proxy reads wake up to check the stop flag.
const POLL: Duration = Duration::from_millis(20);

/// Counts of injected faults, by kind.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultCounts {
    /// Chunks delayed by the latency fault.
    pub delayed: u64,
    /// Chunks fragmented into partial writes.
    pub partial_writes: u64,
    /// Frames truncated (prefix forwarded, then closed).
    pub truncated: u64,
    /// Garbage splices.
    pub garbage: u64,
    /// Connections dropped abruptly.
    pub resets: u64,
    /// Chunks swallowed while the proxy was partitioned.
    pub blackholed: u64,
    /// Server→client chunks delayed by the asymmetric fault.
    pub asym_delayed: u64,
}

impl FaultCounts {
    /// Total faults injected across all kinds.
    pub fn total(&self) -> u64 {
        self.delayed
            + self.partial_writes
            + self.truncated
            + self.garbage
            + self.resets
            + self.blackholed
            + self.asym_delayed
    }
}

struct ProxyState {
    opts: ChaosOptions,
    upstream: SocketAddr,
    stop: AtomicBool,
    faults_enabled: AtomicBool,
    partitioned: AtomicBool,
    sessions: AtomicU64,
    delayed: AtomicU64,
    partial_writes: AtomicU64,
    truncated: AtomicU64,
    garbage: AtomicU64,
    resets: AtomicU64,
    blackholed: AtomicU64,
    asym_delayed: AtomicU64,
}

impl ProxyState {
    fn stopping(&self) -> bool {
        self.stop.load(Ordering::SeqCst)
    }

    fn faults_on(&self) -> bool {
        self.faults_enabled.load(Ordering::SeqCst)
    }

    fn partitioned(&self) -> bool {
        self.partitioned.load(Ordering::SeqCst)
    }
}

/// A running chaos proxy; see the [module docs](self). Stops (and joins
/// its threads) on [`stop`](Self::stop) or drop.
pub struct ChaosProxy {
    addr: SocketAddr,
    state: Arc<ProxyState>,
    acceptor: Option<JoinHandle<()>>,
}

impl ChaosProxy {
    /// Binds an ephemeral local port and proxies every connection to
    /// `upstream` with `opts`'s fault mix (enabled from the start).
    pub fn start(upstream: SocketAddr, opts: ChaosOptions) -> std::io::Result<ChaosProxy> {
        let listener = TcpListener::bind("127.0.0.1:0")?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;
        let state = Arc::new(ProxyState {
            opts,
            upstream,
            stop: AtomicBool::new(false),
            faults_enabled: AtomicBool::new(true),
            partitioned: AtomicBool::new(false),
            sessions: AtomicU64::new(0),
            delayed: AtomicU64::new(0),
            partial_writes: AtomicU64::new(0),
            truncated: AtomicU64::new(0),
            garbage: AtomicU64::new(0),
            resets: AtomicU64::new(0),
            blackholed: AtomicU64::new(0),
            asym_delayed: AtomicU64::new(0),
        });
        let acceptor = {
            let state = Arc::clone(&state);
            thread::Builder::new()
                .name("nrpm-chaos-acceptor".into())
                .spawn(move || run_proxy_acceptor(listener, &state))
                .expect("spawn chaos acceptor")
        };
        Ok(ChaosProxy {
            addr,
            state,
            acceptor: Some(acceptor),
        })
    }

    /// The proxy's listening address — point clients here.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Turns fault injection on/off at runtime; with faults off the proxy
    /// forwards bytes untouched.
    pub fn set_faults_enabled(&self, enabled: bool) {
        self.state.faults_enabled.store(enabled, Ordering::SeqCst);
    }

    /// Partitions (or heals) the link at runtime. While partitioned the
    /// proxy blackholes **both** directions: bytes are read and silently
    /// dropped, connections stay established, nothing is forwarded and no
    /// reset is sent — exactly what a network split looks like to an
    /// endpoint (requests vanish, reads stall into timeouts), unlike the
    /// probabilistic reset/truncate faults which at least close the
    /// socket. Independent of [`set_faults_enabled`](Self::set_faults_enabled).
    pub fn set_partitioned(&self, on: bool) {
        self.state.partitioned.store(on, Ordering::SeqCst);
    }

    /// Snapshot of the per-kind fault counters.
    pub fn fault_counts(&self) -> FaultCounts {
        FaultCounts {
            delayed: self.state.delayed.load(Ordering::Relaxed),
            partial_writes: self.state.partial_writes.load(Ordering::Relaxed),
            truncated: self.state.truncated.load(Ordering::Relaxed),
            garbage: self.state.garbage.load(Ordering::Relaxed),
            resets: self.state.resets.load(Ordering::Relaxed),
            blackholed: self.state.blackholed.load(Ordering::Relaxed),
            asym_delayed: self.state.asym_delayed.load(Ordering::Relaxed),
        }
    }

    /// Stops accepting, tears down live sessions, and joins every proxy
    /// thread. Idempotent.
    pub fn stop(&mut self) {
        self.state.stop.store(true, Ordering::SeqCst);
        if let Some(acceptor) = self.acceptor.take() {
            let _ = acceptor.join();
        }
    }
}

impl Drop for ChaosProxy {
    fn drop(&mut self) {
        self.stop();
    }
}

fn run_proxy_acceptor(listener: TcpListener, state: &Arc<ProxyState>) {
    let mut sessions: Vec<JoinHandle<()>> = Vec::new();
    while !state.stopping() {
        match listener.accept() {
            Ok((client, _)) => {
                sessions.retain(|h| !h.is_finished());
                let state = Arc::clone(state);
                let handle = thread::Builder::new()
                    .name("nrpm-chaos-session".into())
                    .spawn(move || run_session(client, &state))
                    .expect("spawn chaos session");
                sessions.push(handle);
            }
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                sessions.retain(|h| !h.is_finished());
                thread::sleep(POLL);
            }
            Err(_) => thread::sleep(POLL),
        }
    }
    for session in sessions {
        let _ = session.join();
    }
}

/// One proxied connection: a forward pump (client → server) run inline and
/// a reverse pump (server → client) on a helper thread, joined before the
/// session ends.
fn run_session(client: TcpStream, state: &Arc<ProxyState>) {
    let session = state.sessions.fetch_add(1, Ordering::Relaxed);
    let Ok(upstream) = TcpStream::connect_timeout(&state.upstream, Duration::from_secs(5)) else {
        let _ = client.shutdown(Shutdown::Both);
        return;
    };
    let (Ok(client_rev), Ok(upstream_rev)) = (client.try_clone(), upstream.try_clone()) else {
        return;
    };
    let reverse = {
        let state = Arc::clone(state);
        thread::Builder::new()
            .name("nrpm-chaos-pump".into())
            .spawn(move || pump(upstream_rev, client_rev, &state, session * 2 + 1))
            .expect("spawn chaos pump")
    };
    pump(client, upstream, state, session * 2);
    let _ = reverse.join();
}

/// Forwards bytes `from` → `to`, injecting faults per chunk. Exits on EOF,
/// socket error, proxy stop, or a terminal fault (truncate/reset) — and
/// closes both sockets so the sibling pump exits too.
fn pump(mut from: TcpStream, mut to: TcpStream, state: &Arc<ProxyState>, stream_id: u64) {
    let mut rng = stream_rng(state.opts.seed, stream_id);
    from.set_nonblocking(false).ok(); // may be inherited from the listener
    from.set_read_timeout(Some(POLL)).ok();
    let mut chunk = [0u8; 4096];
    loop {
        if state.stopping() {
            break;
        }
        match from.read(&mut chunk) {
            Ok(0) => break,
            Ok(n) => {
                if state.partitioned() {
                    // Blackhole: the bytes vanish, the connection stays
                    // up, no error reaches either side — the peer only
                    // notices through its own read timeout.
                    state.blackholed.fetch_add(1, Ordering::Relaxed);
                    continue;
                }
                if !forward_chunk(&chunk[..n], &mut to, state, &mut rng, stream_id & 1 == 1) {
                    break;
                }
            }
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                continue;
            }
            Err(_) => break,
        }
    }
    let _ = from.shutdown(Shutdown::Both);
    let _ = to.shutdown(Shutdown::Both);
}

/// Applies the fault mix to one chunk (`reverse` marks the server→client
/// direction). Returns `false` when the connection must close
/// (reset/truncate fault or a write failure).
fn forward_chunk(
    chunk: &[u8],
    to: &mut TcpStream,
    state: &Arc<ProxyState>,
    rng: &mut StdRng,
    reverse: bool,
) -> bool {
    let opts = &state.opts;
    if !state.faults_on() {
        return to.write_all(chunk).is_ok();
    }
    if opts.latency_prob > 0.0 && rng.gen_bool(opts.latency_prob) {
        state.delayed.fetch_add(1, Ordering::Relaxed);
        thread::sleep(opts.latency);
    }
    if reverse && opts.asymmetric_delay_prob > 0.0 && rng.gen_bool(opts.asymmetric_delay_prob) {
        state.asym_delayed.fetch_add(1, Ordering::Relaxed);
        thread::sleep(opts.asymmetric_delay);
    }
    if opts.reset_prob > 0.0 && rng.gen_bool(opts.reset_prob) {
        state.resets.fetch_add(1, Ordering::Relaxed);
        return false;
    }
    if opts.truncate_prob > 0.0 && rng.gen_bool(opts.truncate_prob) {
        state.truncated.fetch_add(1, Ordering::Relaxed);
        let _ = to.write_all(&chunk[..chunk.len() / 2]);
        return false;
    }
    if opts.garbage_prob > 0.0 && rng.gen_bool(opts.garbage_prob) {
        state.garbage.fetch_add(1, Ordering::Relaxed);
        // No newline in the splice: the garbage fuses with this chunk's
        // first line instead of injecting an extra (misattributable) frame.
        let len = rng.gen_range(4usize..=24);
        let junk: Vec<u8> = (0..len)
            .map(|_| loop {
                let b = rng.gen_range(1u8..=255);
                if b != b'\n' && b != b'\r' {
                    break b;
                }
            })
            .collect();
        if to.write_all(&junk).is_err() {
            return false;
        }
        return to.write_all(chunk).is_ok();
    }
    if chunk.len() >= 2 && opts.partial_write_prob > 0.0 && rng.gen_bool(opts.partial_write_prob) {
        state.partial_writes.fetch_add(1, Ordering::Relaxed);
        let split = rng.gen_range(1..chunk.len());
        if to.write_all(&chunk[..split]).is_err() {
            return false;
        }
        let _ = to.flush();
        thread::sleep(Duration::from_millis(2));
        return to.write_all(&chunk[split..]).is_ok();
    }
    to.write_all(chunk).is_ok()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{BufRead, BufReader};

    /// A trivial line-echo server for proxy tests (no modeling stack).
    fn echo_server() -> (SocketAddr, JoinHandle<()>) {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let handle = thread::spawn(move || {
            // One connection is all the tests need.
            if let Ok((stream, _)) = listener.accept() {
                let mut reader = BufReader::new(stream.try_clone().unwrap());
                let mut writer = stream;
                let mut line = String::new();
                while let Ok(n) = reader.read_line(&mut line) {
                    if n == 0 {
                        break;
                    }
                    if writer.write_all(line.as_bytes()).is_err() {
                        break;
                    }
                    line.clear();
                }
            }
        });
        (addr, handle)
    }

    #[test]
    fn clean_passthrough_with_faults_disabled() {
        let (addr, server) = echo_server();
        let mut proxy = ChaosProxy::start(addr, ChaosOptions::default()).unwrap();
        proxy.set_faults_enabled(false);

        let mut stream = TcpStream::connect(proxy.addr()).unwrap();
        stream
            .set_read_timeout(Some(Duration::from_secs(5)))
            .unwrap();
        let mut reader = BufReader::new(stream.try_clone().unwrap());
        for i in 0..50 {
            let line = format!("ping {i}\n");
            stream.write_all(line.as_bytes()).unwrap();
            let mut echoed = String::new();
            reader.read_line(&mut echoed).unwrap();
            assert_eq!(echoed, line);
        }
        assert_eq!(proxy.fault_counts(), FaultCounts::default());

        drop(reader);
        drop(stream);
        proxy.stop();
        let _ = server.join();
    }

    #[test]
    fn partition_blackholes_both_directions_then_heals() {
        let (addr, server) = echo_server();
        let mut proxy = ChaosProxy::start(addr, ChaosOptions::default()).unwrap();
        proxy.set_faults_enabled(false);

        let mut stream = TcpStream::connect(proxy.addr()).unwrap();
        stream
            .set_read_timeout(Some(Duration::from_millis(200)))
            .unwrap();
        let mut reader = BufReader::new(stream.try_clone().unwrap());

        stream.write_all(b"before\n").unwrap();
        let mut echoed = String::new();
        reader.read_line(&mut echoed).unwrap();
        assert_eq!(echoed, "before\n");

        // Partitioned: the write succeeds locally, the reply never comes,
        // and the connection is NOT closed — the read times out instead.
        proxy.set_partitioned(true);
        stream.write_all(b"lost\n").unwrap();
        echoed.clear();
        let err = reader.read_line(&mut echoed).unwrap_err();
        assert!(
            matches!(
                err.kind(),
                std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
            ),
            "expected a read timeout, got {err:?}"
        );
        assert!(proxy.fault_counts().blackholed > 0);

        // Healed: the blackholed line is gone for good (a partition loses
        // in-flight bytes), but new traffic flows again on the same
        // connection.
        proxy.set_partitioned(false);
        stream
            .set_read_timeout(Some(Duration::from_secs(5)))
            .unwrap();
        stream.write_all(b"after\n").unwrap();
        echoed.clear();
        reader.read_line(&mut echoed).unwrap();
        assert_eq!(echoed, "after\n");

        drop(reader);
        drop(stream);
        proxy.stop();
        let _ = server.join();
    }

    #[test]
    fn asymmetric_delay_hits_only_the_reverse_direction() {
        let (addr, server) = echo_server();
        let mut proxy = ChaosProxy::start(
            addr,
            ChaosOptions {
                latency_prob: 0.0,
                partial_write_prob: 0.0,
                truncate_prob: 0.0,
                garbage_prob: 0.0,
                reset_prob: 0.0,
                asymmetric_delay: Duration::from_millis(5),
                asymmetric_delay_prob: 1.0,
                seed: 11,
                ..ChaosOptions::default()
            },
        )
        .unwrap();

        let mut stream = TcpStream::connect(proxy.addr()).unwrap();
        stream
            .set_read_timeout(Some(Duration::from_secs(5)))
            .unwrap();
        let mut reader = BufReader::new(stream.try_clone().unwrap());
        for i in 0..20 {
            let line = format!("ping {i}\n");
            stream.write_all(line.as_bytes()).unwrap();
            let mut echoed = String::new();
            reader.read_line(&mut echoed).unwrap();
            assert_eq!(echoed, line, "asymmetric delay must not corrupt data");
        }
        let counts = proxy.fault_counts();
        assert!(counts.asym_delayed >= 10, "{counts:?}");
        assert_eq!(counts.delayed, 0, "forward direction must be untouched");

        drop(reader);
        drop(stream);
        proxy.stop();
        let _ = server.join();
    }

    #[test]
    fn faults_fire_and_are_counted() {
        let (addr, server) = echo_server();
        let mut proxy = ChaosProxy::start(
            addr,
            ChaosOptions {
                latency: Duration::from_millis(1),
                latency_prob: 0.5,
                partial_write_prob: 0.5,
                truncate_prob: 0.0, // keep the single echo connection alive
                garbage_prob: 0.0,  // garbage would corrupt the echo check
                reset_prob: 0.0,
                seed: 7,
                ..ChaosOptions::default()
            },
        )
        .unwrap();

        let mut stream = TcpStream::connect(proxy.addr()).unwrap();
        stream
            .set_read_timeout(Some(Duration::from_secs(5)))
            .unwrap();
        let mut reader = BufReader::new(stream.try_clone().unwrap());
        for i in 0..50 {
            let line = format!("payload payload payload {i}\n");
            stream.write_all(line.as_bytes()).unwrap();
            let mut echoed = String::new();
            reader.read_line(&mut echoed).unwrap();
            assert_eq!(echoed, line, "benign faults must not corrupt data");
        }
        let counts = proxy.fault_counts();
        assert!(counts.delayed > 0, "{counts:?}");
        assert!(counts.partial_writes > 0, "{counts:?}");
        assert_eq!(counts.truncated + counts.garbage + counts.resets, 0);

        drop(reader);
        drop(stream);
        proxy.stop();
        let _ = server.join();
    }
}
