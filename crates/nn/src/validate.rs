//! Validation-gated retraining: train on a slice, judge on a held-out
//! slice, and keep the new weights only if they did not get worse.
//!
//! The watchdog ([`crate::watchdog`]) protects training from *numerical*
//! failure — NaN losses, exploding gradients. This module protects it from
//! *statistical* failure: a retrain that converges cleanly but to a worse
//! model. [`Network::train_validated`] snapshots the weights, holds out a
//! validation slice, trains under the watchdog on the rest, and compares
//! held-out accuracy before and after. If training gave up or accuracy
//! dropped beyond the tolerance, the snapshot is restored — the caller
//! always ends with weights at least as good as it started with, and the
//! report says which way it went.
//!
//! This is the retrain entry the serving adaptation pipeline uses: a
//! candidate checkpoint that fails this gate is never even proposed for a
//! swap.

use crate::dataset::Dataset;
use crate::network::{Network, NetworkError};
use crate::trainer::{TrainerOptions, TrainingReport};
use crate::watchdog::{GuardedReport, WatchdogOptions};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Configuration of the validation gate around a retrain.
#[derive(Debug, Clone)]
pub struct ValidationOptions {
    /// Fraction of the dataset held out for the before/after comparison.
    pub holdout_fraction: f64,
    /// Lower bound on the held-out sample count; the fraction is raised to
    /// meet it when the dataset is large enough (a 3-sample holdout judges
    /// nothing).
    pub min_holdout: usize,
    /// How much held-out accuracy may drop before the retrain is rejected.
    /// `0.0` demands strict non-regression; small positive values tolerate
    /// evaluation noise.
    pub max_accuracy_drop: f64,
    /// Seed of the shuffle that selects the holdout slice.
    pub split_seed: u64,
}

impl Default for ValidationOptions {
    fn default() -> Self {
        ValidationOptions {
            holdout_fraction: 0.2,
            min_holdout: 8,
            max_accuracy_drop: 0.02,
            split_seed: 0x5EED,
        }
    }
}

/// What a validation-gated retrain did.
#[derive(Debug, Clone)]
pub struct ValidatedReport {
    /// `true` when the retrained weights were kept; `false` when the
    /// pre-training snapshot was restored (training gave up, the holdout
    /// regressed, or the dataset was too small to train on at all).
    pub accepted: bool,
    /// Held-out samples used for the before/after comparison.
    pub holdout_size: usize,
    /// Held-out accuracy of the snapshot (before training).
    pub accuracy_before: f64,
    /// Held-out accuracy after training (of the rejected weights when
    /// `accepted` is false — recorded for diagnostics either way).
    pub accuracy_after: f64,
    /// The inner watchdog report.
    pub guarded: GuardedReport,
}

fn empty_guarded_report() -> GuardedReport {
    GuardedReport {
        report: TrainingReport {
            epoch_losses: Vec::new(),
            steps: 0,
        },
        faults: Vec::new(),
        retries_used: 0,
        gave_up: false,
        clipped_steps: 0,
    }
}

impl Network {
    /// Trains like [`Network::train_guarded`], but behind a validation
    /// gate: a holdout slice is split off first, accuracy on it is
    /// measured before and after training on the remainder, and the
    /// pre-training weights are restored unless training completed *and*
    /// held-out accuracy stayed within
    /// [`ValidationOptions::max_accuracy_drop`] of where it started.
    ///
    /// Never leaves the network worse than it found it: every rejection
    /// path ends on the snapshot taken before the first optimizer step.
    pub fn train_validated(
        &mut self,
        data: &Dataset,
        opts: &TrainerOptions,
        guard: &WatchdogOptions,
        validation: &ValidationOptions,
    ) -> Result<ValidatedReport, NetworkError> {
        self.check_dataset(data)?;
        let n = data.len();
        // Raise the fraction until the holdout meets the floor, but always
        // leave at least one sample to train on.
        let want = validation
            .min_holdout
            .max((n as f64 * validation.holdout_fraction).round() as usize)
            .clamp(1, n.saturating_sub(1).max(1));
        let fraction = (want as f64 / n.max(1) as f64).clamp(0.0, 1.0);
        let mut rng = StdRng::seed_from_u64(validation.split_seed);
        let (train, holdout) = data.split(fraction, &mut rng);
        if train.is_empty() || holdout.is_empty() {
            // Too small to both train and judge: reject without touching
            // the weights.
            return Ok(ValidatedReport {
                accepted: false,
                holdout_size: holdout.len(),
                accuracy_before: 0.0,
                accuracy_after: 0.0,
                guarded: empty_guarded_report(),
            });
        }

        let snapshot = self.clone();
        let accuracy_before = self.accuracy(&holdout)?;
        let guarded = self.train_guarded(&train, opts, guard)?;
        let accuracy_after = self.accuracy(&holdout)?;
        let accepted =
            !guarded.gave_up && accuracy_after >= accuracy_before - validation.max_accuracy_drop;
        if !accepted {
            *self = snapshot;
        }
        Ok(ValidatedReport {
            accepted,
            holdout_size: holdout.len(),
            accuracy_before,
            accuracy_after,
            guarded,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::network::NetworkConfig;
    use nrpm_linalg::Matrix;
    use rand::Rng;

    fn blobs(n_per_class: usize, seed: u64) -> Dataset {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut rows = Vec::new();
        let mut labels = Vec::new();
        for class in 0..2usize {
            let center = if class == 0 { -1.0 } else { 1.0 };
            for _ in 0..n_per_class {
                rows.push(vec![
                    center + rng.gen_range(-0.3..0.3),
                    center + rng.gen_range(-0.3..0.3),
                ]);
                labels.push(class);
            }
        }
        let refs: Vec<&[f64]> = rows.iter().map(|r| r.as_slice()).collect();
        Dataset::new(Matrix::from_rows(&refs), labels, 2).unwrap()
    }

    #[test]
    fn clean_retrain_is_accepted_and_improves_the_holdout() {
        let data = blobs(60, 1);
        let mut net = Network::new(&NetworkConfig::new(&[2, 8, 2]), 3);
        let opts = TrainerOptions {
            epochs: 15,
            batch_size: 16,
            ..Default::default()
        };
        let report = net
            .train_validated(
                &data,
                &opts,
                &WatchdogOptions::default(),
                &ValidationOptions::default(),
            )
            .unwrap();
        assert!(report.accepted, "{report:?}");
        assert!(report.holdout_size >= 8);
        assert!(report.accuracy_after >= report.accuracy_before);
        assert!(report.guarded.report.steps > 0);
    }

    #[test]
    fn gave_up_training_is_rejected_and_weights_restored() {
        let data = blobs(40, 5);
        let init = Network::new(&NetworkConfig::new(&[2, 8, 2]), 7);
        let mut net = init.clone();
        let opts = TrainerOptions {
            epochs: 10,
            batch_size: 16,
            ..Default::default()
        };
        // Every step faults and there is no retry budget: guaranteed give-up.
        let guard = WatchdogOptions {
            max_retries: 0,
            inject_nan_loss_at: (1..10_000).collect(),
            ..Default::default()
        };
        let report = net
            .train_validated(&data, &opts, &guard, &ValidationOptions::default())
            .unwrap();
        assert!(!report.accepted);
        assert!(report.guarded.gave_up);
        assert_eq!(net, init, "rejected retrain must not change the weights");
    }

    #[test]
    fn accuracy_regression_beyond_tolerance_is_rejected() {
        let data = blobs(40, 9);
        let init = Network::new(&NetworkConfig::new(&[2, 8, 2]), 11);
        let mut net = init.clone();
        let opts = TrainerOptions {
            epochs: 5,
            batch_size: 16,
            ..Default::default()
        };
        // An impossible bar — accuracy must *rise* by more than 1.0 — makes
        // every outcome a "regression", proving the gate compares and
        // restores.
        let validation = ValidationOptions {
            max_accuracy_drop: -1.1,
            ..Default::default()
        };
        let report = net
            .train_validated(&data, &opts, &WatchdogOptions::default(), &validation)
            .unwrap();
        assert!(!report.accepted);
        assert!(!report.guarded.gave_up, "training itself was clean");
        assert_eq!(net, init);
    }

    #[test]
    fn too_small_datasets_are_rejected_without_training() {
        let data = blobs(1, 13); // 2 samples: holdout takes one, train keeps one
        let tiny = blobs(1, 13).subset(&[0]); // 1 sample: nothing to train on
        let init = Network::new(&NetworkConfig::new(&[2, 4, 2]), 17);
        let mut net = init.clone();
        let opts = TrainerOptions {
            epochs: 2,
            batch_size: 4,
            ..Default::default()
        };
        let report = net
            .train_validated(
                &tiny,
                &opts,
                &WatchdogOptions::default(),
                &ValidationOptions::default(),
            )
            .unwrap();
        assert!(!report.accepted);
        assert_eq!(report.guarded.report.steps, 0);
        assert_eq!(net, init);
        // Two samples are enough to run (1 train / 1 holdout).
        let report = net
            .train_validated(
                &data,
                &opts,
                &WatchdogOptions::default(),
                &ValidationOptions::default(),
            )
            .unwrap();
        assert_eq!(report.holdout_size, 1);
    }
}
